"""Management actions and their error taxonomy.

The nine actions of Table 2 are defined in :class:`repro.config.model.Action`;
this module adds the execution-side vocabulary: outcomes for the audit log
and the errors raised when an action cannot be carried out.  The
controller's Figure 6 loop catches :class:`ActionError` and falls back to
the next-best host or action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config.model import Action

__all__ = [
    "ActionError",
    "ActionNotAllowed",
    "ConstraintViolation",
    "NoSuchTarget",
    "TransientActionFailure",
    "FencedActionError",
    "FencingGuard",
    "ActionOutcome",
]


class ActionError(RuntimeError):
    """Base class: an action could not be executed."""


class ActionNotAllowed(ActionError):
    """The service's declarative constraints do not permit this action.

    Example: "a traditional SAP database service does not support a
    scale-out.  Thus, the action scale-out is not possible for such a
    service."
    """


class ConstraintViolation(ActionError):
    """Executing the action would violate a constraint at runtime.

    Examples: exceeding max_instances, dropping below min_instances,
    hosting on a server below the minimum performance index, breaking
    exclusivity, or exhausting host memory.
    """


class NoSuchTarget(ActionError):
    """The referenced service, instance or host does not exist."""


class TransientActionFailure(ActionError):
    """An action attempt failed for a non-structural reason.

    Host agents lose packets, daemons time out, processes die while
    starting: the action *would* be legal, it just did not happen this
    time.  The executor retries these with backoff; after the retry
    budget is exhausted the failure propagates as an :class:`ActionError`
    so the Figure 6 loop falls back to the next-best host or action.

    Attributes (best effort, set by whoever raised):
    ``instance_id``, ``source_host``, ``target_host`` identify a
    half-completed relocation; ``instance_lost`` is ``True`` when the
    compensation could not restore the source instance (its host died
    while the instance was in flight).
    """

    def __init__(
        self,
        message: str,
        instance_id: Optional[str] = None,
        source_host: Optional[str] = None,
        target_host: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.instance_id = instance_id
        self.source_host = source_host
        self.target_host = target_host
        self.instance_lost = False


class FencedActionError(ActionError):
    """The action carried a stale fencing token and was rejected.

    Leadership of the controller is granted through a lease with a
    monotonically increasing *fencing token*; the platform remembers the
    highest token it has seen and refuses anything older.  A deposed or
    network-partitioned controller that keeps issuing actions is thereby
    rejected instead of double-applying remedies the current leader has
    already taken care of.
    """

    def __init__(self, message: str, token: Optional[int] = None) -> None:
        super().__init__(message)
        self.token = token


class FencingGuard:
    """The platform-side half of lease fencing.

    Tracks the highest fencing token observed; :meth:`validate` rejects
    stale tokens with :class:`FencedActionError`.  Callers without a
    token (``None`` — the administrator console, direct platform use,
    non-durable runs) are never fenced: fencing protects against *stale
    leaders*, not against operators.
    """

    def __init__(self) -> None:
        self.token = 0

    def validate(self, token: Optional[int]) -> None:
        if token is None:
            return
        if token < self.token:
            raise FencedActionError(
                f"fencing token {token} is stale (current leader holds "
                f"{self.token})",
                token=token,
            )
        self.token = token

    def advance(self, token: int) -> None:
        """Raise the watermark (a new leader announcing its token)."""
        self.token = max(self.token, token)


@dataclass(frozen=True)
class ActionOutcome:
    """Audit record of one executed action (Section 4.3: actions are logged).

    ``status`` distinguishes the record kinds the failure-hardened
    executor writes: ``"ok"`` (the action took effect), ``"failed"``
    (the retry budget was exhausted), ``"compensated"`` (a relocation
    failed mid-flight and the source instance was rolled back) and
    ``"fenced"`` (a deposed leader's action was rejected by the
    platform's fencing guard and had no effect).
    ``attempts`` counts execution attempts including the successful one;
    ``duration`` is the simulated minutes the action took end to end,
    including retry backoff.
    """

    time: int
    action: Action
    service_name: str
    instance_id: Optional[str] = None
    source_host: Optional[str] = None
    target_host: Optional[str] = None
    applicability: Optional[float] = None
    note: str = ""
    status: str = "ok"
    attempts: int = 1
    duration: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.status == "ok"

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def __str__(self) -> str:
        parts = [f"t={self.time}", self.action.value, self.service_name]
        if self.instance_id:
            parts.append(self.instance_id)
        if self.source_host and self.target_host:
            parts.append(f"{self.source_host}->{self.target_host}")
        elif self.target_host:
            parts.append(f"on {self.target_host}")
        elif self.source_host:
            parts.append(f"on {self.source_host}")
        if self.applicability is not None:
            parts.append(f"({self.applicability:.0%})")
        if self.attempts > 1:
            parts.append(f"[attempts={self.attempts}]")
        if self.status != "ok":
            parts.append(f"[{self.status.upper()}]")
        return " ".join(parts)
