"""Mobile code distribution.

"The key innovation of ServiceGlobe is its support for mobile code,
i.e., services can be distributed and instantiated during runtime on
demand at arbitrary servers participating in the ServiceGlobe
federation."  (Section 2)

The :class:`CodeRepository` is the federation's store of service code
bundles.  When an instance is started on a host that has never run the
service, the host *fetches* the bundle (a deployment); subsequent starts
hit the host's local cache.  Bundles are versioned; publishing a new
version invalidates every cache so the next start re-fetches.

The repository is bookkeeping, not an execution sandbox: it tracks which
code travelled where — the property that makes "start an instance on an
arbitrary host" possible at all — and exposes deployment statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["CodeBundle", "Deployment", "CodeRepository"]


@dataclass(frozen=True)
class CodeBundle:
    """One version of a service's deployable code."""

    service_name: str
    version: int
    size_mb: float = 50.0
    checksum: str = ""

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError("bundle versions start at 1")
        if self.size_mb <= 0:
            raise ValueError("bundle size must be positive")
        if not self.checksum:
            digest = hash((self.service_name, self.version, self.size_mb))
            object.__setattr__(self, "checksum", f"sha-{digest & 0xFFFFFFFF:08x}")


@dataclass(frozen=True)
class Deployment:
    """A bundle fetched onto a host."""

    bundle: CodeBundle
    host_name: str
    fetched_at: int


class CodeRepository:
    """The federation's service-code store with per-host caches."""

    def __init__(self) -> None:
        self._bundles: Dict[str, CodeBundle] = {}
        self._caches: Dict[str, Dict[str, CodeBundle]] = {}
        self.deployments: List[Deployment] = []

    # -- publishing ---------------------------------------------------------------

    def publish(self, bundle: CodeBundle) -> CodeBundle:
        """Publish a bundle version; must be newer than the current one.

        Publishing invalidates every host cache of the service, so the
        next instance start re-fetches the new version.
        """
        current = self._bundles.get(bundle.service_name)
        if current is not None and bundle.version <= current.version:
            raise ValueError(
                f"{bundle.service_name}: version {bundle.version} is not newer "
                f"than the published version {current.version}"
            )
        self._bundles[bundle.service_name] = bundle
        for cache in self._caches.values():
            cache.pop(bundle.service_name, None)
        return bundle

    def published(self, service_name: str) -> Optional[CodeBundle]:
        return self._bundles.get(service_name)

    # -- fetching -----------------------------------------------------------------------

    def ensure_deployed(
        self, service_name: str, host_name: str, now: int = 0
    ) -> Tuple[CodeBundle, bool]:
        """Make the service's code available on a host.

        Returns ``(bundle, fetched)`` where ``fetched`` says whether the
        code had to travel (cache miss) or was already present.
        """
        bundle = self._bundles.get(service_name)
        if bundle is None:
            raise KeyError(f"no code bundle published for {service_name!r}")
        cache = self._caches.setdefault(host_name, {})
        cached = cache.get(service_name)
        if cached is not None and cached.version == bundle.version:
            return bundle, False
        cache[service_name] = bundle
        self.deployments.append(Deployment(bundle, host_name, now))
        return bundle, True

    def cached_on(self, host_name: str) -> Set[str]:
        """Service names whose current code a host holds."""
        bundles = self._caches.get(host_name, {})
        return {
            name
            for name, bundle in bundles.items()
            if self._bundles.get(name) is not None
            and self._bundles[name].version == bundle.version
        }

    def evict(self, host_name: str, service_name: Optional[str] = None) -> None:
        """Drop a host's cache (one service, or everything)."""
        cache = self._caches.get(host_name)
        if cache is None:
            return
        if service_name is None:
            cache.clear()
        else:
            cache.pop(service_name, None)

    # -- durability ----------------------------------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-able cache + deployment state (for crash recovery)."""
        return {
            "caches": {
                host: {name: bundle.version for name, bundle in cache.items()}
                for host, cache in self._caches.items()
            },
            "deployments": [
                {
                    "service_name": d.bundle.service_name,
                    "version": d.bundle.version,
                    "host_name": d.host_name,
                    "fetched_at": d.fetched_at,
                }
                for d in self.deployments
            ],
        }

    def restore_state(self, payload: Dict[str, object]) -> None:
        """Restore caches/deployments; published bundles stay as they are.

        Cache entries whose version no longer matches a published bundle
        are dropped (equivalent to the invalidation a publish performs).
        """
        self._caches = {}
        for host, cache in payload.get("caches", {}).items():  # type: ignore[union-attr]
            restored: Dict[str, CodeBundle] = {}
            for name, version in cache.items():
                bundle = self._bundles.get(name)
                if bundle is not None and bundle.version == version:
                    restored[name] = bundle
            self._caches[host] = restored
        self.deployments = []
        for raw in payload.get("deployments", []):  # type: ignore[union-attr]
            bundle = self._bundles.get(raw["service_name"])
            if bundle is None or bundle.version != raw["version"]:
                bundle = CodeBundle(raw["service_name"], version=raw["version"])
            self.deployments.append(
                Deployment(bundle, raw["host_name"], raw["fetched_at"])
            )

    # -- statistics ----------------------------------------------------------------------------

    def transfer_volume_mb(self) -> float:
        """Total megabytes of code that travelled across the federation."""
        return sum(d.bundle.size_mb for d in self.deployments)

    def fetch_count(self, service_name: Optional[str] = None) -> int:
        if service_name is None:
            return len(self.deployments)
        return sum(
            1 for d in self.deployments if d.bundle.service_name == service_name
        )
