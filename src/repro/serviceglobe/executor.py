"""Failure-hardened action execution.

In a real computing center the nine management actions of Table 2 are
remote operations against host agents: they take time, they time out,
and they fail transiently — a start script hangs, a packet is lost, a
process dies while initializing.  The original reproduction assumed
every controller-issued action succeeds instantly and atomically; this
module replaces that assumption with an executor every action flows
through.

Per execution request the executor runs a small state machine::

    ATTEMPT --ok--------------------------> DONE
       |--transient fault / timeout--> BACKOFF --> ATTEMPT ...
       |--permanent ActionError-------> FAILED  (no retry: constraints
       |                                         do not heal with time)
       after max_attempts ------------> FAILED  (TransientActionFailure
                                                 propagates; the Figure 6
                                                 loop falls back to the
                                                 next host or action)

Relocations (move / scaleUp / scaleDown) additionally pass a *commit
barrier* after the source instance is detached.  A fault injected there
models a failed target start; the platform compensates by restoring the
source instance (or, if the source host died while the instance was in
flight, by queueing the instance for self-healing).  Every retried,
failed and compensated execution leaves an :class:`ActionOutcome` audit
record, so robustness is observable rather than assumed.

All fault injection is off by default: with a pristine
:class:`ExecutionFaults` the executor consumes no randomness and behaves
byte-identically to calling :meth:`Platform.execute` directly.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator, List, Mapping, Optional

import numpy as np

from repro.config.model import Action
from repro.serviceglobe.actions import (
    ActionError,
    ActionOutcome,
    FencedActionError,
    TransientActionFailure,
)
from repro.serviceglobe.platform import Platform

__all__ = ["RetryPolicy", "ExecutionFaults", "ActionExecutor"]

#: Relocations pass the two-phase commit barrier (source detach first).
_RELOCATIONS = frozenset({Action.MOVE, Action.SCALE_UP, Action.SCALE_DOWN})


@dataclass(frozen=True)
class RetryPolicy:
    """Retry, timeout and backoff budget of one action execution.

    All durations are simulated minutes.  ``backoff_delay(n)`` is the
    pause after the ``n``-th failed attempt: exponential with a cap,
    ``min(backoff_cap, backoff_base * backoff_factor ** (n - 1))``.
    """

    max_attempts: int = 3
    timeout: float = 10.0
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_cap: float = 8.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be at least 1")

    def backoff_delay(self, failed_attempts: int) -> float:
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (failed_attempts - 1),
        )


@dataclass(frozen=True)
class ExecutionFaults:
    """Injectable actuation faults (all off by default).

    ``failure_probability`` fails an attempt before anything happened on
    the platform; ``commit_failure_probability`` strikes a relocation
    after the source instance is already detached, exercising the
    compensation path.  ``latency_means`` maps actions to their mean
    latency in simulated minutes; with ``latency_jitter`` the latency of
    an attempt is drawn from an exponential distribution around the
    mean, otherwise it is the mean itself.  An attempt whose latency
    exceeds the policy's timeout counts as timed out.
    """

    failure_probability: float = 0.0
    commit_failure_probability: float = 0.0
    latency_means: Mapping[Action, float] = field(default_factory=dict)
    latency_jitter: bool = False

    def __post_init__(self) -> None:
        for name in ("failure_probability", "commit_failure_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if any(mean < 0 for mean in self.latency_means.values()):
            raise ValueError("latency means must be non-negative")

    @property
    def pristine(self) -> bool:
        """True when no fault source is active (fast path, no RNG use)."""
        return (
            self.failure_probability == 0.0
            and self.commit_failure_probability == 0.0
            and not self.latency_means
        )


class ActionExecutor:
    """Executes controller-issued actions with retries and compensation.

    Parameters
    ----------
    platform:
        The platform the actions mutate.
    policy:
        Retry/timeout/backoff budget; defaults to three attempts.
    faults:
        Injected actuation faults; the default injects nothing, making
        the executor a transparent pass-through.
    seed:
        RNG seed for fault rolls and latency draws; executions are
        deterministic given a seed.
    """

    def __init__(
        self,
        platform: Platform,
        policy: Optional[RetryPolicy] = None,
        faults: Optional[ExecutionFaults] = None,
        seed: int = 0,
        name: str = "exec",
    ) -> None:
        self.platform = platform
        self.policy = policy if policy is not None else RetryPolicy()
        self.faults = faults if faults is not None else ExecutionFaults()
        self._rng = np.random.default_rng(seed)
        #: distinguishes executors sharing one journal (controller replicas)
        self.name = name
        #: every outcome this executor produced, including failures and
        #: compensations (successes also land in the platform audit log)
        self.log: List[ActionOutcome] = []
        self.retry_count = 0
        self.failure_count = 0
        self.compensation_count = 0
        self.fenced_count = 0
        #: the leadership epoch this executor acts under; threaded into
        #: every platform call so a deposed leader's actions are rejected
        #: (``None`` = unfenced: plain runs without leases)
        self.fencing_token: Optional[int] = None
        #: optional :class:`~repro.core.state.StateJournal`: when set,
        #: every execution writes an intent record before the platform
        #: mutates and a commit record after — the two-phase action log
        #: crash recovery reconciles in-flight actions from
        self.journal = None
        self._intent_sequence = 0

    # -- two-phase journal ------------------------------------------------------------

    def _journal_intent(
        self,
        action: Action,
        service_name: str,
        instance_id: Optional[str],
        target_host: Optional[str],
        note: str,
        approval_id: Optional[str] = None,
    ) -> Optional[str]:
        if self.journal is None:
            return None
        self._intent_sequence += 1
        intent_id = f"{self.name}:{self._intent_sequence:06d}"
        self.journal.append(
            "action-intent",
            intent_id=intent_id,
            time=self.platform.current_time,
            action=action.value,
            service_name=service_name,
            instance_id=instance_id,
            target_host=target_host,
            note=note,
            approval_id=approval_id,
        )
        return intent_id

    def _journal_commit(self, intent_id: Optional[str], status: str) -> None:
        if self.journal is not None and intent_id is not None:
            self.journal.append(
                "action-commit", intent_id=intent_id, status=status
            )

    # -- durability (kill -9 and resume) ------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-able executor state: RNG position, intent counter, tallies.

        Restoring it makes a resumed run draw the same fault rolls and
        continue the intent-id sequence instead of reusing ids.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "intent_sequence": self._intent_sequence,
            "retry_count": self.retry_count,
            "failure_count": self.failure_count,
            "compensation_count": self.compensation_count,
            "fenced_count": self.fenced_count,
        }

    def restore_state(self, payload: dict) -> None:
        self._rng.bit_generator.state = payload["rng"]
        self._intent_sequence = int(payload.get("intent_sequence", 0))
        self.retry_count = int(payload.get("retry_count", 0))
        self.failure_count = int(payload.get("failure_count", 0))
        self.compensation_count = int(payload.get("compensation_count", 0))
        self.fenced_count = int(payload.get("fenced_count", 0))

    # -- fault sampling ---------------------------------------------------------------

    def _roll(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        return float(self._rng.random()) < probability

    def _sample_latency(self, action: Action) -> float:
        mean = self.faults.latency_means.get(action, 0.0)
        if mean <= 0.0:
            return 0.0
        if not self.faults.latency_jitter:
            return mean
        return float(self._rng.exponential(mean))

    @contextlib.contextmanager
    def _commit_barrier(self, action: Action) -> Iterator[None]:
        """Arm the platform's relocation commit barrier for one attempt."""
        if (
            action not in _RELOCATIONS
            or self.faults.commit_failure_probability <= 0.0
        ):
            yield
            return
        previous = self.platform.move_fault_hook

        def barrier(instance, target_host) -> None:
            if previous is not None:
                previous(instance, target_host)
            if self._roll(self.faults.commit_failure_probability):
                raise TransientActionFailure(
                    f"target host {target_host} failed to start "
                    f"{instance.instance_id}"
                )

        self.platform.move_fault_hook = barrier
        try:
            yield
        finally:
            self.platform.move_fault_hook = previous

    # -- audit ------------------------------------------------------------------------

    def _record(
        self,
        status: str,
        action: Action,
        service_name: str,
        instance_id: Optional[str],
        source_host: Optional[str],
        target_host: Optional[str],
        applicability: Optional[float],
        attempts: int,
        duration: float,
        note: str,
    ) -> ActionOutcome:
        outcome = ActionOutcome(
            time=self.platform.current_time,
            action=action,
            service_name=service_name,
            instance_id=instance_id,
            source_host=source_host,
            target_host=target_host,
            applicability=applicability,
            note=note,
            status=status,
            attempts=attempts,
            duration=duration,
        )
        self.log.append(outcome)
        self.platform.record_outcome(outcome, fencing_token=self.fencing_token)
        return outcome

    # -- execution --------------------------------------------------------------------

    def execute(
        self,
        action: Action,
        service_name: str,
        instance_id: Optional[str] = None,
        target_host: Optional[str] = None,
        applicability: Optional[float] = None,
        enforce_allowed: bool = True,
        note: str = "",
        approval_id: Optional[str] = None,
    ) -> ActionOutcome:
        """Execute one action with the retry/timeout/backoff budget.

        Returns the successful outcome (also appended to the platform
        audit log).  Permanent :class:`ActionError` subclasses propagate
        unchanged; exhausting the retry budget raises
        :class:`TransientActionFailure` after writing a ``"failed"``
        audit record.  A stale fencing token is rejected by the platform
        before anything happens; the executor audits the rejection with
        a ``"fenced"`` record and re-raises.

        With a journal attached, an ``action-intent`` record precedes
        the platform mutation and an ``action-commit`` record follows
        it (status ``"ok"``, ``"aborted"`` or ``"fenced"``) — crash
        recovery completes or compensates whatever intent has no commit.
        ``approval_id`` ties the intent to the semi-automatic approval
        that authorized it — recovery uses it to guarantee a late-approved
        action is applied exactly once.
        """
        intent_id = self._journal_intent(
            action, service_name, instance_id, target_host, note,
            approval_id=approval_id,
        )
        try:
            if self.faults.pristine:
                # fast path: behave exactly like the bare platform
                outcome = self.platform.execute(
                    action,
                    service_name,
                    instance_id=instance_id,
                    target_host=target_host,
                    applicability=applicability,
                    enforce_allowed=enforce_allowed,
                    note=note,
                    fencing_token=self.fencing_token,
                )
                self.log.append(outcome)
            else:
                outcome = self._execute_with_faults(
                    action,
                    service_name,
                    instance_id,
                    target_host,
                    applicability,
                    enforce_allowed,
                    note,
                )
        except FencedActionError as fenced:
            self.fenced_count += 1
            self._record(
                "fenced",
                action,
                service_name,
                instance_id,
                None,
                target_host,
                applicability,
                1,
                0.0,
                f"rejected by fencing guard: {fenced}",
            )
            self._journal_commit(intent_id, "fenced")
            raise
        except ActionError:
            # nothing took effect (or a half-completed relocation was
            # already compensated): the intent resolves as aborted
            self._journal_commit(intent_id, "aborted")
            raise
        self._journal_commit(intent_id, "ok")
        return outcome

    def _execute_with_faults(
        self,
        action: Action,
        service_name: str,
        instance_id: Optional[str],
        target_host: Optional[str],
        applicability: Optional[float],
        enforce_allowed: bool,
        note: str,
    ) -> ActionOutcome:
        policy = self.policy
        attempts = 0
        elapsed = 0.0
        last_failure = ""
        while True:
            attempts += 1
            latency = self._sample_latency(action)
            if latency > policy.timeout:
                elapsed += policy.timeout
                last_failure = (
                    f"attempt {attempts} timed out after "
                    f"{policy.timeout:.0f} min"
                )
            elif self._roll(self.faults.failure_probability):
                elapsed += latency
                last_failure = f"attempt {attempts}: transient actuation fault"
            else:
                elapsed += latency
                try:
                    with self._commit_barrier(action):
                        outcome = self.platform.execute(
                            action,
                            service_name,
                            instance_id=instance_id,
                            target_host=target_host,
                            applicability=applicability,
                            enforce_allowed=enforce_allowed,
                            note=note,
                            attempts=attempts,
                            duration=elapsed,
                            fencing_token=self.fencing_token,
                        )
                except TransientActionFailure as fault:
                    # the platform already compensated the half-completed
                    # relocation; audit it and decide whether to retry
                    self.compensation_count += 1
                    last_failure = str(fault)
                    self._record(
                        "compensated",
                        action,
                        service_name,
                        fault.instance_id or instance_id,
                        fault.source_host,
                        fault.target_host or target_host,
                        applicability,
                        attempts,
                        elapsed,
                        f"move rolled back: {fault}"
                        if not fault.instance_lost
                        else f"source lost during move: {fault}",
                    )
                    if fault.instance_lost:
                        # the instance is gone; retrying would act on a
                        # different one — recovery belongs to self-healing
                        self.failure_count += 1
                        raise
                else:
                    if attempts > 1:
                        self.retry_count += attempts - 1
                    self.log.append(outcome)
                    return outcome
            if attempts >= policy.max_attempts:
                self.failure_count += 1
                self._record(
                    "failed",
                    action,
                    service_name,
                    instance_id,
                    None,
                    target_host,
                    applicability,
                    attempts,
                    elapsed,
                    f"gave up after {attempts} attempts: {last_failure}",
                )
                raise TransientActionFailure(
                    f"{action.value} {service_name}: gave up after "
                    f"{attempts} attempts ({last_failure})",
                    instance_id=instance_id,
                    target_host=target_host,
                )
            elapsed += policy.backoff_delay(attempts)
