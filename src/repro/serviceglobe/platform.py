"""The ServiceGlobe federation: hosts + services + action execution.

:class:`Platform` owns the runtime state of one landscape: service hosts,
service definitions with their instances, the network fabric binding
virtual IPs, the registry and the dispatcher.  It executes the nine
management actions of Table 2 while enforcing the declarative constraints
(allowed actions, exclusivity, minimum performance index, instance
bounds, host memory).

The platform enforces *hard* constraints; soft concerns (protection mode,
watch times, applicability thresholds) belong to the controller.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

import numpy as np

from repro.config.model import (
    Action,
    LandscapeSpec,
    ServiceSpec,
    service_spec_from_dict,
    service_spec_to_dict,
)
from repro.config.validation import validate_landscape
from repro.serviceglobe.actions import (
    ActionError,
    ActionNotAllowed,
    ActionOutcome,
    ConstraintViolation,
    FencingGuard,
    NoSuchTarget,
    TransientActionFailure,
)
from repro.serviceglobe.code import CodeBundle, CodeRepository
from repro.serviceglobe.dispatcher import Dispatcher, UserDistribution
from repro.serviceglobe.host import ServiceHost
from repro.serviceglobe.landscape_state import LandscapeState
from repro.serviceglobe.network import NetworkFabric
from repro.serviceglobe.registry import ServiceRegistry
from repro.serviceglobe.service import (
    InstanceState,
    ServiceDefinition,
    ServiceInstance,
)
from repro.telemetry.bus import EventBus
from repro.telemetry.records import ActionEvent

__all__ = ["Platform", "DomainView"]


class Platform:
    """Runtime platform for one landscape.

    Parameters
    ----------
    landscape:
        The validated landscape description.  The initial allocation is
        instantiated immediately.
    user_distribution:
        Session policy applied after structural actions:
        :attr:`UserDistribution.STICKY` leaves sessions where they are
        (constrained mobility); :attr:`UserDistribution.REDISTRIBUTE`
        rebalances all of a service's users equally after every
        instance-set change (full mobility).
    clock:
        Callable returning the current simulated minute, used to stamp
        audit records.
    """

    def __init__(
        self,
        landscape: LandscapeSpec,
        user_distribution: UserDistribution = UserDistribution.STICKY,
        clock: Optional[Callable[[], int]] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        validate_landscape(landscape)
        self.landscape = landscape
        self.user_distribution = user_distribution
        #: the platform's telemetry bus: every executed action outcome is
        #: published on the ``actions`` topic, and the controller stack
        #: (faults, supervision, situations, alerts, report batches)
        #: publishes its records through the same bus
        self.bus = bus if bus is not None else EventBus()
        #: Current simulated minute; advanced by whoever drives the platform.
        self.current_time = 0
        self._clock = clock if clock is not None else (lambda: self.current_time)
        self.fabric = NetworkFabric()
        self.registry = ServiceRegistry()
        self.hosts: Dict[str, ServiceHost] = {
            spec.name: ServiceHost(spec) for spec in landscape.servers
        }
        self.services: Dict[str, ServiceDefinition] = {}
        for spec in landscape.services:
            definition = ServiceDefinition(spec)
            self.services[spec.name] = definition
            self.registry.register(definition)
        #: columnar cache of the hot-path aggregates (exact sums, lazily
        #: recomputed per dirty host/service); every instance/host
        #: mutation writes through to it
        self.landscape_state = LandscapeState(
            self.hosts, self.services, self.memory_of
        )
        self.dispatcher = Dispatcher(
            host_load=lambda i: self.hosts[i.host_name].cpu_load,
            host_capacity=lambda i: self.hosts[i.host_name].cpu_capacity,
        )
        # mobile code: every service's bundle is published to the
        # federation's repository; hosts fetch it on their first start
        self.code_repository = CodeRepository()
        for spec in landscape.services:
            self.code_repository.publish(CodeBundle(spec.name, version=1))
        self.audit_log: List[ActionOutcome] = []
        #: Instances lost in flight: a relocation's source host died before
        #: the move could be rolled back.  The controller's self-healing
        #: path drains this list and restarts them elsewhere.
        self.orphans: List[ServiceInstance] = []
        #: Optional commit barrier for relocations, installed by the action
        #: executor: called after the source instance is detached and before
        #: the target takes over; raising :class:`TransientActionFailure`
        #: there models a failed target start and triggers compensation.
        self.move_fault_hook: Optional[Callable[[ServiceInstance, str], None]] = None
        #: Lease fencing: remembers the highest fencing token seen and
        #: rejects actions from deposed leaders (see
        #: :class:`~repro.serviceglobe.actions.FencingGuard`).
        self.fence = FencingGuard()
        #: Services stopped deliberately (the ``stop`` action).  The
        #: recovering controller's dead-service reconciliation must not
        #: "heal" a service an administrator or the controller itself
        #: shut down on purpose.
        self.stopped_services: Set[str] = set()
        # per-platform instance numbering keeps runs deterministic: ids
        # (and their tie-breaking order) never depend on other platforms
        self._instance_sequence = 0
        for service_name, host_name in landscape.initial_allocation:
            self._materialize_instance(service_name, host_name)

    # -- dynamic services (cross-domain adoption) ---------------------------------

    def adopt_service(self, spec) -> "ServiceDefinition":
        """Register a service that was not part of the built landscape.

        Multi-process federation: when a cross-domain escrow moves an
        instance into this domain, the receiving agent adopts the
        service's spec (shipped over the wire) so the platform can
        start, monitor and administer instances of it.  Idempotent — a
        retried escrow attach finds the service already registered.  The
        adopted spec is part of :meth:`snapshot_state`, so a
        killed-and-resumed agent rebuilds it before restoring instances.
        """
        existing = self.services.get(spec.name)
        if existing is not None:
            return existing
        definition = ServiceDefinition(spec)
        self.services[spec.name] = definition
        self.registry.register(definition)
        self.code_repository.publish(CodeBundle(spec.name, version=1))
        self.landscape_state.register_service(definition)
        return definition

    def _adopted_specs(self):
        declared = {spec.name for spec in self.landscape.services}
        return [
            definition.spec
            for name, definition in self.services.items()
            if name not in declared
        ]

    # -- lookups ------------------------------------------------------------------

    def host(self, name: str) -> ServiceHost:
        try:
            return self.hosts[name]
        except KeyError:
            raise NoSuchTarget(f"unknown host {name!r}") from None

    def service(self, name: str) -> ServiceDefinition:
        try:
            return self.services[name]
        except KeyError:
            raise NoSuchTarget(f"unknown service {name!r}") from None

    def instance(self, instance_id: str) -> ServiceInstance:
        # ids are generated as "<service>#<seq>", so the owning service is
        # almost always derivable without scanning the whole registry; the
        # full scan remains as a fallback for ids of any other shape
        service_name, separator, __ = instance_id.rpartition("#")
        if separator:
            definition = self.services.get(service_name)
            if definition is not None:
                found = definition.find_instance(instance_id)
                if found is not None:
                    return found
        for definition in self.services.values():
            found = definition.find_instance(instance_id)
            if found is not None:
                return found
        raise NoSuchTarget(f"unknown instance {instance_id!r}")

    def all_instances(self) -> List[ServiceInstance]:
        return [
            instance
            for definition in self.services.values()
            for instance in definition.running_instances
        ]

    def memory_of(self, service_name: str) -> int:
        return self.service(service_name).spec.workload.memory_per_instance_mb

    # -- feasibility ---------------------------------------------------------------

    def can_host(self, service_name: str, host_name: str) -> Optional[str]:
        """Why ``host_name`` cannot run another instance of ``service_name``,
        or ``None`` if it can.

        Checks minimum performance index, exclusivity (both directions)
        and memory.  Used both by action execution and by the
        server-selection controller to pre-filter candidates.
        """
        service = self.service(service_name)
        host = self.host(host_name)
        constraints = service.spec.constraints
        if not host.up:
            return "host is down"
        if host.performance_index < constraints.min_performance_index:
            return (
                f"performance index {host.performance_index} below required "
                f"{constraints.min_performance_index}"
            )
        others = [n for n in host.service_names if n != service_name]
        if constraints.exclusive and others:
            return f"service is exclusive but host runs {', '.join(others)}"
        for other_name in others:
            if self.service(other_name).spec.constraints.exclusive:
                return f"host is reserved exclusively for {other_name}"
        state = self.landscape_state
        if state.cache_enabled:
            free = state.host_memory_free(host.state_id)
        else:
            free = host.memory_free_mb(self.memory_of)
        needed = service.spec.workload.memory_per_instance_mb
        if needed > free:
            return f"needs {needed} MB but only {free} MB free"
        return None

    def eligible_hosts(self, service_name: str) -> List[ServiceHost]:
        """All hosts that could physically run another instance now.

        The columnar fast path evaluates the ``can_host`` conjunction as
        one vectorized mask over the landscape state's columns instead
        of re-deriving memory sums and service rosters host by host.
        """
        ids = self.eligible_ids(service_name)
        if ids is not None:
            host_objs = self.landscape_state.host_objs
            return [host_objs[i] for i in ids]
        return [
            host
            for host in self.hosts.values()
            if self.can_host(service_name, host.name) is None
        ]

    def eligible_ids(self, service_name: str) -> Optional[np.ndarray]:
        """State ids of the eligible hosts in substrate order.

        ``None`` when the columnar cache is disabled (callers fall back
        to the object-graph scan).  The id array lets placement filters
        (performance-index relations, source exclusion) run as column
        operations without materializing host objects first.
        """
        state = self.landscape_state
        if not state.cache_enabled:
            return None
        mask = state.eligible_mask(self.service(service_name))
        return np.flatnonzero(mask)

    # -- primitive operations -----------------------------------------------------------

    def _materialize_instance(
        self, service_name: str, host_name: str
    ) -> ServiceInstance:
        """Create, bind and publish a new instance (no constraint checks).

        The host fetches the service's code bundle first (mobile code):
        on a cache miss the code travels, otherwise the cached bundle is
        reused.
        """
        service = self.service(service_name)
        host = self.host(host_name)
        self.code_repository.ensure_deployed(service_name, host_name, self._clock())
        ip = self.fabric.allocate()
        self._instance_sequence += 1
        instance = ServiceInstance(
            service_name=service_name,
            host_name=host_name,
            virtual_ip=ip,
            instance_id=f"{service_name}#{self._instance_sequence:03d}",
            started_at=self._clock(),
        )
        instance.bind_state(self.landscape_state)
        self.fabric.bind(ip, host_name)
        host.attach(instance)
        service.instances.append(instance)
        self.registry.publish_instance(instance)
        return instance

    def _start_instance(self, service_name: str, host_name: str) -> ServiceInstance:
        service = self.service(service_name)
        constraints = service.spec.constraints
        running = len(service.running_instances)
        if constraints.max_instances is not None and running >= constraints.max_instances:
            raise ConstraintViolation(
                f"{service_name}: already at maximum of "
                f"{constraints.max_instances} instances"
            )
        reason = self.can_host(service_name, host_name)
        if reason is not None:
            raise ConstraintViolation(f"{service_name} on {host_name}: {reason}")
        return self._materialize_instance(service_name, host_name)

    def _stop_instance(self, instance: ServiceInstance, enforce_min: bool = True) -> None:
        service = self.service(instance.service_name)
        if not instance.running:
            raise ConstraintViolation(f"{instance} is not running")
        running = service.running_instances
        if enforce_min and len(running) - 1 < service.spec.constraints.min_instances:
            raise ConstraintViolation(
                f"{service.name}: stopping {instance.instance_id} would drop below "
                f"the minimum of {service.spec.constraints.min_instances} instances"
            )
        remaining = [i for i in running if i is not instance]
        self.dispatcher.displace_users(instance, remaining)
        instance.state = InstanceState.STOPPED
        instance.demand = 0.0
        self.host(instance.host_name).detach(instance)
        self.registry.withdraw_instance(instance)
        self.fabric.unbind(instance.virtual_ip)

    def _move_instance(self, instance: ServiceInstance, target_host: str) -> None:
        """Relocate an instance; its users and virtual IP follow.

        A relocation is a two-phase operation: the instance is detached
        from its source host first, then started on the target.  If the
        second phase fails — the target is found infeasible, or the
        executor's commit barrier injects a failed target start — the
        move is *compensated*: the source instance is restored.  When
        even that is impossible (the source host died while the instance
        was in flight) the instance is lost and queued on
        :attr:`orphans` for the self-healing path.
        """
        if not instance.running:
            raise ConstraintViolation(f"{instance} is not running")
        if instance.host_name == target_host:
            raise ConstraintViolation(f"{instance} already runs on {target_host}")
        source = self.host(instance.host_name)
        source.detach(instance)
        try:
            reason = self.can_host(instance.service_name, target_host)
            if reason is not None:
                raise ConstraintViolation(
                    f"{instance.service_name} on {target_host}: {reason}"
                )
            if self.move_fault_hook is not None:
                self.move_fault_hook(instance, target_host)
        except ActionError as error:
            restored = self._compensate_move(instance, source)
            if isinstance(error, TransientActionFailure):
                error.instance_id = instance.instance_id
                error.source_host = source.name
                error.target_host = target_host
                error.instance_lost = not restored
            raise
        # the target host needs the service's code before it can take over
        self.code_repository.ensure_deployed(
            instance.service_name, target_host, self._clock()
        )
        self.fabric.rebind(instance.virtual_ip, target_host)
        instance.host_name = target_host
        self.host(target_host).attach(instance)

    def _compensate_move(
        self, instance: ServiceInstance, source: ServiceHost
    ) -> bool:
        """Undo the first phase of a failed relocation.

        Returns ``True`` when the source instance was restored.  If the
        source host went down while the instance was in flight, the
        instance cannot go back: its users reconnect to surviving peers
        (or are dropped), its registration and IP are released, and it is
        queued on :attr:`orphans` so the controller can restart it on a
        healthy host.
        """
        if source.up:
            source.attach(instance)
            return True
        service = self.service(instance.service_name)
        remaining = [i for i in service.running_instances if i is not instance]
        self.dispatcher.displace_users(instance, remaining)
        instance.state = InstanceState.STOPPED
        instance.demand = 0.0
        self.registry.withdraw_instance(instance)
        self.fabric.unbind(instance.virtual_ip)
        self.orphans.append(instance)
        return False

    def drain_orphans(self) -> List[ServiceInstance]:
        """Hand over (and clear) the instances lost in half-completed moves."""
        orphans, self.orphans = self.orphans, []
        return orphans

    def crash_instance(self, instance_id: str) -> ServiceInstance:
        """Simulate a program crash: the instance dies without any
        constraint enforcement; its users reconnect to the surviving
        instances (or are dropped if none remain).  Used by failure
        injection; the controller's self-healing path restarts crashed
        services (Section 2: "Failure situations like a program crash are
        remedied for example with a restart")."""
        instance = self.instance(instance_id)
        if not instance.running:
            raise ConstraintViolation(f"{instance} is not running")
        self._stop_instance(instance, enforce_min=False)
        return instance

    # -- host-level faults -------------------------------------------------------------

    def crash_host(self, host_name: str) -> List[ServiceInstance]:
        """Simulate a host crash: every resident instance dies and the
        host's capacity leaves the landscape until :meth:`recover_host`.

        Users of the dead instances reconnect to surviving peers of
        their service (or are dropped when none remain).  Returns the
        victims so failure injection can report them to the controller's
        self-healing path.
        """
        host = self.host(host_name)
        if not host.up:
            raise ConstraintViolation(f"host {host_name} is already down")
        victims = list(host.running_instances)
        for instance in victims:
            self._stop_instance(instance, enforce_min=False)
        host.up = False
        return victims

    def recover_host(self, host_name: str) -> None:
        """The host finished rebooting; its capacity rejoins the landscape."""
        self.host(host_name).up = True

    def hosts_down(self) -> List[str]:
        """Names of hosts currently out of the landscape."""
        state = self.landscape_state
        if state.cache_enabled:
            names = state.host_index.names
            return sorted(names[hid] for hid in state.down_host_ids())
        return sorted(name for name, host in self.hosts.items() if not host.up)

    # -- action execution ------------------------------------------------------------------

    def execute(
        self,
        action: Action,
        service_name: str,
        instance_id: Optional[str] = None,
        target_host: Optional[str] = None,
        applicability: Optional[float] = None,
        enforce_allowed: bool = True,
        note: str = "",
        attempts: int = 1,
        duration: float = 0.0,
        fencing_token: Optional[int] = None,
        domain: str = "",
        audit_token: Optional[int] = None,
    ) -> ActionOutcome:
        """Execute one management action (Table 2).

        Raises :class:`ActionError` subclasses when the action is not
        permitted or not executable; on success appends an
        :class:`ActionOutcome` to :attr:`audit_log` and returns it.
        ``attempts``/``duration`` are stamped into the outcome by the
        failure-hardened executor when the action needed retries.
        ``fencing_token`` identifies the leadership epoch of the issuing
        controller; a stale token is rejected with
        :class:`FencedActionError` before anything happens.  ``domain``
        names the control domain that issued the action (empty in
        single-domain deployments); it only stamps the published
        :class:`~repro.telemetry.records.ActionEvent`.  ``audit_token``
        stamps the published event with a token that was *already*
        validated elsewhere (a domain view's per-domain fence) without
        re-checking it against this platform's global guard.
        """
        self.fence.validate(fencing_token)
        service = self.service(service_name)
        if enforce_allowed and not service.spec.constraints.allows(action):
            raise ActionNotAllowed(
                f"{service_name} does not support {action.value} "
                f"(declared constraints)"
            )
        handler = {
            Action.START: self._execute_start,
            Action.STOP: self._execute_stop,
            Action.SCALE_OUT: self._execute_scale_out,
            Action.SCALE_IN: self._execute_scale_in,
            Action.SCALE_UP: self._execute_scale_up,
            Action.SCALE_DOWN: self._execute_scale_down,
            Action.MOVE: self._execute_move,
            Action.INCREASE_PRIORITY: self._execute_increase_priority,
            Action.REDUCE_PRIORITY: self._execute_reduce_priority,
        }[action]
        outcome = handler(service, instance_id, target_host)
        outcome = ActionOutcome(
            time=outcome.time,
            action=outcome.action,
            service_name=outcome.service_name,
            instance_id=outcome.instance_id,
            source_host=outcome.source_host,
            target_host=outcome.target_host,
            applicability=applicability,
            note=note or outcome.note,
            attempts=attempts,
            duration=duration,
        )
        self.record_outcome(
            outcome,
            domain=domain,
            fencing_token=fencing_token if fencing_token is not None else audit_token,
        )
        return outcome

    def record_outcome(
        self,
        outcome: ActionOutcome,
        domain: str = "",
        fencing_token: Optional[int] = None,
    ) -> None:
        """Append one outcome to the audit log and publish it on the bus.

        The single entry point for recording executed actions: the audit
        log stays the durable source of truth (it rides in snapshots)
        while bus subscribers — the result collector, the console tail —
        observe the same record live.  ``fencing_token`` is the issuing
        leadership epoch, stamped on the published event for the
        temporal-invariant verifier.
        """
        self.audit_log.append(outcome)
        self.bus.publish(ActionEvent(outcome.time, outcome, domain, fencing_token))

    # Individual handlers.  Each returns a provisional ActionOutcome; the
    # applicability/note stamping happens in execute().

    def _require_target(self, target_host: Optional[str]) -> str:
        if target_host is None:
            raise ActionError("this action requires a target host")
        return target_host

    def _pick_instance(
        self, service: ServiceDefinition, instance_id: Optional[str]
    ) -> ServiceInstance:
        if instance_id is not None:
            instance = service.find_instance(instance_id)
            if instance is None:
                raise NoSuchTarget(
                    f"service {service.name!r} has no instance {instance_id!r}"
                )
            return instance
        running = service.running_instances
        if not running:
            raise ConstraintViolation(f"{service.name} has no running instances")
        # default: the instance on the most loaded host (the one in trouble)
        return max(
            running,
            key=lambda i: (self.hosts[i.host_name].cpu_load, i.instance_id),
        )

    def _rebalance(self, service: ServiceDefinition) -> None:
        if self.user_distribution is UserDistribution.REDISTRIBUTE:
            self.dispatcher.redistribute_equally(service.running_instances)

    def _execute_start(self, service, instance_id, target_host) -> ActionOutcome:
        target = self._require_target(target_host)
        if service.running_instances:
            raise ConstraintViolation(
                f"{service.name} is already running; use scaleOut to add instances"
            )
        instance = self._start_instance(service.name, target)
        self.stopped_services.discard(service.name)
        return ActionOutcome(
            self._clock(), Action.START, service.name, instance.instance_id,
            target_host=target,
        )

    def _execute_stop(self, service, instance_id, target_host) -> ActionOutcome:
        if service.spec.constraints.min_instances > 0:
            raise ConstraintViolation(
                f"{service.name} must keep at least "
                f"{service.spec.constraints.min_instances} instances running"
            )
        for instance in list(service.running_instances):
            self._stop_instance(instance, enforce_min=False)
        self.stopped_services.add(service.name)
        return ActionOutcome(self._clock(), Action.STOP, service.name)

    def _execute_scale_out(self, service, instance_id, target_host) -> ActionOutcome:
        target = self._require_target(target_host)
        if not service.running_instances:
            raise ConstraintViolation(f"{service.name} is stopped; use start")
        instance = self._start_instance(service.name, target)
        self._rebalance(service)
        return ActionOutcome(
            self._clock(), Action.SCALE_OUT, service.name, instance.instance_id,
            target_host=target,
        )

    def _execute_scale_in(self, service, instance_id, target_host) -> ActionOutcome:
        instance = self._pick_instance(service, instance_id)
        if len(service.running_instances) <= 1:
            raise ConstraintViolation(
                f"{service.name}: scale-in of the last instance is not allowed"
            )
        source = instance.host_name
        self._stop_instance(instance)
        self._rebalance(service)
        return ActionOutcome(
            self._clock(), Action.SCALE_IN, service.name, instance.instance_id,
            source_host=source,
        )

    def _relocate(self, action, service, instance_id, target_host, check) -> ActionOutcome:
        target = self._require_target(target_host)
        instance = self._pick_instance(service, instance_id)
        source = instance.host_name
        source_index = self.host(source).performance_index
        target_index = self.host(target).performance_index
        problem = check(source_index, target_index)
        if problem:
            raise ConstraintViolation(
                f"{action.value} {service.name} {source}->{target}: {problem}"
            )
        self._move_instance(instance, target)
        self._rebalance(service)
        return ActionOutcome(
            self._clock(), action, service.name, instance.instance_id,
            source_host=source, target_host=target,
        )

    def _execute_scale_up(self, service, instance_id, target_host) -> ActionOutcome:
        return self._relocate(
            Action.SCALE_UP, service, instance_id, target_host,
            lambda s, t: None if t > s else
            f"target index {t} not above source index {s}",
        )

    def _execute_scale_down(self, service, instance_id, target_host) -> ActionOutcome:
        return self._relocate(
            Action.SCALE_DOWN, service, instance_id, target_host,
            lambda s, t: None if t < s else
            f"target index {t} not below source index {s}",
        )

    def _execute_move(self, service, instance_id, target_host) -> ActionOutcome:
        return self._relocate(
            Action.MOVE, service, instance_id, target_host,
            lambda s, t: None if t == s else
            f"move requires an equivalently powerful host (indices {s} vs {t})",
        )

    def _execute_increase_priority(self, service, instance_id, target_host):
        service.adjust_priority(+1)
        return ActionOutcome(
            self._clock(), Action.INCREASE_PRIORITY, service.name,
            note=f"priority now {service.priority}",
        )

    def _execute_reduce_priority(self, service, instance_id, target_host):
        service.adjust_priority(-1)
        return ActionOutcome(
            self._clock(), Action.REDUCE_PRIORITY, service.name,
            note=f"priority now {service.priority}",
        )

    # -- durability ----------------------------------------------------------------------

    def _instance_to_dict(self, instance: ServiceInstance) -> Dict[str, Any]:
        return {
            "service_name": instance.service_name,
            "host_name": instance.host_name,
            "virtual_ip": instance.virtual_ip.address,
            "instance_id": instance.instance_id,
            "state": instance.state.value,
            "users": instance.users,
            "demand": instance.demand,
            "started_at": instance.started_at,
        }

    @staticmethod
    def _instance_from_dict(raw: Dict[str, Any]) -> ServiceInstance:
        from repro.serviceglobe.network import VirtualIP

        return ServiceInstance(
            service_name=raw["service_name"],
            host_name=raw["host_name"],
            virtual_ip=VirtualIP(raw["virtual_ip"]),
            instance_id=raw["instance_id"],
            state=InstanceState(raw["state"]),
            users=int(raw["users"]),
            demand=float(raw["demand"]),
            started_at=int(raw["started_at"]),
        )

    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-able snapshot of the full runtime state.

        Together with :meth:`restore_state` this backs kill-and-resume
        recovery: a resumed run continues from the snapshot minute with
        identical instances, sessions, demands, host health, priorities,
        orphans and audit history.
        """
        from repro.core.state import outcome_to_dict

        return {
            "current_time": self.current_time,
            "instance_sequence": self._instance_sequence,
            "fabric_next_suffix": self.fabric.next_suffix,
            "fence_token": self.fence.token,
            "hosts": {name: host.up for name, host in self.hosts.items()},
            "priorities": {
                name: definition.priority
                for name, definition in self.services.items()
            },
            "stopped_services": sorted(self.stopped_services),
            "instances": [
                self._instance_to_dict(instance)
                for definition in self.services.values()
                for instance in definition.instances
            ],
            "orphans": [self._instance_to_dict(i) for i in self.orphans],
            "audit_log": [outcome_to_dict(o) for o in self.audit_log],
            "code": self.code_repository.snapshot_state(),
            "adopted_services": [
                service_spec_to_dict(spec) for spec in self._adopted_specs()
            ],
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        """Rebuild the runtime state from a :meth:`snapshot_state` payload.

        The landscape (specs, constraints, published code bundles) is
        construction-time state and stays as built; everything mutable —
        instances, bindings, registrations, host health, priorities,
        orphans, audit log, fencing watermark — is replaced wholesale.
        """
        from repro.core.state import outcome_from_dict

        for raw_spec in payload.get("adopted_services", []):
            self.adopt_service(service_spec_from_dict(raw_spec))
        self.current_time = int(payload["current_time"])
        self._instance_sequence = int(payload["instance_sequence"])
        self.fence.token = int(payload.get("fence_token", 0))
        self.stopped_services = set(payload.get("stopped_services", []))
        for name, up in payload["hosts"].items():
            host = self.host(name)
            host.up = bool(up)
            host.instances = []
        self.fabric = NetworkFabric()
        self.fabric.reserve_through(int(payload["fabric_next_suffix"]))
        self.registry = ServiceRegistry()
        for name, definition in self.services.items():
            definition.instances = []
            definition.priority = int(payload["priorities"][name])
            self.registry.register(definition)
        for raw in payload["instances"]:
            instance = self._instance_from_dict(raw)
            instance.bind_state(self.landscape_state)
            self.services[instance.service_name].instances.append(instance)
            if instance.running:
                self.fabric.bind(instance.virtual_ip, instance.host_name)
                self.host(instance.host_name).attach(instance)
                self.registry.publish_instance(instance)
        self.orphans = []
        for raw in payload.get("orphans", []):
            orphan = self._instance_from_dict(raw)
            orphan.bind_state(self.landscape_state)
            self.orphans.append(orphan)
        self.audit_log = [
            outcome_from_dict(raw) for raw in payload.get("audit_log", [])
        ]
        self.code_repository.restore_state(payload.get("code", {}))
        # the wholesale rebuild above bypassed the write-through hooks
        self.landscape_state.rebuild()

    # -- measurements (read by the monitoring framework) ---------------------------------

    def host_cpu_load(self, host_name: str) -> float:
        return self.host(host_name).cpu_load

    def host_mem_load(self, host_name: str) -> float:
        host = self.host(host_name)
        state = self.landscape_state
        if state.cache_enabled:
            return state.host_mem_load(host.state_id)
        return host.mem_load(self.memory_of)

    def instance_load(self, instance: ServiceInstance) -> float:
        """The instance's own demand relative to its host's capacity."""
        return min(instance.demand / self.host(instance.host_name).cpu_capacity, 1.0)

    def _service_id(self, service_name: str) -> Optional[int]:
        state = self.landscape_state
        if not state.cache_enabled:
            return None
        return state.service_index.ids.get(service_name)

    def service_load(self, service_name: str) -> float:
        """Average load of all instances of a service (Table 1)."""
        sid = self._service_id(service_name)
        if sid is not None:
            return self.landscape_state.service_load(sid)
        instances = self.service(service_name).running_instances
        if not instances:
            return 0.0
        return sum(self.instance_load(i) for i in instances) / len(instances)

    def service_demand(self, service_name: str) -> float:
        """Total CPU demand of a service in performance-index units.

        Unlike :meth:`service_load`, the total demand is invariant under
        scale-out and relocation, which makes it the right quantity for
        the load-forecasting extension: the daily pattern of a service's
        demand is not polluted by the controller's own remedies.
        """
        sid = self._service_id(service_name)
        if sid is not None:
            return self.landscape_state.service_demand(sid)
        return sum(i.demand for i in self.service(service_name).running_instances)

    def service_capacity(self, service_name: str) -> float:
        """Total performance index of the hosts running the service."""
        sid = self._service_id(service_name)
        if sid is not None:
            return self.landscape_state.service_capacity(sid)
        return sum(
            self.host(i.host_name).cpu_capacity
            for i in self.service(service_name).running_instances
        )


class DomainView:
    """One control domain's scoped view of a shared :class:`Platform`.

    The substrate (fabric, registry, dispatcher, code repository, audit
    log, telemetry bus) stays shared — there is still exactly one
    ServiceGlobe federation.  What the view scopes is *administration*:

    * :attr:`hosts` / :attr:`services` contain only the domain's servers
      and the services it administers (a service's home domain is the
      domain of its first initially allocated host), so a controller
      built on the view monitors and manages its shard only;
    * :meth:`eligible_hosts` filters placement candidates to domain
      hosts, keeping every controller-chosen remedy inside the shard;
    * the view carries its own :class:`FencingGuard`: leases and fencing
      tokens are per-domain, so a failover in one domain can never fence
      another domain's leader.

    Name lookups (:meth:`host`, :meth:`service`, :meth:`instance`) stay
    global: an instance relocated into the domain by the federation may
    reference a foreign source host, and measurements of a relocated
    instance must resolve its current (possibly foreign) host.

    Actions executed through the view are validated against the *view's*
    fence, then run on the substrate stamped with the domain's name.
    """

    def __init__(
        self,
        platform: Platform,
        name: str,
        host_names,
        service_names,
    ) -> None:
        if not name:
            raise ValueError("control domain view needs a non-empty name")
        self.platform = platform
        self.name = name
        #: marker the controller stack reads to stamp telemetry records
        self.domain_name = name
        wanted_hosts = set(host_names)
        unknown = wanted_hosts - set(platform.hosts)
        if unknown:
            raise NoSuchTarget(
                f"control domain {name!r}: unknown hosts {sorted(unknown)}"
            )
        wanted_services = set(service_names)
        foreign = wanted_services - set(platform.services)
        if foreign:
            raise NoSuchTarget(
                f"control domain {name!r}: unknown services {sorted(foreign)}"
            )
        # host/service definition objects are stable across
        # Platform.restore_state (it mutates them in place), so the
        # filtered dicts can be built once; substrate iteration order is
        # preserved for determinism
        self.hosts: Dict[str, ServiceHost] = {
            n: h for n, h in platform.hosts.items() if n in wanted_hosts
        }
        self.services: Dict[str, ServiceDefinition] = {
            n: s for n, s in platform.services.items() if n in wanted_services
        }
        # dense state ids of the domain's hosts (substrate order), used to
        # slice the shared columnar landscape state to this shard
        state = platform.landscape_state
        self._host_id_array = np.fromiter(
            (state.host_index.ids[n] for n in self.hosts),
            dtype=np.int64,
            count=len(self.hosts),
        )
        self.fence = FencingGuard()
        # pure delegations bind the substrate's methods directly: the
        # monitoring hot path calls these tens of thousands of times per
        # simulated hour, and an extra proxy frame per call is measurable
        # (lookups stay global: relocated instances may reference foreign
        # hosts)
        self.host = platform.host
        self.service = platform.service
        self.instance = platform.instance
        self.memory_of = platform.memory_of
        self.can_host = platform.can_host
        self.crash_instance = platform.crash_instance
        self.host_cpu_load = platform.host_cpu_load
        self.host_mem_load = platform.host_mem_load
        self.instance_load = platform.instance_load
        self.service_load = platform.service_load
        self.service_demand = platform.service_demand
        self.service_capacity = platform.service_capacity

    # -- shared substrate (objects the Platform may replace wholesale) ------------

    @property
    def landscape_state(self) -> "LandscapeState":
        return self.platform.landscape_state

    @property
    def landscape(self) -> LandscapeSpec:
        return self.platform.landscape

    @property
    def bus(self) -> EventBus:
        return self.platform.bus

    @property
    def audit_log(self) -> List[ActionOutcome]:
        return self.platform.audit_log

    @property
    def fabric(self) -> NetworkFabric:
        return self.platform.fabric

    @property
    def registry(self) -> ServiceRegistry:
        return self.platform.registry

    @property
    def dispatcher(self) -> Dispatcher:
        return self.platform.dispatcher

    @property
    def code_repository(self) -> CodeRepository:
        return self.platform.code_repository

    @property
    def stopped_services(self) -> Set[str]:
        return self.platform.stopped_services

    @property
    def user_distribution(self) -> UserDistribution:
        return self.platform.user_distribution

    @property
    def current_time(self) -> int:
        return self.platform.current_time

    @current_time.setter
    def current_time(self, value: int) -> None:
        self.platform.current_time = value

    @property
    def move_fault_hook(self):
        return self.platform.move_fault_hook

    @move_fault_hook.setter
    def move_fault_hook(self, hook) -> None:
        self.platform.move_fault_hook = hook

    def all_instances(self) -> List[ServiceInstance]:
        """Running instances of the domain's *own* services only."""
        return [
            instance
            for definition in self.services.values()
            for instance in definition.running_instances
        ]

    # -- feasibility (placement candidates stay inside the shard) ------------------

    def eligible_hosts(self, service_name: str) -> List[ServiceHost]:
        ids = self.eligible_ids(service_name)
        if ids is not None:
            host_objs = self.platform.landscape_state.host_objs
            return [host_objs[i] for i in ids]
        return [
            host
            for host in self.hosts.values()
            if self.platform.can_host(service_name, host.name) is None
        ]

    def eligible_ids(self, service_name: str) -> Optional[np.ndarray]:
        """Domain-scoped :meth:`Platform.eligible_ids` (substrate order)."""
        state = self.platform.landscape_state
        if not state.cache_enabled:
            return None
        mask = state.eligible_mask(self.platform.service(service_name))
        ids = self._host_id_array
        return ids[mask[ids]]

    # -- faults and healing --------------------------------------------------------

    def drain_orphans(self) -> List[ServiceInstance]:
        """Take only the orphans of services this domain administers."""
        mine = [o for o in self.platform.orphans if o.service_name in self.services]
        if mine:
            self.platform.orphans = [
                o for o in self.platform.orphans if o.service_name not in self.services
            ]
        return mine

    def hosts_down(self) -> List[str]:
        """Domain hosts currently out of the landscape."""
        state = self.platform.landscape_state
        if state.cache_enabled:
            ids = self._host_id_array
            down = ids[~state.host_up[ids]]
            names = state.host_index.names
            return sorted(names[i] for i in down)
        return sorted(name for name, host in self.hosts.items() if not host.up)

    # -- action execution ----------------------------------------------------------

    def execute(
        self,
        action: Action,
        service_name: str,
        instance_id: Optional[str] = None,
        target_host: Optional[str] = None,
        applicability: Optional[float] = None,
        enforce_allowed: bool = True,
        note: str = "",
        attempts: int = 1,
        duration: float = 0.0,
        fencing_token: Optional[int] = None,
        domain: str = "",
    ) -> ActionOutcome:
        """Execute on the substrate under the *domain's* fence.

        The caller's fencing token is checked against this view's guard
        (leadership epochs are per-domain); the substrate call then runs
        unfenced and the published action event carries the domain name.
        """
        self.fence.validate(fencing_token)
        return self.platform.execute(
            action,
            service_name,
            instance_id=instance_id,
            target_host=target_host,
            applicability=applicability,
            enforce_allowed=enforce_allowed,
            note=note,
            attempts=attempts,
            duration=duration,
            fencing_token=None,
            domain=self.name,
            audit_token=fencing_token,
        )

    def record_outcome(
        self,
        outcome: ActionOutcome,
        domain: str = "",
        fencing_token: Optional[int] = None,
    ) -> None:
        self.platform.record_outcome(
            outcome, domain=domain or self.name, fencing_token=fencing_token
        )
