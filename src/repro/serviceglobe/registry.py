"""Service registry: UDDI-style lookup of services and instances.

ServiceGlobe is "based on standards like XML, SOAP, UDDI, and WSDL"; the
registry is the platform's lookup facility mapping service names to their
definitions and virtual IPs to the instances currently reachable there.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.serviceglobe.network import VirtualIP
from repro.serviceglobe.service import ServiceDefinition, ServiceInstance

__all__ = ["ServiceRegistry", "RegistryError"]


class RegistryError(KeyError):
    """Raised for lookups of unknown services or instances."""


class ServiceRegistry:
    """Directory of service definitions and their running instances."""

    def __init__(self) -> None:
        self._services: Dict[str, ServiceDefinition] = {}
        self._by_ip: Dict[VirtualIP, ServiceInstance] = {}

    # -- services ---------------------------------------------------------------

    def register(self, definition: ServiceDefinition) -> None:
        if definition.name in self._services:
            raise RegistryError(f"service {definition.name!r} is already registered")
        self._services[definition.name] = definition

    def service(self, name: str) -> ServiceDefinition:
        try:
            return self._services[name]
        except KeyError:
            raise RegistryError(f"unknown service {name!r}") from None

    @property
    def services(self) -> List[ServiceDefinition]:
        return list(self._services.values())

    def __contains__(self, name: str) -> bool:
        return name in self._services

    # -- instances --------------------------------------------------------------

    def publish_instance(self, instance: ServiceInstance) -> None:
        """Make an instance discoverable under its virtual IP."""
        self.service(instance.service_name)  # must be registered
        self._by_ip[instance.virtual_ip] = instance

    def withdraw_instance(self, instance: ServiceInstance) -> None:
        self._by_ip.pop(instance.virtual_ip, None)

    def instance_at(self, ip: VirtualIP) -> Optional[ServiceInstance]:
        return self._by_ip.get(ip)

    def instances_of(self, service_name: str) -> List[ServiceInstance]:
        return self.service(service_name).running_instances

    def endpoints_of(self, service_name: str) -> List[Tuple[VirtualIP, str]]:
        """(virtual IP, host) pairs of a service's running instances."""
        return [
            (i.virtual_ip, i.host_name) for i in self.instances_of(service_name)
        ]
