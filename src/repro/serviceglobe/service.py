"""Service definitions and runtime service instances."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.config.model import ServiceSpec
from repro.serviceglobe.network import VirtualIP

__all__ = ["InstanceState", "ServiceInstance", "ServiceDefinition"]

#: Service priorities are small integers; 5 is the neutral default.
MIN_PRIORITY = 1
MAX_PRIORITY = 10
DEFAULT_PRIORITY = 5

_instance_counter = itertools.count(1)


class InstanceState(enum.Enum):
    """Lifecycle states of a service instance."""

    RUNNING = "running"
    STOPPED = "stopped"


@dataclass
class ServiceInstance:
    """One running instance of a service on a specific host.

    Attributes
    ----------
    demand:
        Current CPU demand of the instance in performance index units,
        written by the workload model each tick and read by the load
        monitors.
    users:
        Interactive user sessions currently connected to this instance.
    """

    service_name: str
    host_name: str
    virtual_ip: VirtualIP
    instance_id: str = ""
    state: InstanceState = InstanceState.RUNNING
    users: int = 0
    demand: float = 0.0
    started_at: int = 0

    def __post_init__(self) -> None:
        if not self.instance_id:
            self.instance_id = f"{self.service_name}#{next(_instance_counter)}"

    @property
    def running(self) -> bool:
        return self.state is InstanceState.RUNNING

    def __str__(self) -> str:
        return f"{self.instance_id}@{self.host_name}"


@dataclass
class ServiceDefinition:
    """Runtime state of a service: its spec, priority and instances."""

    spec: ServiceSpec
    priority: int = DEFAULT_PRIORITY
    instances: List[ServiceInstance] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def running_instances(self) -> List[ServiceInstance]:
        return [i for i in self.instances if i.running]

    @property
    def total_users(self) -> int:
        return sum(i.users for i in self.running_instances)

    def instances_on(self, host_name: str) -> List[ServiceInstance]:
        return [i for i in self.running_instances if i.host_name == host_name]

    def find_instance(self, instance_id: str) -> Optional[ServiceInstance]:
        for instance in self.instances:
            if instance.instance_id == instance_id:
                return instance
        return None

    def adjust_priority(self, delta: int) -> int:
        """Shift the service priority, clamped to the valid range."""
        self.priority = max(MIN_PRIORITY, min(MAX_PRIORITY, self.priority + delta))
        return self.priority
