"""Service definitions and runtime service instances."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.config.model import ServiceSpec
from repro.serviceglobe.network import VirtualIP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serviceglobe.landscape_state import LandscapeState

__all__ = ["InstanceState", "ServiceInstance", "ServiceDefinition"]

#: Service priorities are small integers; 5 is the neutral default.
MIN_PRIORITY = 1
MAX_PRIORITY = 10
DEFAULT_PRIORITY = 5

_instance_counter = itertools.count(1)


class InstanceState(enum.Enum):
    """Lifecycle states of a service instance."""

    RUNNING = "running"
    STOPPED = "stopped"


class ServiceInstance:
    """One running instance of a service on a specific host.

    Attributes
    ----------
    demand:
        Current CPU demand of the instance in performance index units,
        written by the workload model each tick and read by the load
        monitors.
    users:
        Interactive user sessions currently connected to this instance.

    ``demand`` and ``state`` are write-through properties: when the
    instance is bound to a columnar
    :class:`~repro.serviceglobe.landscape_state.LandscapeState`, writing
    either marks the instance's host and service aggregates stale so
    cached sums never go out of sync with the object graph.  Unbound
    instances (unit tests building them directly) behave like plain
    attributes.
    """

    __slots__ = (
        "service_name",
        "host_name",
        "virtual_ip",
        "instance_id",
        "_state",
        "users",
        "_demand",
        "started_at",
        "_landscape_state",
    )

    def __init__(
        self,
        service_name: str,
        host_name: str,
        virtual_ip: VirtualIP,
        instance_id: str = "",
        state: InstanceState = InstanceState.RUNNING,
        users: int = 0,
        demand: float = 0.0,
        started_at: int = 0,
    ) -> None:
        self.service_name = service_name
        self.host_name = host_name
        self.virtual_ip = virtual_ip
        self.instance_id = instance_id
        self._state = state
        self.users = users
        self._demand = demand
        self.started_at = started_at
        self._landscape_state: Optional["LandscapeState"] = None
        if not self.instance_id:
            self.instance_id = f"{self.service_name}#{next(_instance_counter)}"

    def bind_state(self, landscape_state: Optional["LandscapeState"]) -> None:
        """Route future ``demand``/``state`` writes through the columnar cache."""
        self._landscape_state = landscape_state

    @property
    def demand(self) -> float:
        return self._demand

    @demand.setter
    def demand(self, value: float) -> None:
        self._demand = value
        if self._landscape_state is not None:
            self._landscape_state.touch_instance(self)

    @property
    def state(self) -> InstanceState:
        return self._state

    @state.setter
    def state(self, value: InstanceState) -> None:
        self._state = value
        if self._landscape_state is not None:
            self._landscape_state.touch_instance_topology(self)

    @property
    def running(self) -> bool:
        return self._state is InstanceState.RUNNING

    def _key(self) -> tuple:
        return (
            self.service_name,
            self.host_name,
            self.virtual_ip,
            self.instance_id,
            self._state,
            self.users,
            self._demand,
            self.started_at,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceInstance):
            return NotImplemented
        return self._key() == other._key()

    def __repr__(self) -> str:
        return (
            f"ServiceInstance(service_name={self.service_name!r}, "
            f"host_name={self.host_name!r}, instance_id={self.instance_id!r}, "
            f"state={self._state!r}, users={self.users!r}, "
            f"demand={self._demand!r})"
        )

    def __str__(self) -> str:
        return f"{self.instance_id}@{self.host_name}"


@dataclass
class ServiceDefinition:
    """Runtime state of a service: its spec, priority and instances."""

    spec: ServiceSpec
    priority: int = DEFAULT_PRIORITY
    instances: List[ServiceInstance] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def running_instances(self) -> List[ServiceInstance]:
        return [i for i in self.instances if i.running]

    @property
    def total_users(self) -> int:
        return sum(i.users for i in self.running_instances)

    def instances_on(self, host_name: str) -> List[ServiceInstance]:
        return [i for i in self.running_instances if i.host_name == host_name]

    def find_instance(self, instance_id: str) -> Optional[ServiceInstance]:
        for instance in self.instances:
            if instance.instance_id == instance_id:
                return instance
        return None

    def adjust_priority(self, delta: int) -> int:
        """Shift the service priority, clamped to the valid range."""
        self.priority = max(MIN_PRIORITY, min(MAX_PRIORITY, self.priority + delta))
        return self.priority
