"""Serialize landscape descriptions back to XML.

``landscape_from_xml(landscape_to_xml(spec))`` round-trips: the writer
emits every field the loader understands.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Union
from xml.dom import minidom

from repro.config.model import LandscapeSpec, ServerSpec, ServiceSpec

__all__ = ["landscape_to_xml", "save_landscape"]


def _server_element(server: ServerSpec) -> ET.Element:
    return ET.Element(
        "server",
        {
            "name": server.name,
            "performanceIndex": repr(server.performance_index),
            "cpus": str(server.num_cpus),
            "cpuClockMhz": repr(server.cpu_clock_mhz),
            "cpuCacheKb": repr(server.cpu_cache_kb),
            "memoryMb": str(server.memory_mb),
            "swapSpaceMb": str(server.swap_space_mb),
            "tempSpaceMb": str(server.temp_space_mb),
            "category": server.category,
        },
    )


def _service_element(service: ServiceSpec) -> ET.Element:
    element = ET.Element(
        "service",
        {
            "name": service.name,
            "kind": service.kind.value,
            "subsystem": service.subsystem,
        },
    )
    if service.lint_suppressions:
        element.set("lintIgnore", " ".join(sorted(service.lint_suppressions)))
    workload = service.workload
    ET.SubElement(
        element,
        "workload",
        {
            "users": str(workload.users),
            "profile": workload.profile,
            "loadPerUser": repr(workload.load_per_user),
            "basicLoad": repr(workload.basic_load),
            "ciCostPerUser": repr(workload.ci_cost_per_user),
            "dbCostPerUser": repr(workload.db_cost_per_user),
            "batch": "true" if workload.batch else "false",
            "memoryPerInstanceMb": str(workload.memory_per_instance_mb),
            "fluctuationRate": repr(workload.fluctuation_rate),
        },
    )
    constraints = service.constraints
    constraints_element = ET.SubElement(
        element,
        "constraints",
        {
            "exclusive": "true" if constraints.exclusive else "false",
            "minPerformanceIndex": repr(constraints.min_performance_index),
            "minInstances": str(constraints.min_instances),
        },
    )
    if constraints.max_instances is not None:
        constraints_element.set("maxInstances", str(constraints.max_instances))
    if constraints.allowed_actions:
        actions_element = ET.SubElement(constraints_element, "allowedActions")
        actions_element.text = " ".join(
            sorted(action.value for action in constraints.allowed_actions)
        )
    for trigger, rules_text in sorted(service.rule_overrides.items()):
        rules_element = ET.SubElement(element, "rules", {"trigger": trigger})
        rules_element.text = rules_text
    return element


def landscape_to_xml(landscape: LandscapeSpec) -> str:
    """Serialize a landscape to a pretty-printed XML string."""
    root = ET.Element("landscape", {"name": landscape.name})
    settings = landscape.controller
    ET.SubElement(
        root,
        "controller",
        {
            "overloadThreshold": repr(settings.overload_threshold),
            "overloadWatchTime": str(settings.overload_watch_time),
            "idleThresholdBase": repr(settings.idle_threshold_base),
            "idleWatchTime": str(settings.idle_watch_time),
            "protectionTime": str(settings.protection_time),
            "minApplicability": repr(settings.min_applicability),
            "mode": settings.mode.value,
        },
    )
    servers = ET.SubElement(root, "servers")
    for server in landscape.servers:
        servers.append(_server_element(server))
    services = ET.SubElement(root, "services")
    for service in landscape.services:
        services.append(_service_element(service))
    allocation = ET.SubElement(root, "allocation")
    for service_name, host_name in landscape.initial_allocation:
        ET.SubElement(allocation, "instance", {"service": service_name, "host": host_name})
    if landscape.domains:
        domains = ET.SubElement(root, "controlDomains")
        for domain in landscape.domains:
            domain_element = ET.SubElement(domains, "controlDomain", {"name": domain.name})
            for server_name in domain.servers:
                ET.SubElement(domain_element, "server", {"name": server_name})
    raw = ET.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")


def save_landscape(landscape: LandscapeSpec, path: Union[str, Path]) -> None:
    """Write a landscape description to an XML file."""
    Path(path).write_text(landscape_to_xml(landscape), encoding="utf-8")
