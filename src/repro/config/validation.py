"""Semantic validation of landscape descriptions.

The XML loader only checks syntax; this module checks cross-references
and feasibility before a landscape is handed to the platform:

* unique server and service names,
* allocation entries referencing known servers and services,
* allocated hosts satisfying each service's minimum performance index,
* exclusivity respected by the initial allocation,
* instance counts within the services' min/max bounds,
* aggregate memory fitting on every host,
* service-specific rule overrides passing the rule-base linter: they
  must parse under the fuzzy rule DSL, name a known trigger and only
  reference declared variables and terms
  (see :mod:`repro.analysis.rulebase`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.model import LandscapeSpec

__all__ = ["ValidationError", "validate_landscape"]


class ValidationError(ValueError):
    """Raised when a landscape description is semantically inconsistent.

    Collects *all* problems found, not just the first one, so an
    administrator can fix a description in one pass.
    """

    def __init__(self, problems: List[str]) -> None:
        self.problems = list(problems)
        super().__init__(
            "invalid landscape description:\n"
            + "\n".join(f"  - {p}" for p in self.problems)
        )


def validate_landscape(landscape: LandscapeSpec) -> None:
    """Validate a landscape; raise :class:`ValidationError` on problems."""
    problems: List[str] = []

    server_names = [s.name for s in landscape.servers]
    service_names = [s.name for s in landscape.services]
    for kind, names in (("server", server_names), ("service", service_names)):
        duplicates = {n for n in names if names.count(n) > 1}
        for name in sorted(duplicates):
            problems.append(f"duplicate {kind} name {name!r}")

    servers = {s.name: s for s in landscape.servers}
    services = {s.name: s for s in landscape.services}

    instance_count: Dict[str, int] = {name: 0 for name in services}
    hosts_of_service: Dict[str, List[str]] = {name: [] for name in services}
    services_on_host: Dict[str, List[str]] = {name: [] for name in servers}
    memory_on_host: Dict[str, int] = {name: 0 for name in servers}

    for service_name, host_name in landscape.initial_allocation:
        service = services.get(service_name)
        server = servers.get(host_name)
        if service is None:
            problems.append(f"allocation references unknown service {service_name!r}")
        if server is None:
            problems.append(f"allocation references unknown server {host_name!r}")
        if service is None or server is None:
            continue
        instance_count[service_name] += 1
        hosts_of_service[service_name].append(host_name)
        services_on_host[host_name].append(service_name)
        memory_on_host[host_name] += service.workload.memory_per_instance_mb
        if server.performance_index < service.constraints.min_performance_index:
            problems.append(
                f"service {service_name!r} requires performance index >= "
                f"{service.constraints.min_performance_index}, but is allocated "
                f"on {host_name!r} (index {server.performance_index})"
            )

    for service_name, service in services.items():
        count = instance_count[service_name]
        constraints = service.constraints
        if count < constraints.min_instances:
            problems.append(
                f"service {service_name!r} needs at least "
                f"{constraints.min_instances} instances, allocation has {count}"
            )
        if constraints.max_instances is not None and count > constraints.max_instances:
            problems.append(
                f"service {service_name!r} allows at most "
                f"{constraints.max_instances} instances, allocation has {count}"
            )
        if constraints.exclusive:
            for host_name in hosts_of_service[service_name]:
                others = [s for s in services_on_host[host_name] if s != service_name]
                if others:
                    problems.append(
                        f"service {service_name!r} is exclusive but shares "
                        f"{host_name!r} with {', '.join(sorted(set(others)))}"
                    )

    for host_name, used_mb in memory_on_host.items():
        server = servers[host_name]
        if used_mb > server.memory_mb:
            problems.append(
                f"server {host_name!r} has {server.memory_mb} MB memory but the "
                f"initial allocation requires {used_mb} MB"
            )

    # Imported lazily: repro.analysis depends on repro.config.model, so a
    # top-level import here would close a cycle through config/__init__.
    from repro.analysis.diagnostics import Severity
    from repro.analysis.rulebase import lint_override_text

    for service_name, service in services.items():
        for trigger, text in service.rule_overrides.items():
            diagnostics, _ = lint_override_text(service, trigger, text)
            for diagnostic in diagnostics:
                if diagnostic.severity is not Severity.ERROR:
                    continue
                if diagnostic.code in service.lint_suppressions:
                    continue
                problems.append(
                    f"service {service_name!r}, rules for trigger {trigger!r}: "
                    f"[{diagnostic.code}] {diagnostic.message}"
                )

    if problems:
        raise ValidationError(problems)
