"""The paper's Section 5.1 SAP landscape as a built-in description.

Hardware (Figure 11):

* 8 FSC-BX300 blades, one Pentium III 933 MHz CPU, 2 GB memory,
  performance index 1 (``Blade1`` .. ``Blade8``),
* 8 FSC-BX600 blades, two Pentium III 933 MHz CPUs, 4 GB memory,
  performance index 2 (``Blade9`` .. ``Blade16``),
* 3 HP-Proliant BL40p servers, four Xeon MP 2.8 GHz CPUs, 12 GB memory,
  performance index 9 (``DBServer1`` .. ``DBServer3``).

Services (Figure 9 / Table 4): application servers FI, LES, PP, HR, CRM
and BW plus one central instance and one database per subsystem (ERP,
CRM, BW).  The initial allocation reproduces Figure 11 exactly.

Load-model calibration
----------------------
Demand is measured in performance index units: a host with index ``p``
saturates at ``p`` units.  The paper dimensions a standard PI=1 blade to
"handle at most 150 users of one service" with main-activity CPU load
between 60% and 80%; we therefore set ``load_per_user = 0.005`` so that
150 users at the daily profile's peak produce 75% load.  With the Table 4
user counts and the Figure 11 allocation, every application blade then
peaks at exactly 75% under least-loaded user placement, matching the
paper's description of a peak-sized installation.

The request path (app server -> central instance -> database) is modelled
by forwarding per-served-user demand to the subsystem's CI
(``ci_cost_per_user``) and database (``db_cost_per_user``).  The ERP
database is exclusive and cannot scale even in the full-mobility
scenario, making it the ultimate capacity bound, which is what ends the
paper's own full-mobility sweep.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config.model import (
    Action,
    ControlDomainSpec,
    ControllerSettings,
    LandscapeSpec,
    ServerSpec,
    ServiceConstraints,
    ServiceKind,
    ServiceSpec,
    WorkloadSpec,
)

__all__ = [
    "APPLICATION_SERVICES",
    "CENTRAL_INSTANCES",
    "DATABASES",
    "INITIAL_ALLOCATION",
    "INITIAL_USERS",
    "domain_sublandscape",
    "landscape_10k",
    "paper_landscape",
    "paper_landscape_xml",
    "partition_landscape",
    "replicated_landscape",
    "shipped_landscape_path",
]

#: Table 4 — users (or batch jobs for BW) and initial instance counts.
INITIAL_USERS = {
    "FI": (600, 3),
    "LES": (900, 4),
    "PP": (450, 2),
    "HR": (300, 1),
    "CRM": (300, 1),
    "BW": (60, 2),
}

APPLICATION_SERVICES = ("FI", "LES", "PP", "HR", "CRM", "BW")
CENTRAL_INSTANCES = ("CI-ERP", "CI-CRM", "CI-BW")
DATABASES = ("DB-ERP", "DB-CRM", "DB-BW")

#: Figure 11 — the initial static allocation, one entry per instance.
INITIAL_ALLOCATION: List[Tuple[str, str]] = [
    ("LES", "Blade1"),
    ("LES", "Blade2"),
    ("FI", "Blade3"),
    ("PP", "Blade4"),
    ("FI", "Blade5"),
    ("CI-ERP", "Blade6"),
    ("CI-CRM", "Blade7"),
    ("CI-BW", "Blade8"),
    ("BW", "Blade9"),
    ("HR", "Blade10"),
    ("FI", "Blade11"),
    ("LES", "Blade12"),
    ("LES", "Blade13"),
    ("PP", "Blade14"),
    ("CRM", "Blade15"),
    ("BW", "Blade16"),
    ("DB-ERP", "DBServer1"),
    ("DB-CRM", "DBServer2"),
    ("DB-BW", "DBServer3"),
]

#: One user at profile peak induces this CPU demand (PI units) on its
#: application server: 150 users -> 75% of a PI=1 blade.
LOAD_PER_USER = 0.005

#: Demand one served user forwards to the subsystem's central instance
#: (global lock management, a light operation).
CI_COST_PER_USER = 0.0002

#: Demand one served user forwards to the subsystem's database.  Sized so
#: the unscalable, exclusive ERP database saturates (>80% of PI 9) a bit
#: beyond 135% of the reference user count (the 80% crossing of
#: DBServer1, including the database basic load, falls near 140%).
DB_COST_PER_USER = 0.00214

#: One BW batch job's demand on a BW application server at profile peak:
#: 30 jobs per PI=2 instance -> 70% night load.
LOAD_PER_BATCH_JOB = 0.0466

#: One BW batch job's demand on the BW database at profile peak:
#: 60 jobs -> ~55% of DBServer3.
DB_COST_PER_BATCH_JOB = 0.0825

#: Per-instance basic loads ("every application server itself induces a
#: basic load") and memory footprints.
APP_BASIC_LOAD = 0.02
CI_BASIC_LOAD = 0.05
DB_BASIC_LOAD = 0.45
APP_MEMORY_MB = 1024
CI_MEMORY_MB = 512
DB_MEMORY_MB = 6144

#: Per-minute probability that an interactive user logs off and
#: reconnects to the least-loaded instance (average session ~100 min).
USER_FLUCTUATION_RATE = 0.010
#: Batch jobs are queued work and requeue faster than humans reconnect.
JOB_FLUCTUATION_RATE = 0.020

#: Daily load profile per application service (see repro.sim.loadcurves).
SERVICE_PROFILES = {
    "FI": "fi",
    "LES": "les",
    "PP": "pp",
    "HR": "hr",
    "CRM": "crm",
    "BW": "bw-batch",
}

SUBSYSTEM_OF = {
    "FI": "ERP",
    "LES": "ERP",
    "PP": "ERP",
    "HR": "ERP",
    "CRM": "CRM",
    "BW": "BW",
    "CI-ERP": "ERP",
    "CI-CRM": "CRM",
    "CI-BW": "BW",
    "DB-ERP": "ERP",
    "DB-CRM": "CRM",
    "DB-BW": "BW",
}


def _servers() -> List[ServerSpec]:
    servers = []
    for i in range(1, 9):
        servers.append(
            ServerSpec(
                name=f"Blade{i}",
                performance_index=1.0,
                num_cpus=1,
                cpu_clock_mhz=933.0,
                cpu_cache_kb=512.0,
                memory_mb=2048,
                swap_space_mb=4096,
                temp_space_mb=20480,
                category="FSC-BX300",
            )
        )
    for i in range(9, 17):
        servers.append(
            ServerSpec(
                name=f"Blade{i}",
                performance_index=2.0,
                num_cpus=2,
                cpu_clock_mhz=933.0,
                cpu_cache_kb=512.0,
                memory_mb=4096,
                swap_space_mb=8192,
                temp_space_mb=20480,
                category="FSC-BX600",
            )
        )
    for i in range(1, 4):
        servers.append(
            ServerSpec(
                name=f"DBServer{i}",
                performance_index=9.0,
                num_cpus=4,
                cpu_clock_mhz=2800.0,
                cpu_cache_kb=2048.0,
                memory_mb=12288,
                swap_space_mb=24576,
                temp_space_mb=102400,
                category="HP-Proliant-BL40p",
            )
        )
    return servers


def _application_service(name: str) -> ServiceSpec:
    users, __ = INITIAL_USERS[name]
    batch = name == "BW"
    min_instances = 2 if name in ("FI", "LES") else 1
    return ServiceSpec(
        name=name,
        kind=ServiceKind.APPLICATION_SERVER,
        subsystem=SUBSYSTEM_OF[name],
        constraints=ServiceConstraints(
            exclusive=False,
            min_performance_index=0.0,
            min_instances=min_instances,
            max_instances=None,
            allowed_actions=frozenset(),  # scenario-dependent, see sim.scenarios
        ),
        workload=WorkloadSpec(
            users=users,
            profile=SERVICE_PROFILES[name],
            load_per_user=LOAD_PER_BATCH_JOB if batch else LOAD_PER_USER,
            basic_load=APP_BASIC_LOAD,
            ci_cost_per_user=CI_COST_PER_USER,
            db_cost_per_user=DB_COST_PER_BATCH_JOB if batch else DB_COST_PER_USER,
            batch=batch,
            memory_per_instance_mb=APP_MEMORY_MB,
            fluctuation_rate=JOB_FLUCTUATION_RATE if batch else USER_FLUCTUATION_RATE,
        ),
    )


def _central_instance(name: str) -> ServiceSpec:
    return ServiceSpec(
        name=name,
        kind=ServiceKind.CENTRAL_INSTANCE,
        subsystem=SUBSYSTEM_OF[name],
        constraints=ServiceConstraints(
            min_instances=1,
            max_instances=1,
            allowed_actions=frozenset(),
        ),
        workload=WorkloadSpec(
            users=0,
            profile="flat",
            basic_load=CI_BASIC_LOAD,
            memory_per_instance_mb=CI_MEMORY_MB,
        ),
    )


def _database(name: str) -> ServiceSpec:
    return ServiceSpec(
        name=name,
        kind=ServiceKind.DATABASE,
        subsystem=SUBSYSTEM_OF[name],
        constraints=ServiceConstraints(
            exclusive=(name == "DB-ERP"),
            min_performance_index=5.0,
            min_instances=1,
            max_instances=1,
            allowed_actions=frozenset(),
        ),
        workload=WorkloadSpec(
            users=0,
            profile="flat",
            basic_load=DB_BASIC_LOAD,
            memory_per_instance_mb=DB_MEMORY_MB,
        ),
    )


def paper_landscape() -> LandscapeSpec:
    """Build the Section 5.1 landscape with default (static) constraints."""
    services = (
        [_application_service(name) for name in APPLICATION_SERVICES]
        + [_central_instance(name) for name in CENTRAL_INSTANCES]
        + [_database(name) for name in DATABASES]
    )
    return LandscapeSpec(
        name="sap-medium",
        servers=_servers(),
        services=services,
        initial_allocation=list(INITIAL_ALLOCATION),
        controller=ControllerSettings(),
    )


def partition_landscape(landscape: LandscapeSpec, count: int) -> LandscapeSpec:
    """Auto-partition a landscape into ``count`` contiguous control domains.

    Servers are split in declaration order into chunks of near-equal
    size (``domain-1`` .. ``domain-N``).  Contiguous chunks keep
    replicated landscapes (see :func:`replicated_landscape`) aligned on
    replica boundaries: partitioning a 4x-replicated landscape into four
    domains yields exactly one replica per domain.
    """
    if count < 1:
        raise ValueError(f"domain count must be positive, got {count}")
    if count > len(landscape.servers):
        raise ValueError(
            f"cannot split {len(landscape.servers)} servers into {count} "
            f"control domains"
        )
    base, remainder = divmod(len(landscape.servers), count)
    domains = []
    cursor = 0
    for index in range(count):
        size = base + (1 if index < remainder else 0)
        chunk = landscape.servers[cursor:cursor + size]
        cursor += size
        domains.append(
            ControlDomainSpec(
                name=f"domain-{index + 1}",
                servers=tuple(server.name for server in chunk),
            )
        )
    return LandscapeSpec(
        name=landscape.name,
        servers=list(landscape.servers),
        services=list(landscape.services),
        initial_allocation=list(landscape.initial_allocation),
        controller=landscape.controller,
        domains=domains,
    )


def domain_sublandscape(
    landscape: LandscapeSpec, domain_name: str
) -> LandscapeSpec:
    """Carve one control domain out of a domained landscape.

    A multi-process agent administers its domain with a *standalone*
    platform, so it needs a landscape containing only the domain's
    servers and the services homed there (first-initial-host rule, the
    same resolution :meth:`LandscapeSpec.service_domains` gives the
    in-process federation).  Initial allocations of a homed service that
    point at a foreign server — the paper landscape allocates a few
    services across what becomes a domain boundary — are repaired
    greedily onto the domain server with the most free memory that can
    take the instance; an instance that fits nowhere raises
    ``ValueError`` so the infeasibility is loud, not a silent capacity
    loss.

    The result declares itself as a single control domain of the same
    name, so every telemetry record the agent produces carries the
    domain the federation expects.
    """
    domains = {d.name: d for d in landscape.effective_domains()}
    domain = domains.get(domain_name)
    if domain is None:
        raise ValueError(
            f"landscape {landscape.name!r} declares no control domain "
            f"{domain_name!r} (has {sorted(domains)})"
        )
    homes = landscape.service_domains()
    server_names = set(domain.servers)
    servers = [s for s in landscape.servers if s.name in server_names]
    services = [
        svc for svc in landscape.services if homes.get(svc.name) == domain_name
    ]
    service_by_name = {svc.name: svc for svc in services}
    # repair foreign-hosted allocations of homed services; free memory is
    # tracked against the declared per-instance footprints
    free_memory = {s.name: float(s.memory_mb) for s in servers}
    exclusive_on: dict = {}
    occupants: dict = {}
    allocation: List[Tuple[str, str]] = []

    def _can_place(spec: ServiceSpec, server: ServerSpec) -> bool:
        if spec.constraints.min_performance_index > server.performance_index:
            return False
        if free_memory[server.name] < spec.workload.memory_per_instance_mb:
            return False
        holder = exclusive_on.get(server.name)
        if holder is not None and holder != spec.name:
            return False
        if spec.constraints.exclusive and any(
            name != spec.name for name in occupants.get(server.name, ())
        ):
            return False
        return True

    def _place(spec: ServiceSpec, server_name: str) -> None:
        free_memory[server_name] -= spec.workload.memory_per_instance_mb
        occupants.setdefault(server_name, []).append(spec.name)
        if spec.constraints.exclusive:
            exclusive_on[server_name] = spec.name
        allocation.append((spec.name, server_name))

    server_by_name = {s.name: s for s in servers}
    repaired: List[Tuple[str, str]] = []
    for service_name, host_name in landscape.initial_allocation:
        spec = service_by_name.get(service_name)
        if spec is None:
            continue  # homed elsewhere; that domain's agent owns it
        if host_name in server_names:
            _place(spec, host_name)
        else:
            repaired.append((service_name, host_name))
    for service_name, host_name in repaired:
        spec = service_by_name[service_name]
        candidates = sorted(
            (s for s in servers if _can_place(spec, s)),
            key=lambda s: (-free_memory[s.name], s.name),
        )
        if not candidates:
            raise ValueError(
                f"domain {domain_name!r}: no server can take the initial "
                f"instance of {service_name!r} (was on foreign host "
                f"{host_name!r})"
            )
        _place(spec, candidates[0].name)
    return LandscapeSpec(
        name=f"{landscape.name}/{domain_name}",
        servers=servers,
        services=services,
        initial_allocation=allocation,
        controller=landscape.controller,
        domains=[
            ControlDomainSpec(
                name=domain_name, servers=tuple(s.name for s in servers)
            )
        ],
    )


def replicated_landscape(copies: int) -> LandscapeSpec:
    """The Section 5.1 landscape tiled ``copies`` times.

    Every server, service and allocation entry is duplicated with a
    ``-rN`` suffix; subsystems are suffixed too, so central-instance and
    database forwarding stays within each replica.  Used by the benchmark
    harness to compare one flat controller against per-replica control
    domains at equal total size.
    """
    if copies < 1:
        raise ValueError(f"replica count must be positive, got {copies}")
    base = paper_landscape()
    servers: List[ServerSpec] = []
    services: List[ServiceSpec] = []
    allocation: List[Tuple[str, str]] = []
    from dataclasses import replace as _replace

    for copy in range(1, copies + 1):
        suffix = f"-r{copy}"
        for server in base.servers:
            servers.append(_replace(server, name=server.name + suffix))
        for service in base.services:
            services.append(
                _replace(
                    service,
                    name=service.name + suffix,
                    subsystem=service.subsystem + suffix,
                )
            )
        for service_name, host_name in base.initial_allocation:
            allocation.append((service_name + suffix, host_name + suffix))
    return LandscapeSpec(
        name=f"sap-medium-x{copies}",
        servers=servers,
        services=services,
        initial_allocation=allocation,
        controller=base.controller,
    )


#: Replica count of the 10k-host synthetic landscape.  The Section 5.1
#: landscape has 19 hosts, so 527 copies give 10,013 hosts and roughly
#: 1.38 million users — the scale target of the columnar substrate.
LANDSCAPE_10K_COPIES = 527


def landscape_10k() -> LandscapeSpec:
    """A synthetic ~10k-host landscape for scale benchmarks.

    :func:`replicated_landscape` tiled ``LANDSCAPE_10K_COPIES`` times:
    10,013 hosts, 6,324 services (10,013 initial instances) and ~1.38M
    users, renamed to
    the stable identifier ``landscape-10k`` so benchmark series and the
    CI smoke job can reference one canonical configuration.  Generation
    is deterministic — the spec is pure data derived from
    :func:`paper_landscape`.
    """
    from dataclasses import replace as _replace

    return _replace(replicated_landscape(LANDSCAPE_10K_COPIES), name="landscape-10k")


def paper_landscape_xml() -> str:
    """The built-in landscape serialized through the XML writer."""
    from repro.config.xml_writer import landscape_to_xml

    return landscape_to_xml(paper_landscape())


def shipped_landscape_path():
    """Path of the checked-in ``sap-medium.xml`` artifact.

    The artifact is the declarative-language ground truth: loading it
    yields exactly :func:`paper_landscape` (a test pins this), and it
    doubles as a template for users authoring their own landscapes.
    """
    from pathlib import Path

    return Path(__file__).parent / "data" / "sap-medium.xml"
