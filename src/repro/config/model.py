"""In-memory model of the declarative landscape description.

The model mirrors the paper's XML language: servers with performance
metadata (Table 3's server-selection inputs), services with capability
constraints (Tables 5 and 6), an initial service-to-server allocation
(Figure 11), workload parameters (Table 4) and controller settings
(Section 5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

__all__ = [
    "Action",
    "ServiceKind",
    "ControllerMode",
    "ServerSpec",
    "ServiceConstraints",
    "WorkloadSpec",
    "ServiceSpec",
    "ControllerSettings",
    "ControlDomainSpec",
    "LandscapeSpec",
    "service_spec_to_dict",
    "service_spec_from_dict",
]


class Action(enum.Enum):
    """The nine management actions of Table 2."""

    START = "start"
    STOP = "stop"
    SCALE_IN = "scaleIn"
    SCALE_OUT = "scaleOut"
    SCALE_UP = "scaleUp"
    SCALE_DOWN = "scaleDown"
    MOVE = "move"
    INCREASE_PRIORITY = "increasePriority"
    REDUCE_PRIORITY = "reducePriority"

    @classmethod
    def from_name(cls, name: str) -> "Action":
        for action in cls:
            if action.value == name:
                return action
        raise ValueError(
            f"unknown action {name!r}; known: {', '.join(a.value for a in cls)}"
        )

    @property
    def needs_target_host(self) -> bool:
        """Actions requiring the server-selection controller (Section 4.2)."""
        return self in _TARGETED_ACTIONS


_TARGETED_ACTIONS = frozenset(
    {Action.START, Action.SCALE_OUT, Action.SCALE_UP, Action.SCALE_DOWN, Action.MOVE}
)

#: Actions that relieve load (candidates on overload triggers).
RELIEF_ACTIONS = frozenset(
    {
        Action.START,
        Action.SCALE_OUT,
        Action.SCALE_UP,
        Action.MOVE,
        Action.INCREASE_PRIORITY,
        Action.SCALE_IN,
    }
)

#: Actions that release resources (candidates on idle triggers).
CONSOLIDATION_ACTIONS = frozenset(
    {Action.STOP, Action.SCALE_IN, Action.SCALE_DOWN, Action.MOVE, Action.REDUCE_PRIORITY}
)


class ServiceKind(enum.Enum):
    """Service roles in the simulated SAP installation (Figure 9)."""

    APPLICATION_SERVER = "application-server"
    DATABASE = "database"
    CENTRAL_INSTANCE = "central-instance"


class ControllerMode(enum.Enum):
    """Execution modes of the controller (Section 4.3)."""

    AUTOMATIC = "automatic"
    SEMI_AUTOMATIC = "semi-automatic"


@dataclass(frozen=True)
class ServerSpec:
    """Static description of one server.

    The fields cover all server-selection input variables of Table 3 that
    are not runtime measurements: performance index, CPU count/clock/cache,
    memory, swap and temp space.
    """

    name: str
    performance_index: float
    num_cpus: int = 1
    cpu_clock_mhz: float = 1000.0
    cpu_cache_kb: float = 512.0
    memory_mb: int = 2048
    swap_space_mb: int = 4096
    temp_space_mb: int = 10240
    category: str = "server"

    def __post_init__(self) -> None:
        if self.performance_index <= 0:
            raise ValueError(
                f"server {self.name!r}: performance index must be positive, "
                f"got {self.performance_index}"
            )
        if self.num_cpus < 1:
            raise ValueError(f"server {self.name!r}: needs at least one CPU")
        if self.memory_mb <= 0:
            raise ValueError(f"server {self.name!r}: memory must be positive")


@dataclass(frozen=True)
class ServiceConstraints:
    """Capability constraints of a service (Tables 5 and 6).

    Attributes
    ----------
    exclusive:
        No other service may run on a host executing this service.
    min_performance_index:
        Minimum performance requirement of any host running the service.
    min_instances / max_instances:
        Bounds on the number of concurrently running instances.
    allowed_actions:
        The management actions the service supports.  A traditional SAP
        database, for example, does not support scale-out.
    """

    exclusive: bool = False
    min_performance_index: float = 0.0
    min_instances: int = 1
    max_instances: Optional[int] = None
    allowed_actions: FrozenSet[Action] = frozenset()

    def __post_init__(self) -> None:
        if self.min_instances < 0:
            raise ValueError("min_instances must be non-negative")
        if self.max_instances is not None and self.max_instances < self.min_instances:
            raise ValueError(
                f"max_instances ({self.max_instances}) below "
                f"min_instances ({self.min_instances})"
            )

    def allows(self, action: Action) -> bool:
        return action in self.allowed_actions


@dataclass(frozen=True)
class WorkloadSpec:
    """Simulation workload parameters of a service (Table 4 and Section 5.1).

    Attributes
    ----------
    users:
        Interactive users (or batch jobs for batch services) at the 100%
        reference point of Table 4.
    profile:
        Name of the daily load profile (see :mod:`repro.sim.loadcurves`).
    load_per_user:
        CPU demand one user induces at profile value 1.0, in performance
        index units ("a standard single processor blade [...] is
        dimensioned to handle at most 150 users of one service").
    basic_load:
        Demand every running instance induces even without users
        ("every application server itself induces a basic load").
    ci_cost_per_user / db_cost_per_user:
        Demand forwarded per served user to the subsystem's central
        instance (lock management) and database, modelling the course of
        a request (Section 5.1).
    batch:
        Batch services (BW) scale load per job instead of the number of
        jobs in capacity sweeps.
    memory_per_instance_mb:
        Memory footprint of one instance on its host.
    fluctuation_rate:
        Per-minute probability that a user logs off and reconnects to the
        currently least-loaded instance.
    """

    users: int = 0
    profile: str = "workday"
    load_per_user: float = 0.005
    basic_load: float = 0.02
    ci_cost_per_user: float = 0.0
    db_cost_per_user: float = 0.0
    batch: bool = False
    memory_per_instance_mb: int = 1024
    fluctuation_rate: float = 0.003


@dataclass(frozen=True)
class ServiceSpec:
    """Static description of one service."""

    name: str
    kind: ServiceKind = ServiceKind.APPLICATION_SERVER
    subsystem: str = ""
    constraints: ServiceConstraints = field(default_factory=ServiceConstraints)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    #: Service-specific rule bases layered over the defaults, keyed by
    #: trigger name (e.g. ``"serviceOverloaded"``); values are rule DSL text.
    rule_overrides: Mapping[str, str] = field(default_factory=dict)
    #: Diagnostic codes (e.g. ``"AG110"``) the static analyzers must not
    #: report for this service; ``lintIgnore="AG110 AG205"`` in the XML.
    lint_suppressions: FrozenSet[str] = frozenset()

    @property
    def interactive(self) -> bool:
        """Interactive services process user requests; batch ones run jobs."""
        return not self.workload.batch

    def with_users(self, users: int) -> "ServiceSpec":
        """A copy of the spec with a different reference user count."""
        return replace(self, workload=replace(self.workload, users=users))


def service_spec_to_dict(spec: ServiceSpec) -> Dict[str, object]:
    """A JSON-able encoding of a full service spec.

    Used wherever a spec crosses a process boundary: the federation
    wire protocol ships the spec of a cross-domain escrowed service to
    the adopting agent, and platform snapshots persist adopted specs so
    a killed-and-resumed agent can rebuild them.  The round trip through
    :func:`service_spec_from_dict` is lossless.
    """
    return {
        "name": spec.name,
        "kind": spec.kind.value,
        "subsystem": spec.subsystem,
        "constraints": {
            "exclusive": spec.constraints.exclusive,
            "min_performance_index": spec.constraints.min_performance_index,
            "min_instances": spec.constraints.min_instances,
            "max_instances": spec.constraints.max_instances,
            "allowed_actions": sorted(
                action.value for action in spec.constraints.allowed_actions
            ),
        },
        "workload": {
            "users": spec.workload.users,
            "profile": spec.workload.profile,
            "load_per_user": spec.workload.load_per_user,
            "basic_load": spec.workload.basic_load,
            "ci_cost_per_user": spec.workload.ci_cost_per_user,
            "db_cost_per_user": spec.workload.db_cost_per_user,
            "batch": spec.workload.batch,
            "memory_per_instance_mb": spec.workload.memory_per_instance_mb,
            "fluctuation_rate": spec.workload.fluctuation_rate,
        },
        "rule_overrides": dict(spec.rule_overrides),
        "lint_suppressions": sorted(spec.lint_suppressions),
    }


def service_spec_from_dict(payload: Mapping[str, object]) -> ServiceSpec:
    """Rebuild a :class:`ServiceSpec` encoded by :func:`service_spec_to_dict`."""
    constraints = payload.get("constraints") or {}
    workload = payload.get("workload") or {}
    assert isinstance(constraints, Mapping) and isinstance(workload, Mapping)
    return ServiceSpec(
        name=str(payload["name"]),
        kind=ServiceKind(payload["kind"]),
        subsystem=str(payload.get("subsystem", "")),
        constraints=ServiceConstraints(
            exclusive=bool(constraints.get("exclusive", False)),
            min_performance_index=float(
                constraints.get("min_performance_index", 0.0)
            ),
            min_instances=int(constraints.get("min_instances", 1)),
            max_instances=(
                None
                if constraints.get("max_instances") is None
                else int(constraints["max_instances"])  # type: ignore[index]
            ),
            allowed_actions=frozenset(
                Action(value)
                for value in constraints.get("allowed_actions", ())  # type: ignore[union-attr]
            ),
        ),
        workload=WorkloadSpec(
            users=int(workload.get("users", 0)),
            profile=str(workload.get("profile", "workday")),
            load_per_user=float(workload.get("load_per_user", 0.005)),
            basic_load=float(workload.get("basic_load", 0.02)),
            ci_cost_per_user=float(workload.get("ci_cost_per_user", 0.0)),
            db_cost_per_user=float(workload.get("db_cost_per_user", 0.0)),
            batch=bool(workload.get("batch", False)),
            memory_per_instance_mb=int(
                workload.get("memory_per_instance_mb", 1024)
            ),
            fluctuation_rate=float(workload.get("fluctuation_rate", 0.003)),
        ),
        rule_overrides=dict(payload.get("rule_overrides", {})),  # type: ignore[call-overload]
        lint_suppressions=frozenset(
            str(code) for code in payload.get("lint_suppressions", ())  # type: ignore[union-attr]
        ),
    )


@dataclass(frozen=True)
class ControllerSettings:
    """Tunable controller parameters (Section 5.1 defaults).

    All durations are simulated minutes.
    """

    overload_threshold: float = 0.70
    overload_watch_time: int = 10
    idle_threshold_base: float = 0.125
    idle_watch_time: int = 20
    protection_time: int = 30
    min_applicability: float = 0.10
    mode: ControllerMode = ControllerMode.AUTOMATIC
    #: minutes an unanswered semi-automatic confirmation stays pending
    #: before it expires (a revived controller must not act on stale
    #: approvals requested before a crash)
    approval_ttl: int = 240

    def idle_threshold(self, performance_index: float) -> float:
        """Idle threshold of a server: 12.5% divided by its performance index."""
        if performance_index <= 0:
            raise ValueError("performance index must be positive")
        return self.idle_threshold_base / performance_index


@dataclass(frozen=True)
class ControlDomainSpec:
    """One control domain: a named shard of the landscape's servers.

    Each domain gets its own controller, LMS, advisors and load archive;
    a federation layer coordinates relocations across domains.  A
    landscape without ``<controlDomains>`` has a single implicit domain
    covering every server, which behaves exactly like the pre-domain
    stack.
    """

    name: str
    servers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("control domain needs a non-empty name")


#: Name of the implicit domain used when a landscape declares none.
DEFAULT_DOMAIN = "default"


@dataclass
class LandscapeSpec:
    """A complete landscape: servers, services, allocation and settings."""

    name: str
    servers: List[ServerSpec] = field(default_factory=list)
    services: List[ServiceSpec] = field(default_factory=list)
    #: Initial allocation as (service name, host name) pairs, one per
    #: instance, in start order (Figure 11).
    initial_allocation: List[Tuple[str, str]] = field(default_factory=list)
    controller: ControllerSettings = field(default_factory=ControllerSettings)
    #: Declared control domains; empty means one implicit domain spanning
    #: all servers (the classic single-controller deployment).
    domains: List[ControlDomainSpec] = field(default_factory=list)

    def server(self, name: str) -> ServerSpec:
        match = self._servers_by_name().get(name)
        if match is None:
            raise KeyError(f"landscape {self.name!r} has no server {name!r}")
        return match

    def service(self, name: str) -> ServiceSpec:
        match = self._services_by_name().get(name)
        if match is None:
            raise KeyError(f"landscape {self.name!r} has no service {name!r}")
        return match

    def _servers_by_name(self) -> Dict[str, ServerSpec]:
        return {s.name: s for s in self.servers}

    def _services_by_name(self) -> Dict[str, ServiceSpec]:
        return {s.name: s for s in self.services}

    def instances_of(self, service_name: str) -> List[str]:
        """Host names of the initial instances of a service, in order."""
        return [host for svc, host in self.initial_allocation if svc == service_name]

    @property
    def is_federated(self) -> bool:
        """True when the landscape declares more than one control domain."""
        return len(self.domains) > 1

    def effective_domains(self) -> List[ControlDomainSpec]:
        """The declared domains, or the single implicit one covering all servers."""
        if self.domains:
            return list(self.domains)
        return [
            ControlDomainSpec(
                name=DEFAULT_DOMAIN,
                servers=tuple(server.name for server in self.servers),
            )
        ]

    def domain_of(self, host_name: str) -> str:
        """Name of the control domain a server belongs to."""
        for domain in self.effective_domains():
            if host_name in domain.servers:
                return domain.name
        raise KeyError(
            f"landscape {self.name!r}: server {host_name!r} belongs to no "
            f"control domain"
        )

    def service_domains(self) -> Dict[str, str]:
        """Home control domain of every service.

        A service belongs to the domain of its first initially allocated
        host; a service with no initial instances falls to the first
        declared domain.  The home domain's controller administers the
        service for the whole run — even after the federation relocates
        one of its instances onto another domain's host.
        """
        domains = self.effective_domains()
        server_domain = {
            server: domain.name for domain in domains for server in domain.servers
        }
        homes: Dict[str, str] = {}
        for service_name, host_name in self.initial_allocation:
            home = server_domain.get(host_name)
            if home is None:
                raise KeyError(
                    f"landscape {self.name!r}: server {host_name!r} belongs "
                    f"to no control domain"
                )
            homes.setdefault(service_name, home)
        for service in self.services:
            homes.setdefault(service.name, domains[0].name)
        return homes

    def scaled_users(self, factor: float) -> "LandscapeSpec":
        """A copy with every interactive service's users scaled by ``factor``.

        Batch services keep their job count; their per-job load is scaled
        instead, matching Section 5.1 ("we increase the load per batch job
        by 5% and leave the number of jobs constant").
        """
        scaled_services = []
        for service in self.services:
            workload = service.workload
            if workload.batch:
                scaled = replace(
                    service,
                    workload=replace(
                        workload, load_per_user=workload.load_per_user * factor
                    ),
                )
            else:
                scaled = replace(
                    service,
                    workload=replace(workload, users=round(workload.users * factor)),
                )
            scaled_services.append(scaled)
        return LandscapeSpec(
            name=self.name,
            servers=list(self.servers),
            services=scaled_services,
            initial_allocation=list(self.initial_allocation),
            controller=self.controller,
            domains=list(self.domains),
        )
