"""Parse landscape descriptions from XML.

Example document::

    <landscape name="sap-medium">
      <controller overloadThreshold="0.7" overloadWatchTime="10"
                  idleThresholdBase="0.125" idleWatchTime="20"
                  protectionTime="30" minApplicability="0.1"
                  mode="automatic"/>
      <servers>
        <server name="Blade1" performanceIndex="1" cpus="1"
                cpuClockMhz="933" cpuCacheKb="512" memoryMb="2048"
                swapSpaceMb="4096" tempSpaceMb="10240" category="FSC-BX300"/>
      </servers>
      <services>
        <service name="FI" kind="application-server" subsystem="ERP">
          <workload users="600" profile="workday" loadPerUser="0.005"
                    basicLoad="0.02" ciCostPerUser="0.0002"
                    dbCostPerUser="0.0023" memoryPerInstanceMb="1024"
                    fluctuationRate="0.003"/>
          <constraints minInstances="2" maxInstances="8"
                       minPerformanceIndex="0" exclusive="false">
            <allowedActions>scaleIn scaleOut</allowedActions>
          </constraints>
          <rules trigger="serviceOverloaded">
            IF cpuLoad IS high THEN scaleOut IS applicable
          </rules>
        </service>
      </services>
      <allocation>
        <instance service="FI" host="Blade3"/>
      </allocation>
      <controlDomains>
        <controlDomain name="erp">
          <server name="Blade1"/>
        </controlDomain>
      </controlDomains>
    </landscape>

``<controlDomains>`` is optional: without it the landscape forms one
implicit control domain spanning every server.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.config.model import (
    Action,
    ControlDomainSpec,
    ControllerMode,
    ControllerSettings,
    LandscapeSpec,
    ServerSpec,
    ServiceConstraints,
    ServiceKind,
    ServiceSpec,
    WorkloadSpec,
)

__all__ = ["LandscapeParseError", "landscape_from_xml", "load_landscape"]


class LandscapeParseError(ValueError):
    """Raised for malformed landscape XML."""


def _require(element: ET.Element, attribute: str) -> str:
    value = element.get(attribute)
    if value is None:
        raise LandscapeParseError(
            f"<{element.tag}> is missing required attribute {attribute!r}"
        )
    return value


def _get_float(element: ET.Element, attribute: str, default: float) -> float:
    raw = element.get(attribute)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise LandscapeParseError(
            f"<{element.tag}> attribute {attribute!r}: {raw!r} is not a number"
        ) from None


def _get_int(element: ET.Element, attribute: str, default: int) -> int:
    raw = element.get(attribute)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise LandscapeParseError(
            f"<{element.tag}> attribute {attribute!r}: {raw!r} is not an integer"
        ) from None


def _get_bool(element: ET.Element, attribute: str, default: bool) -> bool:
    raw = element.get(attribute)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in ("true", "yes", "1"):
        return True
    if lowered in ("false", "no", "0"):
        return False
    raise LandscapeParseError(
        f"<{element.tag}> attribute {attribute!r}: {raw!r} is not a boolean"
    )


def _parse_controller(element: Optional[ET.Element]) -> ControllerSettings:
    if element is None:
        return ControllerSettings()
    mode_raw = element.get("mode", ControllerMode.AUTOMATIC.value)
    try:
        mode = ControllerMode(mode_raw)
    except ValueError:
        raise LandscapeParseError(f"unknown controller mode {mode_raw!r}") from None
    return ControllerSettings(
        overload_threshold=_get_float(element, "overloadThreshold", 0.70),
        overload_watch_time=_get_int(element, "overloadWatchTime", 10),
        idle_threshold_base=_get_float(element, "idleThresholdBase", 0.125),
        idle_watch_time=_get_int(element, "idleWatchTime", 20),
        protection_time=_get_int(element, "protectionTime", 30),
        min_applicability=_get_float(element, "minApplicability", 0.10),
        mode=mode,
    )


def _parse_server(element: ET.Element) -> ServerSpec:
    return ServerSpec(
        name=_require(element, "name"),
        performance_index=float(_require(element, "performanceIndex")),
        num_cpus=_get_int(element, "cpus", 1),
        cpu_clock_mhz=_get_float(element, "cpuClockMhz", 1000.0),
        cpu_cache_kb=_get_float(element, "cpuCacheKb", 512.0),
        memory_mb=_get_int(element, "memoryMb", 2048),
        swap_space_mb=_get_int(element, "swapSpaceMb", 4096),
        temp_space_mb=_get_int(element, "tempSpaceMb", 10240),
        category=element.get("category", "server"),
    )


def _parse_constraints(element: Optional[ET.Element]) -> ServiceConstraints:
    if element is None:
        return ServiceConstraints()
    actions_element = element.find("allowedActions")
    allowed = frozenset(
        Action.from_name(token)
        for token in (actions_element.text or "").split()
    ) if actions_element is not None else frozenset()
    max_instances_raw = element.get("maxInstances")
    return ServiceConstraints(
        exclusive=_get_bool(element, "exclusive", False),
        min_performance_index=_get_float(element, "minPerformanceIndex", 0.0),
        min_instances=_get_int(element, "minInstances", 1),
        max_instances=int(max_instances_raw) if max_instances_raw is not None else None,
        allowed_actions=allowed,
    )


def _parse_workload(element: Optional[ET.Element]) -> WorkloadSpec:
    if element is None:
        return WorkloadSpec()
    return WorkloadSpec(
        users=_get_int(element, "users", 0),
        profile=element.get("profile", "workday"),
        load_per_user=_get_float(element, "loadPerUser", 0.005),
        basic_load=_get_float(element, "basicLoad", 0.02),
        ci_cost_per_user=_get_float(element, "ciCostPerUser", 0.0),
        db_cost_per_user=_get_float(element, "dbCostPerUser", 0.0),
        batch=_get_bool(element, "batch", False),
        memory_per_instance_mb=_get_int(element, "memoryPerInstanceMb", 1024),
        fluctuation_rate=_get_float(element, "fluctuationRate", 0.003),
    )


def _parse_service(element: ET.Element) -> ServiceSpec:
    kind_raw = element.get("kind", ServiceKind.APPLICATION_SERVER.value)
    try:
        kind = ServiceKind(kind_raw)
    except ValueError:
        raise LandscapeParseError(f"unknown service kind {kind_raw!r}") from None
    rule_overrides: Dict[str, str] = {}
    for rules_element in element.findall("rules"):
        trigger = _require(rules_element, "trigger")
        rule_overrides[trigger] = (rules_element.text or "").strip()
    suppressions = frozenset(
        (element.get("lintIgnore") or "").replace(",", " ").split()
    )
    return ServiceSpec(
        name=_require(element, "name"),
        kind=kind,
        subsystem=element.get("subsystem", ""),
        constraints=_parse_constraints(element.find("constraints")),
        workload=_parse_workload(element.find("workload")),
        rule_overrides=rule_overrides,
        lint_suppressions=suppressions,
    )


def _parse_domains(element: Optional[ET.Element]) -> List[ControlDomainSpec]:
    if element is None:
        return []
    domains = []
    for domain_element in element.findall("controlDomain"):
        name = _require(domain_element, "name")
        servers = tuple(
            _require(server, "name") for server in domain_element.findall("server")
        )
        domains.append(ControlDomainSpec(name=name, servers=servers))
    seen: set = set()
    for domain in domains:
        if domain.name in seen:
            raise LandscapeParseError(
                f"duplicate control domain name {domain.name!r}"
            )
        seen.add(domain.name)
    assigned: Dict[str, str] = {}
    for domain in domains:
        for server in domain.servers:
            if server in assigned:
                raise LandscapeParseError(
                    f"server {server!r} assigned to both control domains "
                    f"{assigned[server]!r} and {domain.name!r}"
                )
            assigned[server] = domain.name
    return domains


def _parse_allocation(element: Optional[ET.Element]) -> List[Tuple[str, str]]:
    if element is None:
        return []
    allocation = []
    for instance in element.findall("instance"):
        allocation.append((_require(instance, "service"), _require(instance, "host")))
    return allocation


def landscape_from_xml(text: str) -> LandscapeSpec:
    """Parse a landscape description from an XML string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise LandscapeParseError(f"not well-formed XML: {exc}") from exc
    if root.tag != "landscape":
        raise LandscapeParseError(
            f"expected <landscape> document root, got <{root.tag}>"
        )
    servers_element = root.find("servers")
    services_element = root.find("services")
    return LandscapeSpec(
        name=_require(root, "name"),
        servers=[
            _parse_server(e)
            for e in (servers_element.findall("server") if servers_element is not None else [])
        ],
        services=[
            _parse_service(e)
            for e in (services_element.findall("service") if services_element is not None else [])
        ],
        initial_allocation=_parse_allocation(root.find("allocation")),
        controller=_parse_controller(root.find("controller")),
        domains=_parse_domains(root.find("controlDomains")),
    )


def load_landscape(path: Union[str, Path]) -> LandscapeSpec:
    """Load a landscape description from an XML file."""
    return landscape_from_xml(Path(path).read_text(encoding="utf-8"))
