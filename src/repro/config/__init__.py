"""Declarative landscape description language.

The paper describes services and servers "using a declarative XML
language": capabilities, constraints (exclusive, minimum performance
index, minimum/maximum instances, allowed actions), server performance
metadata and fuzzy rules.  This package provides the in-memory model
(:mod:`repro.config.model`), an XML reader/writer
(:mod:`repro.config.xml_loader`, :mod:`repro.config.xml_writer`),
semantic validation (:mod:`repro.config.validation`) and the paper's
Section 5.1 landscape as a built-in (:mod:`repro.config.builtin`).
"""

from repro.config.model import (
    Action,
    ControllerMode,
    ControllerSettings,
    LandscapeSpec,
    ServerSpec,
    ServiceConstraints,
    ServiceKind,
    ServiceSpec,
    WorkloadSpec,
)
from repro.config.validation import ValidationError, validate_landscape
from repro.config.xml_loader import LandscapeParseError, landscape_from_xml, load_landscape
from repro.config.xml_writer import landscape_to_xml, save_landscape

__all__ = [
    "Action",
    "ControllerMode",
    "ControllerSettings",
    "LandscapeParseError",
    "LandscapeSpec",
    "ServerSpec",
    "ServiceConstraints",
    "ServiceKind",
    "ServiceSpec",
    "ValidationError",
    "WorkloadSpec",
    "landscape_from_xml",
    "landscape_to_xml",
    "load_landscape",
    "save_landscape",
    "validate_landscape",
]
