"""Short-term load forecasting and proactive (feed-forward) control.

The reactive controller waits for the watch-time-confirmed breach of the
70% threshold.  With a trustworthy daily pattern from the load archive,
imminent overloads can instead be anticipated: the
:class:`ProactiveScaler` scans each supervised host's forecast a little
ahead and triggers the regular decision machinery *before* the load
materializes, trimming the "remaining short overload peaks at the
beginning [that] stem from the watchTime" (Section 5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.autoglobe import AutoGlobeController
from repro.forecasting.patterns import DailyPattern, extract_daily_pattern
from repro.monitoring.archive import LoadArchive
from repro.monitoring.lms import Situation, SituationKind
from repro.serviceglobe.actions import ActionOutcome

__all__ = ["LoadForecaster", "ProactiveScaler"]


class LoadForecaster:
    """Per-subject daily-pattern forecasts over an archive."""

    def __init__(
        self,
        archive: LoadArchive,
        metric: str = "cpu",
        bucket_minutes: int = 15,
        min_samples: int = 24 * 60,
        min_periodicity: float = 0.5,
    ) -> None:
        self.archive = archive
        self.metric = metric
        self.bucket_minutes = bucket_minutes
        self.min_samples = min_samples
        self.min_periodicity = min_periodicity
        self._patterns: Dict[str, DailyPattern] = {}
        self._fitted_at: Dict[str, int] = {}

    def refit(self, subject: str, now: int) -> Optional[DailyPattern]:
        """(Re)fit the subject's pattern on all history up to ``now``."""
        history = self.archive.history(subject, self.metric, 0, now)
        if len(history) < self.min_samples:
            return None
        pattern = extract_daily_pattern(history, self.bucket_minutes)
        self._patterns[subject] = pattern
        self._fitted_at[subject] = now
        return pattern

    def pattern_of(self, subject: str) -> Optional[DailyPattern]:
        return self._patterns.get(subject)

    def predict(self, subject: str, minute: int) -> Optional[float]:
        """Forecast load of ``subject`` at ``minute``; ``None`` if the
        subject has no trustworthy pattern yet."""
        pattern = self._patterns.get(subject)
        if pattern is None or pattern.periodicity < self.min_periodicity:
            return None
        return pattern.value_at(minute)

    def predict_window(
        self, subject: str, start: int, duration: int
    ) -> Optional[List[float]]:
        pattern = self._patterns.get(subject)
        if pattern is None or pattern.periodicity < self.min_periodicity:
            return None
        return [pattern.value_at(start + offset) for offset in range(duration)]


class ProactiveScaler:
    """Feed-forward add-on for the AutoGlobe controller.

    Call :meth:`tick` once per minute *after* the reactive controller's
    tick.  Every ``refit_interval`` minutes the daily patterns of the
    supervised *services* are refitted from the load archive ("predicting
    the future load of services based on historic data stored in the load
    archive", Section 7) — service demand patterns are stable under
    relocation, whereas per-host patterns are polluted by the
    controller's own actions.  When a service's forecast breaches the
    overload threshold within ``lookahead`` minutes, a synthetic
    ``serviceOverloaded`` situation for its most loaded instance is
    injected into the regular decision loop, with the load variables
    projected to the predicted level.

    Anticipatory actions deliberately skip protection mode and respect a
    per-service ``cooldown`` instead: the reactive path must remain free
    to remedy the real breach if the anticipation falls short.
    """

    def __init__(
        self,
        controller: AutoGlobeController,
        lookahead: int = 30,
        refit_interval: int = 12 * 60,
        forecaster: Optional[LoadForecaster] = None,
        cooldown: int = 120,
    ) -> None:
        self.controller = controller
        self.lookahead = lookahead
        self.refit_interval = refit_interval
        self.forecaster = forecaster if forecaster is not None else LoadForecaster(
            controller.archive, metric="demand"
        )
        #: minimum minutes between anticipatory actions for the same host
        self.cooldown = cooldown
        self._last_refit: Optional[int] = None
        self._last_anticipated: Dict[str, int] = {}
        self.anticipations: List[Situation] = []

    def _refit_all(self, now: int) -> None:
        for service_name in self.controller.platform.services:
            self.forecaster.refit(f"service:{service_name}", now)

    def tick(self, now: int) -> List[ActionOutcome]:
        if (
            self._last_refit is None
            or now - self._last_refit >= self.refit_interval
        ):
            self._refit_all(now)
            self._last_refit = now
        threshold = self.controller.settings.overload_threshold
        platform = self.controller.platform
        outcomes: List[ActionOutcome] = []
        for service_name, definition in platform.services.items():
            instances = definition.running_instances
            if not instances:
                continue
            if self.controller.protection.is_protected(service_name, now):
                continue
            last = self._last_anticipated.get(service_name)
            if last is not None and now - last < self.cooldown:
                continue
            if platform.service_load(service_name) > threshold:
                continue  # the reactive path owns a live breach
            window = self.forecaster.predict_window(
                f"service:{service_name}", now, self.lookahead
            )
            if window is None:
                continue
            # the forecast is total service *demand* (performance-index
            # units); a breach is imminent when it would exceed the
            # threshold share of the capacity currently serving it
            capacity = platform.service_capacity(service_name)
            if capacity <= 0.0:
                continue
            predicted_peak = min(max(window) / capacity, 1.0)
            if predicted_peak <= threshold:
                continue
            instance = max(
                instances,
                key=lambda i: (platform.host(i.host_name).cpu_load, i.instance_id),
            )
            situation = Situation(
                kind=SituationKind.SERVICE_OVERLOADED,
                subject=instance.instance_id,
                service_name=service_name,
                detected_at=now,
                observed_mean=predicted_peak,
            )
            self.anticipations.append(situation)
            self._last_anticipated[service_name] = now
            ranked = self._rank_with_predicted_load(instance, predicted_peak, now)
            # anticipatory actions use the normal protection mode: the
            # protection window shields the pre-started instance from the
            # idle trigger until the predicted surge arrives, and with
            # lookahead <= protection time it expires right around the
            # breach, leaving the reactive path free to top up
            outcome = self.controller.decision_loop.handle(situation, ranked, now)
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def _rank_with_predicted_load(self, instance, predicted_peak: float, now: int):
        """Action ranking for an anticipated breach.

        The reactive path initializes the load variables with watch-time
        means; here nothing is loaded *yet*, so the service-driven load
        variables are projected to the forecast level.
        """
        from repro.core.action_selection import ActionContext

        base = self.controller._context_for_instance(
            instance, SituationKind.SERVICE_OVERLOADED, now
        )
        measurements = dict(base.measurements)
        measurements["serviceLoad"] = predicted_peak
        measurements["instanceLoad"] = predicted_peak
        # the host will carry at least the service's predicted level
        measurements["cpuLoad"] = max(measurements["cpuLoad"], predicted_peak)
        context = ActionContext(base.service_name, base.instance_id, measurements)
        return self.controller.action_selector.rank(
            SituationKind.SERVICE_OVERLOADED, context
        )
