"""Periodic pattern extraction from archived load data.

Services in business installations show strongly periodic daily
behaviour (Figure 10).  :func:`extract_daily_pattern` folds a load
history onto the 24-hour cycle and aggregates it into fixed-width
buckets; the resulting :class:`DailyPattern` is the "pattern matching"
primitive behind the load forecast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.sim.clock import MINUTES_PER_DAY

__all__ = ["DailyPattern", "extract_daily_pattern"]


@dataclass(frozen=True)
class DailyPattern:
    """A bucketed mean daily load profile with a periodicity score.

    Attributes
    ----------
    bucket_minutes:
        Width of each bucket; 1440 must be divisible by it.
    means:
        Mean load per bucket over all observed days.
    periodicity:
        Fraction of load variance explained by the daily pattern, in
        [0, 1].  Values near 1 mean the service is strongly periodic and
        the forecast is trustworthy; values near 0 mean the history is
        essentially noise around its mean.
    samples:
        Number of samples the pattern was fitted on.
    """

    bucket_minutes: int
    means: Tuple[float, ...]
    periodicity: float
    samples: int

    @property
    def buckets(self) -> int:
        return len(self.means)

    def value_at(self, minute: int) -> float:
        """Pattern value at an absolute minute (folded onto the day)."""
        bucket = (minute % MINUTES_PER_DAY) // self.bucket_minutes
        return self.means[bucket]

    def peak(self) -> Tuple[int, float]:
        """(minute of day, value) of the pattern's daily peak."""
        index = int(np.argmax(self.means))
        return index * self.bucket_minutes, self.means[index]


def extract_daily_pattern(
    history: Sequence[Tuple[int, float]],
    bucket_minutes: int = 15,
) -> DailyPattern:
    """Fold a load history onto the daily cycle.

    Parameters
    ----------
    history:
        (absolute minute, load) samples, e.g. from
        :meth:`repro.monitoring.archive.LoadArchive.history`.
    bucket_minutes:
        Aggregation bucket width; must divide 1440.
    """
    if MINUTES_PER_DAY % bucket_minutes != 0:
        raise ValueError(
            f"bucket width {bucket_minutes} does not divide a day"
        )
    if not history:
        raise ValueError("cannot extract a pattern from an empty history")
    bucket_count = MINUTES_PER_DAY // bucket_minutes
    sums = np.zeros(bucket_count)
    counts = np.zeros(bucket_count, dtype=int)
    values: List[float] = []
    buckets: List[int] = []
    for minute, value in history:
        bucket = (minute % MINUTES_PER_DAY) // bucket_minutes
        sums[bucket] += value
        counts[bucket] += 1
        values.append(value)
        buckets.append(bucket)
    # buckets that were never observed inherit the global mean
    observed = counts > 0
    global_mean = float(np.mean(values))
    means = np.full(bucket_count, global_mean)
    means[observed] = sums[observed] / counts[observed]

    # variance explained by the folded pattern (R^2 against bucket means)
    values_array = np.asarray(values)
    predictions = means[np.asarray(buckets)]
    total_variance = float(np.var(values_array))
    if total_variance <= 1e-12:
        periodicity = 0.0
    else:
        residual = float(np.mean((values_array - predictions) ** 2))
        periodicity = max(0.0, min(1.0, 1.0 - residual / total_variance))
    return DailyPattern(
        bucket_minutes=bucket_minutes,
        means=tuple(float(m) for m in means),
        periodicity=periodicity,
        samples=len(values),
    )
