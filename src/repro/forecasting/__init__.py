"""Load forecasting from the load archive (the paper's future work).

"We work on predicting the future load of services based on historic
data stored in the load archive using pattern matching [...].  First
encouraging simulation studies have already been conducted."
(Section 7; the companion CAiSE'05 paper develops the feed-forward
techniques.)

:mod:`repro.forecasting.patterns` extracts periodic daily patterns from
archived load history; :mod:`repro.forecasting.forecast` turns them into
short-term forecasts and a proactive (feed-forward) controller add-on
that reacts to *imminent* overloads before they materialize.
"""

from repro.forecasting.forecast import LoadForecaster, ProactiveScaler
from repro.forecasting.patterns import DailyPattern, extract_daily_pattern

__all__ = [
    "DailyPattern",
    "LoadForecaster",
    "ProactiveScaler",
    "extract_daily_pattern",
]
