"""The Figure 6 interaction loop of the two fuzzy controllers.

After a situation is confirmed, the action-selection controller produces
a ranked list of actions.  The loop tries them best-first; for actions
needing a target host it asks the server-selection controller for a
ranked host list and falls back across hosts on failure, then across
actions.  If nothing with sufficient applicability can be executed, the
administrator is alerted.  Successful actions put the involved services
and servers into protection mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.config.model import ControllerMode, ControllerSettings
from repro.core.action_selection import RankedAction
from repro.core.alerts import AlertChannel
from repro.core.constraints import candidate_hosts, verify_action
from repro.core.protection import ProtectionRegistry
from repro.core.server_selection import ServerSelector
from repro.monitoring.lms import Situation
from repro.serviceglobe.actions import ActionError, ActionOutcome
from repro.serviceglobe.executor import ActionExecutor
from repro.serviceglobe.platform import Platform

__all__ = ["DecisionRecord", "DecisionLoop"]


@dataclass
class DecisionRecord:
    """Audit of one situation handling pass."""

    situation: Situation
    considered: List[str] = field(default_factory=list)
    outcome: Optional[ActionOutcome] = None

    @property
    def acted(self) -> bool:
        return self.outcome is not None


class DecisionLoop:
    """Executes the best feasible action for a confirmed situation."""

    def __init__(
        self,
        platform: Platform,
        server_selector: ServerSelector,
        protection: ProtectionRegistry,
        alerts: AlertChannel,
        settings: ControllerSettings,
        executor: Optional[ActionExecutor] = None,
        relocation_handler: Optional[
            Callable[[Situation, int], Optional[ActionOutcome]]
        ] = None,
    ) -> None:
        self.platform = platform
        self.server_selector = server_selector
        self.protection = protection
        self.alerts = alerts
        self.settings = settings
        #: every action flows through the failure-hardened executor; the
        #: default is a transparent pass-through (no injected faults)
        self.executor = executor if executor is not None else ActionExecutor(platform)
        #: last resort for overloads no local action can remedy: a
        #: federation-installed callback that may relocate an instance to
        #: another control domain.  ``None`` (single-domain deployments)
        #: escalates to the administrator as before.
        self.relocation_handler = relocation_handler
        self.records: List[DecisionRecord] = []

    # -- helpers -----------------------------------------------------------------

    def _approved(
        self,
        now: int,
        description: str,
        ranked: RankedAction,
        target_host: Optional[str] = None,
    ) -> bool:
        if self.settings.mode is ControllerMode.AUTOMATIC:
            return True
        # the proposed action rides on the request so an administrator
        # answering *later* (live ops API) can still have it executed
        return self.alerts.request_confirmation(
            now,
            description,
            service_name=ranked.service_name,
            action={
                "action": ranked.action.value,
                "service_name": ranked.service_name,
                "instance_id": ranked.instance_id,
                "target_host": target_host,
                "applicability": ranked.applicability,
            },
        )

    def _protect_involved(
        self, outcome: ActionOutcome, now: int
    ) -> None:
        subjects = {outcome.service_name}
        if outcome.source_host:
            subjects.add(outcome.source_host)
        if outcome.target_host:
            subjects.add(outcome.target_host)
        if outcome.instance_id:
            instance = self.platform.service(outcome.service_name).find_instance(
                outcome.instance_id
            )
            if instance is not None:
                subjects.add(instance.host_name)
        self.protection.protect(subjects, now)

    # -- the Figure 6 loop -----------------------------------------------------------

    def handle(
        self,
        situation: Situation,
        ranked_actions: List[RankedAction],
        now: int,
        protect: bool = True,
    ) -> Optional[ActionOutcome]:
        """Try the ranked actions best-first; return the executed outcome.

        ``None`` means no action could be executed; in that case an
        escalation alert has been raised.  ``protect=False`` executes
        without entering protection mode — used by the feed-forward
        scaler, whose anticipatory actions must not block the reactive
        path from remedying the real breach later.
        """
        record = DecisionRecord(situation=situation)
        self.records.append(record)
        remedy_in_flight = False
        for ranked in ranked_actions:
            if ranked.applicability < self.settings.min_applicability:
                break  # the list is sorted; everything below is discarded
            if self.protection.is_protected(ranked.service_name, now):
                record.considered.append(f"{ranked}: service protected")
                remedy_in_flight = True
                continue
            problem = verify_action(
                self.platform, ranked.action, ranked.service_name, ranked.instance_id
            )
            if problem is not None:
                record.considered.append(f"{ranked}: {problem}")
                continue
            outcome = self._try_action(ranked, record, now)
            if outcome is not None:
                record.outcome = outcome
                if protect:
                    self._protect_involved(outcome, now)
                self.alerts.info(now, f"executed {outcome}")
                return outcome
        if remedy_in_flight:
            # every viable action touched a protected service: a remedy was
            # recently executed and the system is deliberately settling
            self.alerts.info(now, f"deferred (protection active): {situation}")
        elif situation.kind.is_overload:
            if self.relocation_handler is not None:
                outcome = self.relocation_handler(situation, now)
                if outcome is not None:
                    record.outcome = outcome
                    if protect:
                        self._protect_involved(outcome, now)
                    self.alerts.info(now, f"executed {outcome}")
                    return outcome
            self.alerts.escalate(
                now,
                f"no applicable action for {situation}; human interaction required",
            )
        else:
            # an unremediable idle situation is wasteful, not urgent
            self.alerts.info(now, f"no applicable action for {situation}")
        return None

    def _try_action(
        self, ranked: RankedAction, record: DecisionRecord, now: int
    ) -> Optional[ActionOutcome]:
        if not ranked.action.needs_target_host:
            description = str(ranked)
            if not self._approved(now, description, ranked):
                record.considered.append(f"{ranked}: declined by administrator")
                return None
            try:
                return self.executor.execute(
                    ranked.action,
                    ranked.service_name,
                    instance_id=ranked.instance_id,
                    applicability=ranked.applicability,
                )
            except ActionError as error:
                record.considered.append(f"{ranked}: {error}")
                return None
        return self._try_targeted_action(ranked, record, now)

    def _try_targeted_action(
        self, ranked: RankedAction, record: DecisionRecord, now: int
    ) -> Optional[ActionOutcome]:
        # Protection excludes services and servers from being *acted upon*
        # (their instances are not stopped or moved away), but a protected
        # host may still receive a new instance: absorbing load is not the
        # oscillation the protection mode guards against.
        candidates = candidate_hosts(
            self.platform, ranked.action, ranked.service_name, ranked.instance_id
        )
        if not candidates:
            record.considered.append(f"{ranked}: no candidate host")
            return None
        for scored in self.server_selector.rank(self.platform, ranked.action, candidates):
            if scored.score < self.settings.min_applicability:
                record.considered.append(
                    f"{ranked}: remaining hosts below applicability threshold"
                )
                break
            description = f"{ranked} -> {scored}"
            if not self._approved(now, description, ranked, scored.host_name):
                record.considered.append(f"{description}: declined by administrator")
                return None
            try:
                return self.executor.execute(
                    ranked.action,
                    ranked.service_name,
                    instance_id=ranked.instance_id,
                    target_host=scored.host_name,
                    applicability=ranked.applicability,
                )
            except ActionError as error:
                # fall back to the next-best host (Figure 6: "Another Host?"
                # — a transient failure that exhausted its retries lands
                # here too, so flaky actuation degrades into fallback)
                record.considered.append(f"{description}: {error}")
        return None
