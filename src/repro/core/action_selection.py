"""The action-selection fuzzy controller (Section 4.1, Figure 7).

Given a confirmed exceptional situation, the controller fuzzifies the
Table 1 measurements, evaluates the trigger's rule base and defuzzifies
one applicability value per action.  For server-triggered situations the
controller runs once per service on the affected host and the resulting
actions are collected, verified against the constraints and sorted by
applicability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.config.model import Action
from repro.core import variables
from repro.core.rulebases import default_action_rulebases
from repro.fuzzy.controller import FuzzyController
from repro.fuzzy.parser import parse_rules
from repro.fuzzy.rules import RuleBase
from repro.monitoring.lms import SituationKind

__all__ = ["ActionContext", "RankedAction", "ActionSelector"]


@dataclass(frozen=True)
class ActionContext:
    """Crisp inputs for one action-selection run.

    CPU and memory loads are watch-time means (initialized from the load
    archive); the remaining variables are current measurements or static
    metadata (Section 4.1).
    """

    service_name: str
    instance_id: Optional[str]
    measurements: Mapping[str, float]

    def measurement(self, name: str) -> float:
        return self.measurements[name]


@dataclass(frozen=True)
class RankedAction:
    """One action with its defuzzified applicability (0..1)."""

    action: Action
    applicability: float
    service_name: str
    instance_id: Optional[str] = None

    def __str__(self) -> str:
        subject = self.instance_id or self.service_name
        return f"{self.action.value}({subject})={self.applicability:.0%}"


class ActionSelector:
    """Ranks the Table 2 actions for a confirmed situation."""

    def __init__(
        self,
        rulebases: Optional[Dict[SituationKind, RuleBase]] = None,
    ) -> None:
        self._rulebases = rulebases if rulebases is not None else default_action_rulebases()
        output_names = [action.value for action in Action]
        self._controller = FuzzyController(
            variables.action_selection_inputs(),
            [variables.applicability_variable(name) for name in output_names],
            RuleBase("empty"),
        )
        for rulebase in self._rulebases.values():
            self._controller.engine.validate(rulebase)
        #: service name -> trigger -> override rule base
        self._service_rulebases: Dict[str, Dict[SituationKind, RuleBase]] = {}

    # -- service-specific rule bases ------------------------------------------------

    def register_service_rules(
        self, service_name: str, kind: SituationKind, rules_text: str
    ) -> None:
        """Layer administrator-provided rules over the defaults.

        "An administrator can add service-specific rule bases for mission
        critical services, e.g., to favor powerful servers for these
        services."  (Section 4.1)
        """
        override = RuleBase(
            f"{service_name}-{kind.value}",
            list(parse_rules(rules_text, label_prefix=f"{service_name}-{kind.value}")),
        )
        self._controller.engine.validate(override)
        self._service_rulebases.setdefault(service_name, {})[kind] = override

    def rulebase_for(self, kind: SituationKind, service_name: str) -> RuleBase:
        base = self._rulebases[kind]
        override = self._service_rulebases.get(service_name, {}).get(kind)
        if override is None:
            return base
        return base.merged_with(override)

    # -- evaluation --------------------------------------------------------------------

    def rank(
        self, kind: SituationKind, context: ActionContext
    ) -> List[RankedAction]:
        """Applicability of every action for one service context, sorted
        descending (ties broken by action name for determinism)."""
        rulebase = self.rulebase_for(kind, context.service_name)
        result = self._controller.evaluate(dict(context.measurements), rulebase)
        ranked = [
            RankedAction(
                action=Action.from_name(name),
                applicability=value,
                service_name=context.service_name,
                instance_id=context.instance_id,
            )
            for name, value in result.outputs.items()
        ]
        ranked.sort(key=lambda r: (-r.applicability, r.action.value))
        return ranked

    def rank_many(
        self, kind: SituationKind, contexts: List[ActionContext]
    ) -> List[RankedAction]:
        """Server-triggered evaluation: run the controller for each service
        on the host and collect all actions into one ranking (Figure 7)."""
        collected: List[RankedAction] = []
        for context in contexts:
            collected.extend(self.rank(kind, context))
        collected.sort(
            key=lambda r: (-r.applicability, r.action.value, r.service_name)
        )
        return collected
