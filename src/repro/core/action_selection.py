"""The action-selection fuzzy controller (Section 4.1, Figure 7).

Given a confirmed exceptional situation, the controller fuzzifies the
Table 1 measurements, evaluates the trigger's rule base and defuzzifies
one applicability value per action.  For server-triggered situations the
controller runs once per service on the affected host and the resulting
actions are collected, verified against the constraints and sorted by
applicability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config.model import Action
from repro.core import variables
from repro.core.rulebases import default_action_rulebases
from repro.fuzzy.controller import FuzzyController
from repro.fuzzy.parser import parse_rules
from repro.fuzzy.rules import RuleBase
from repro.monitoring.lms import SituationKind

__all__ = ["ActionContext", "RankedAction", "ActionSelector"]


@dataclass(frozen=True)
class ActionContext:
    """Crisp inputs for one action-selection run.

    CPU and memory loads are watch-time means (initialized from the load
    archive); the remaining variables are current measurements or static
    metadata (Section 4.1).
    """

    service_name: str
    instance_id: Optional[str]
    measurements: Mapping[str, float]

    def measurement(self, name: str) -> float:
        return self.measurements[name]


@dataclass(frozen=True)
class RankedAction:
    """One action with its defuzzified applicability (0..1)."""

    action: Action
    applicability: float
    service_name: str
    instance_id: Optional[str] = None

    def __str__(self) -> str:
        subject = self.instance_id or self.service_name
        return f"{self.action.value}({subject})={self.applicability:.0%}"


class ActionSelector:
    """Ranks the Table 2 actions for a confirmed situation."""

    def __init__(
        self,
        rulebases: Optional[Dict[SituationKind, RuleBase]] = None,
    ) -> None:
        self._rulebases = rulebases if rulebases is not None else default_action_rulebases()
        output_names = [action.value for action in Action]
        self._controller = FuzzyController(
            variables.action_selection_inputs(),
            [variables.applicability_variable(name) for name in output_names],
            RuleBase("empty"),
        )
        for rulebase in self._rulebases.values():
            self._controller.engine.validate(rulebase)
        #: service name -> trigger -> override rule base
        self._service_rulebases: Dict[str, Dict[SituationKind, RuleBase]] = {}
        #: memoized merged rule bases: (kind, service) -> merged base, so
        #: the hot path reuses one object per combination (also the key
        #: the batched evaluation groups contexts by)
        self._merged_rulebases: Dict[Tuple[SituationKind, str], RuleBase] = {}

    # -- service-specific rule bases ------------------------------------------------

    def register_service_rules(
        self, service_name: str, kind: SituationKind, rules_text: str
    ) -> None:
        """Layer administrator-provided rules over the defaults.

        "An administrator can add service-specific rule bases for mission
        critical services, e.g., to favor powerful servers for these
        services."  (Section 4.1)
        """
        override = RuleBase(
            f"{service_name}-{kind.value}",
            list(parse_rules(rules_text, label_prefix=f"{service_name}-{kind.value}")),
        )
        self._controller.engine.validate(override)
        self._service_rulebases.setdefault(service_name, {})[kind] = override
        self._merged_rulebases.pop((kind, service_name), None)

    def rulebase_for(self, kind: SituationKind, service_name: str) -> RuleBase:
        key = (kind, service_name)
        merged = self._merged_rulebases.get(key)
        if merged is None:
            base = self._rulebases[kind]
            override = self._service_rulebases.get(service_name, {}).get(kind)
            merged = base if override is None else base.merged_with(override)
            self._merged_rulebases[key] = merged
        return merged

    # -- evaluation --------------------------------------------------------------------

    def _ranked_from_outputs(
        self, context: ActionContext, outputs: Mapping[str, float]
    ) -> List[RankedAction]:
        ranked = [
            RankedAction(
                action=Action.from_name(name),
                applicability=value,
                service_name=context.service_name,
                instance_id=context.instance_id,
            )
            for name, value in outputs.items()
        ]
        ranked.sort(key=lambda r: (-r.applicability, r.action.value))
        return ranked

    def rank(
        self, kind: SituationKind, context: ActionContext
    ) -> List[RankedAction]:
        """Applicability of every action for one service context, sorted
        descending (ties broken by action name for determinism)."""
        rulebase = self.rulebase_for(kind, context.service_name)
        result = self._controller.evaluate(dict(context.measurements), rulebase)
        return self._ranked_from_outputs(context, result.outputs)

    def _outputs_for(
        self, kind: SituationKind, contexts: Sequence[ActionContext]
    ) -> List[Dict[str, float]]:
        """Crisp outputs aligned with ``contexts``.

        Contexts are grouped by their (memoized) merged rule base and each
        group is evaluated in one vectorized batch; results come back in
        the original context order so callers assemble rankings exactly as
        the per-context path would.
        """
        if len(contexts) == 1:
            context = contexts[0]
            rulebase = self.rulebase_for(kind, context.service_name)
            result = self._controller.evaluate(dict(context.measurements), rulebase)
            return [result.outputs]
        groups: Dict[int, Tuple[RuleBase, List[int]]] = {}
        for idx, context in enumerate(contexts):
            rulebase = self.rulebase_for(kind, context.service_name)
            entry = groups.get(id(rulebase))
            if entry is None:
                groups[id(rulebase)] = (rulebase, [idx])
            else:
                entry[1].append(idx)
        outputs_list: List[Dict[str, float]] = [{} for _ in contexts]
        for rulebase, indices in groups.values():
            batch = [contexts[i].measurements for i in indices]
            for i, outputs in zip(
                indices, self._controller.evaluate_many(batch, rulebase)
            ):
                outputs_list[i] = outputs
        return outputs_list

    def rank_many(
        self, kind: SituationKind, contexts: List[ActionContext]
    ) -> List[RankedAction]:
        """Server-triggered evaluation: run the controller for each service
        on the host and collect all actions into one ranking (Figure 7)."""
        collected: List[RankedAction] = []
        for context, outputs in zip(contexts, self._outputs_for(kind, contexts)):
            collected.extend(self._ranked_from_outputs(context, outputs))
        collected.sort(
            key=lambda r: (-r.applicability, r.action.value, r.service_name)
        )
        return collected

    def rank_situations(
        self,
        entries: Sequence[Tuple[SituationKind, Sequence[ActionContext], bool]],
    ) -> List[List[RankedAction]]:
        """Rank many situations' contexts in one batched evaluation.

        Each entry is ``(kind, contexts, server_style)``; ``server_style``
        selects :meth:`rank_many` assembly (one merged ranking across the
        entry's contexts) versus :meth:`rank` assembly (single context).
        Contexts from *all* entries are pooled and grouped by merged rule
        base, so one tick's open situations cost one vectorized inference
        per distinct rule base instead of one scalar inference per
        context.  Entry ``i`` of the result is bit-identical to calling
        ``rank_many(kind, contexts)`` / ``rank(kind, contexts[0])``.
        """
        pooled: Dict[int, Tuple[RuleBase, List[Tuple[int, int]]]] = {}
        for entry_idx, (kind, contexts, _server_style) in enumerate(entries):
            for context_idx, context in enumerate(contexts):
                rulebase = self.rulebase_for(kind, context.service_name)
                slot = pooled.get(id(rulebase))
                if slot is None:
                    pooled[id(rulebase)] = (rulebase, [(entry_idx, context_idx)])
                else:
                    slot[1].append((entry_idx, context_idx))
        outputs: Dict[Tuple[int, int], Dict[str, float]] = {}
        for rulebase, slots in pooled.values():
            batch = [entries[e][1][c].measurements for e, c in slots]
            for slot, out in zip(
                slots, self._controller.evaluate_many(batch, rulebase)
            ):
                outputs[slot] = out
        results: List[List[RankedAction]] = []
        for entry_idx, (kind, contexts, server_style) in enumerate(entries):
            per_context = [
                self._ranked_from_outputs(context, outputs[(entry_idx, context_idx)])
                for context_idx, context in enumerate(contexts)
            ]
            if server_style:
                collected = [r for ranked in per_context for r in ranked]
                collected.sort(
                    key=lambda r: (-r.applicability, r.action.value, r.service_name)
                )
                results.append(collected)
            else:
                results.append(per_context[0] if per_context else [])
        return results
