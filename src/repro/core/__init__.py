"""AutoGlobe's fuzzy-controller core (Section 4 of the paper).

The controller module consists of two cooperating fuzzy controllers:

* **action selection** (:mod:`repro.core.action_selection`) reacts to a
  confirmed exceptional situation and ranks the management actions of
  Table 2 by applicability, using dedicated rule bases per trigger
  (:mod:`repro.core.rulebases`) evaluated over the input variables of
  Table 1 (:mod:`repro.core.variables`);
* **server selection** (:mod:`repro.core.server_selection`) scores
  candidate target hosts for actions that need one, using per-action
  rule bases over the input variables of Table 3.

:mod:`repro.core.decision` implements the Figure 6 interaction loop
(fall back across hosts, then across actions), and
:mod:`repro.core.autoglobe` is the facade wiring platform, monitoring
and controllers together, including protection mode
(:mod:`repro.core.protection`), constraint verification
(:mod:`repro.core.constraints`), administrator alerting
(:mod:`repro.core.alerts`) and the text controller console
(:mod:`repro.core.console`).
"""

from repro.core.action_selection import ActionContext, ActionSelector, RankedAction
from repro.core.alerts import Alert, AlertChannel
from repro.core.autoglobe import AutoGlobeController
from repro.core.constraints import verify_action
from repro.core.decision import DecisionLoop, DecisionRecord
from repro.core.explain import explain_decision, explain_last_decisions, explain_selection
from repro.core.protection import ProtectionRegistry
from repro.core.server_selection import RankedHost, ServerSelector

__all__ = [
    "ActionContext",
    "ActionSelector",
    "Alert",
    "AlertChannel",
    "AutoGlobeController",
    "DecisionLoop",
    "DecisionRecord",
    "ProtectionRegistry",
    "RankedAction",
    "RankedHost",
    "ServerSelector",
    "explain_decision",
    "explain_last_decisions",
    "explain_selection",
    "verify_action",
]
