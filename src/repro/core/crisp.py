"""A crisp threshold-rule controller (comparison baseline).

The related work the paper discusses (FlexFrame, IBM Dynamic
Infrastructure, Sun N1) manages infrastructures with crisp,
"mostly rule-based" policies that are "not as flexible as our fuzzy
controller".  This module implements such a baseline with the same
observation machinery (thresholds, watch times, protection) but
hard-coded crisp decisions:

* overload  -> always scale out to the least-loaded feasible host
  (falling back to scale-up, then move),
* idle      -> always scale in.

There is no graded applicability: every breach produces the same action
preference regardless of how powerful the host is, how many instances
exist, or how the service's own load compares to the host's.  The
ablation benchmark compares it against the fuzzy controller under
identical workloads.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.config.model import Action, ControllerSettings
from repro.core.alerts import AlertChannel
from repro.core.protection import ProtectionRegistry
from repro.serviceglobe.actions import ActionError, ActionOutcome
from repro.serviceglobe.platform import Platform

__all__ = ["CrispThresholdController"]

#: Fixed preference order on overload: the baseline always tries these.
_OVERLOAD_ORDER = (Action.SCALE_OUT, Action.SCALE_UP, Action.MOVE)


class CrispThresholdController:
    """Threshold-rule controller with the AutoGlobe tick interface."""

    def __init__(
        self,
        platform: Platform,
        settings: Optional[ControllerSettings] = None,
        enabled: bool = True,
    ) -> None:
        self.platform = platform
        self.settings = settings if settings is not None else platform.landscape.controller
        self.enabled = enabled
        self.alerts = AlertChannel()
        self.protection = ProtectionRegistry(self.settings.protection_time)
        self._overload_streak: Dict[str, int] = {}
        self._idle_streak: Dict[str, int] = {}

    # -- helpers --------------------------------------------------------------------

    def _least_loaded_host(self, candidates) -> Optional[str]:
        if not candidates:
            return None
        return min(candidates, key=lambda h: (h.cpu_load, h.name)).name

    def _heaviest_instance(self, host):
        instances = host.running_instances
        if not instances:
            return None
        return max(instances, key=lambda i: (i.demand, i.instance_id))

    def _try_overload_actions(self, host, now: int) -> Optional[ActionOutcome]:
        from repro.core.constraints import candidate_hosts, verify_action

        instance = self._heaviest_instance(host)
        if instance is None:
            return None
        service_name = instance.service_name
        if self.protection.is_protected(service_name, now):
            return None
        for action in _OVERLOAD_ORDER:
            if verify_action(
                self.platform, action, service_name, instance.instance_id
            ) is not None:
                continue
            candidates = candidate_hosts(
                self.platform, action, service_name, instance.instance_id
            )
            target = self._least_loaded_host(candidates)
            if target is None:
                continue
            try:
                outcome = self.platform.execute(
                    action,
                    service_name,
                    instance_id=(
                        instance.instance_id if action is not Action.SCALE_OUT else None
                    ),
                    target_host=target,
                )
            except ActionError:
                continue
            self.protection.protect({service_name, host.name, target}, now)
            self.alerts.info(now, f"crisp controller executed {outcome}")
            return outcome
        self.alerts.escalate(now, f"crisp controller: no action for {host.name}")
        return None

    def _try_idle_action(self, host, now: int) -> Optional[ActionOutcome]:
        from repro.core.constraints import verify_action

        instance = self._heaviest_instance(host)
        if instance is None:
            return None
        service_name = instance.service_name
        if self.protection.is_protected(service_name, now):
            return None
        if verify_action(
            self.platform, Action.SCALE_IN, service_name, instance.instance_id
        ) is not None:
            return None
        try:
            outcome = self.platform.execute(
                Action.SCALE_IN, service_name, instance_id=instance.instance_id
            )
        except ActionError:
            return None
        self.protection.protect({service_name, host.name}, now)
        self.alerts.info(now, f"crisp controller executed {outcome}")
        return outcome

    # -- tick -----------------------------------------------------------------------------

    def tick(self, now: int) -> List[ActionOutcome]:
        self.platform.current_time = now
        outcomes: List[ActionOutcome] = []
        if not self.enabled:
            return outcomes
        for host_name, host in self.platform.hosts.items():
            load = host.cpu_load
            idle_threshold = self.settings.idle_threshold(host.performance_index)
            if load > self.settings.overload_threshold:
                self._overload_streak[host_name] = (
                    self._overload_streak.get(host_name, 0) + 1
                )
            else:
                self._overload_streak[host_name] = 0
            if load < idle_threshold and host.running_instances:
                self._idle_streak[host_name] = self._idle_streak.get(host_name, 0) + 1
            else:
                self._idle_streak[host_name] = 0

            if (
                self._overload_streak[host_name] >= self.settings.overload_watch_time
                and not self.protection.is_protected(host_name, now)
            ):
                outcome = self._try_overload_actions(host, now)
                if outcome is not None:
                    outcomes.append(outcome)
                self._overload_streak[host_name] = 0
            elif (
                self._idle_streak[host_name] >= self.settings.idle_watch_time
                and not self.protection.is_protected(host_name, now)
            ):
                outcome = self._try_idle_action(host, now)
                if outcome is not None:
                    outcomes.append(outcome)
                self._idle_streak[host_name] = 0
        return outcomes

    # -- ControlPlane conformance ---------------------------------------------------
    #
    # The baseline keeps only trivial soft state (threshold streaks), but
    # it implements the full repro.core.controlplane.ControlPlane surface
    # so benchmarks and the runner can swap it in anywhere the fuzzy
    # controller (or the federation) goes.

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "tick": self.platform.current_time,
            "overload_streak": dict(self._overload_streak),
            "idle_streak": dict(self._idle_streak),
            "protection": self.protection.snapshot_state(),
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        for name, streak in payload.get("overload_streak", {}).items():
            self._overload_streak[name] = max(
                self._overload_streak.get(name, 0), int(streak)
            )
        for name, streak in payload.get("idle_streak", {}).items():
            self._idle_streak[name] = max(
                self._idle_streak.get(name, 0), int(streak)
            )
        self.protection.restore_state(payload.get("protection", {}))

    def reconcile(self, now: int, intents: Dict[str, Dict[str, Any]]) -> List[ActionOutcome]:
        # crisp actions run unjournalled straight against the platform;
        # there are never in-flight intents to resolve
        return []
