"""The control-plane contract of the simulation runner.

Everything that drives a landscape — the fuzzy
:class:`~repro.core.autoglobe.AutoGlobeController`, the crisp baseline
(:class:`~repro.core.crisp.CrispThresholdController`), a supervised
controller behind :class:`~repro.core.failover.ControllerSupervisor`,
and the sharded :class:`~repro.core.federation.FederatedControlPlane` —
presents the same narrow surface to the runner:

* :meth:`ControlPlane.tick` — one per-minute cycle returning the
  executed action outcomes,
* :attr:`ControlPlane.alerts` — the administrator channel (info /
  warning / escalation, plus the semi-automatic approval queue),
* :meth:`ControlPlane.snapshot_state` / :meth:`ControlPlane.restore_state`
  — JSON-able soft state for kill-and-resume recovery,
* :meth:`ControlPlane.reconcile` — resolve in-flight action intents a
  crashed leader left behind.

The protocol is structural (duck-typed): implementations do not inherit
from it, and ``isinstance`` checks only attribute presence.  Signature
variations are deliberate where recovery context differs —
``ControllerSupervisor.restore_state`` takes the resume minute because
it must truncate its journal, the plain controllers do not need it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol, runtime_checkable

from repro.serviceglobe.actions import ActionOutcome

__all__ = ["ControlPlane"]


@runtime_checkable
class ControlPlane(Protocol):
    """Structural interface every landscape controller implements."""

    #: whether the plane takes actions; a disabled plane still monitors
    enabled: bool

    @property
    def alerts(self) -> Any:
        """The administrator alert channel (or an aggregated view of one)."""

    def tick(self, now: int) -> List[ActionOutcome]:
        """Run one controller cycle for simulated minute ``now``."""
        ...

    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-able soft state for durable run snapshots."""
        ...

    def restore_state(self, payload: Dict[str, Any], *args: Any) -> None:
        """Rebuild soft state from a :meth:`snapshot_state` payload."""
        ...

    def reconcile(
        self, now: int, intents: Dict[str, Dict[str, Any]]
    ) -> List[ActionOutcome]:
        """Resolve action intents left unresolved by a crashed leader."""
        ...
