"""Explaining controller decisions.

Fuzzy controllers are "capable of utilizing knowledge of an experienced
human operator" (Section 3) — and the flip side is that their decisions
can be explained back to that operator in the operator's own terms:
which measurements fuzzified to which grades, which rules fired how
strongly, why the chosen action beat the alternatives, and why rejected
actions fell through.

:func:`explain_selection` renders one action-selection evaluation;
:func:`explain_decision` renders a whole Figure-6 decision record.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.action_selection import ActionContext, ActionSelector
from repro.core.decision import DecisionRecord
from repro.monitoring.lms import SituationKind

__all__ = ["explain_selection", "explain_decision"]


def explain_selection(
    selector: ActionSelector,
    kind: SituationKind,
    context: ActionContext,
    top_rules: int = 6,
) -> str:
    """Narrate one action-selection run: grades, fired rules, ranking."""
    rulebase = selector.rulebase_for(kind, context.service_name)
    result = selector._controller.evaluate(dict(context.measurements), rulebase)
    lines: List[str] = [
        f"action selection for {context.service_name} "
        f"({context.instance_id or 'service level'}), trigger {kind.value}:"
    ]
    lines.append("  fuzzified measurements:")
    for variable, grades in sorted(result.grades.items()):
        rendered = ", ".join(
            f"{term}={grade:.2f}" for term, grade in grades.items() if grade > 0
        )
        crisp = context.measurements[variable]
        lines.append(f"    {variable} = {crisp:.2f}  ->  {rendered or 'nothing'}")
    fired = sorted(result.fired, key=lambda f: -f.strength)
    lines.append(f"  strongest rules (of {len(result.fired)}):")
    for entry in fired[:top_rules]:
        if entry.strength <= 0:
            break
        label = entry.rule.label or "unnamed"
        lines.append(
            f"    [{entry.strength:.2f}] {label}: "
            f"IF {entry.rule.antecedent} THEN {entry.rule.output_variable}"
        )
    if not any(entry.strength > 0 for entry in fired):
        lines.append("    (no rule fired)")
    lines.append("  resulting applicability ranking:")
    for name, value in result.ranked():
        if value <= 0:
            continue
        lines.append(f"    {name}: {value:.0%}")
    return "\n".join(lines)


def explain_decision(record: DecisionRecord) -> str:
    """Narrate one Figure-6 decision: the situation, the path, the outcome."""
    lines: List[str] = [f"situation: {record.situation}"]
    if record.considered:
        lines.append("considered and rejected:")
        for note in record.considered:
            lines.append(f"  - {note}")
    if record.outcome is not None:
        lines.append(f"executed: {record.outcome}")
    else:
        lines.append("executed: nothing (no applicable action)")
    return "\n".join(lines)


def explain_last_decisions(records: List[DecisionRecord], limit: int = 3) -> str:
    """The most recent decisions, newest first."""
    if not records:
        return "(no decisions recorded yet)"
    chunks = [explain_decision(record) for record in records[-limit:][::-1]]
    return "\n\n".join(chunks)
