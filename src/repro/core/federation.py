"""Control domains: per-domain controllers federated over one landscape.

A large landscape is partitioned into *control domains* — named shards
of its servers (``<controlDomains>`` in the XML language).  Each domain
gets the full Figure 2 stack of its own: a controller (optionally
supervised for crash recovery), an LMS with its advisors, and a load
archive, all scoped through a
:class:`~repro.serviceglobe.platform.DomainView` so situation detection,
placement and archive writes never cross shards.  The substrate —
network fabric, registry, dispatcher, code repository, audit log,
telemetry bus — stays shared: there is still exactly one ServiceGlobe
federation underneath.

The federation layer itself does exactly one thing beyond ticking the
shards round-robin: it arbitrates **cross-domain relocation**.  A domain
whose decision loop cannot resolve a confirmed ``serverOverloaded``
situation locally publishes a relocation request instead of escalating
straight to the administrator; the federation scores candidate hosts in
*other* domains with the existing server-selection controller and, if
one fits, moves an instance there through a two-phase escrow:

1. **prepare** — the requesting domain's fencing token is validated
   against its own guard (a deposed leader cannot export instances) and
   the target host re-checked for feasibility;
2. **commit** — the move runs through the requesting shard's executor,
   with an escrow barrier spliced into the platform's existing
   relocation commit barrier that re-validates the fencing token at the
   commit point (after the source instance detached, before the target
   takes over).  A leadership change mid-escrow aborts the move there;
   the platform's ordinary compensation restores the source instance —
   or queues it for self-healing if the source host died in flight.

Ownership follows the *home domain* rule: a service belongs to the
domain of its first initially allocated host for the whole run, even
after one of its instances is relocated onto another domain's server.

A landscape with zero or one declared domain never builds this class;
the runner keeps constructing the classic single controller, which
stays byte-for-byte identical to the pre-domain stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.config.model import Action, ControllerSettings
from repro.core.alerts import CommandQueue
from repro.core.autoglobe import AutoGlobeController
from repro.core.failover import ControllerSupervisor
from repro.core.server_selection import ServerSelector
from repro.core.state import DurableStateStore
from repro.monitoring.archive import InMemoryLoadArchive, LoadArchive
from repro.monitoring.lms import Situation, SituationKind
from repro.serviceglobe.actions import (
    ActionError,
    ActionOutcome,
    FencedActionError,
    NoSuchTarget,
)
from repro.serviceglobe.executor import ActionExecutor, ExecutionFaults
from repro.serviceglobe.platform import DomainView, Platform
from repro.telemetry.records import EscrowEvent, EscrowPhase

__all__ = ["DomainShard", "RelocationRequest", "FederatedControlPlane"]

DomainController = Union[AutoGlobeController, ControllerSupervisor]


@dataclass
class DomainShard:
    """One control domain's runtime: scoped view, controller, archive."""

    name: str
    view: DomainView
    controller: DomainController
    archive: LoadArchive

    @property
    def supervised(self) -> bool:
        return isinstance(self.controller, ControllerSupervisor)

    @property
    def executor(self) -> ActionExecutor:
        return self.controller.executor


@dataclass
class RelocationRequest:
    """One published cross-domain relocation request and its resolution."""

    time: int
    source_domain: str
    subject: str  # the overloaded host
    service_name: str = ""
    instance_id: str = ""
    target_domain: str = ""
    #: ``"moved"``, ``"fenced"``, or ``"unresolved"`` (no domain could help)
    status: str = "unresolved"


class _FederatedFailureDetector:
    """Routes heartbeat bookkeeping to the owning domain's detector.

    Instance ids are ``"<service>#<seq>"``, so the owning shard is the
    service's home domain.  ``forget`` fans out to every shard (it is an
    idempotent discard) because sweeps may race relocations.
    """

    def __init__(self, plane: "FederatedControlPlane") -> None:
        self._plane = plane

    @property
    def suppressed(self):
        combined = set()
        for shard in self._plane.shards.values():
            combined.update(shard.controller.failure_detector.suppressed)
        return combined

    def suppress(self, instance_id: str) -> None:
        shard = self._plane._shard_for_instance(instance_id)
        shard.controller.failure_detector.suppress(instance_id)

    def forget(self, instance_id: str) -> None:
        for shard in self._plane.shards.values():
            shard.controller.failure_detector.forget(instance_id)


class _FederatedApprovals:
    """Aggregated semi-automatic approval queue over every shard."""

    def __init__(self, plane: "FederatedControlPlane") -> None:
        self._plane = plane

    def _queues(self):
        return [s.controller.alerts.approvals for s in self._plane.shards.values()]

    def pending(self):
        return [request for queue in self._queues() for request in queue.pending()]

    def expired(self):
        return [request for queue in self._queues() for request in queue.expired()]

    @property
    def requests(self):
        return [request for queue in self._queues() for request in queue.requests]


class _FederatedAlerts:
    """Aggregated administrator channel over every shard."""

    def __init__(self, plane: "FederatedControlPlane") -> None:
        self._plane = plane

    @property
    def alerts(self):
        return [
            alert
            for shard in self._plane.shards.values()
            for alert in shard.controller.alerts.alerts
        ]

    def escalations(self):
        return [
            alert
            for shard in self._plane.shards.values()
            for alert in shard.controller.alerts.escalations()
        ]

    @property
    def approvals(self) -> _FederatedApprovals:
        return _FederatedApprovals(self._plane)


class FederatedControlPlane:
    """Ticks N per-domain controllers and arbitrates cross-domain moves.

    Parameters
    ----------
    platform:
        The shared substrate.  Its landscape must declare at least two
        control domains.
    settings / enabled:
        Forwarded to every domain controller.
    supervised:
        Put every domain controller behind its own
        :class:`~repro.core.failover.ControllerSupervisor` (leases and
        fencing tokens are then per-domain).
    state_dir:
        Durable-state root; each domain persists under its own
        subdirectory (``<state_dir>/<domain>/``) so journals, snapshots
        and lease rows never mix.  ``None`` keeps stores in memory.
    standby:
        Hot-standby failover inside each domain (supervised only).
    archive_factory:
        ``domain name -> LoadArchive`` building each domain's archive;
        defaults to in-memory archives.
    execution_faults / chaos_seed:
        Chaos actuation profile: every shard executor gets its own
        deterministic RNG stream derived from ``chaos_seed`` and the
        shard's position, so federated chaos runs are reproducible.
    lease_ttl:
        Per-domain lease validity in simulated minutes (supervised only).
    scan_mode:
        Landscape scan strategy forwarded to every shard controller
        (``"columnar"`` or ``"object-graph"``); all shards share one
        platform substrate so they must agree on the mode.
    """

    def __init__(
        self,
        platform: Platform,
        settings: Optional[ControllerSettings] = None,
        enabled: bool = True,
        supervised: bool = False,
        state_dir: Optional[Path] = None,
        standby: bool = False,
        archive_factory: Optional[Callable[[str], LoadArchive]] = None,
        execution_faults: Optional[ExecutionFaults] = None,
        chaos_seed: Optional[int] = None,
        lease_ttl: Optional[int] = None,
        scan_mode: str = "columnar",
    ) -> None:
        landscape = platform.landscape
        if not landscape.is_federated:
            raise ValueError(
                "a federated control plane needs at least two control "
                f"domains; landscape {landscape.name!r} declares "
                f"{len(landscape.domains)}"
            )
        self.platform = platform
        self.settings = settings if settings is not None else landscape.controller
        self._enabled = enabled
        self._supervised = supervised
        self._standby = standby
        self._execution_faults = execution_faults
        self._chaos_seed = chaos_seed
        #: host name -> owning domain
        self.host_domains: Dict[str, str] = {
            server: domain.name
            for domain in landscape.effective_domains()
            for server in domain.servers
        }
        #: service name -> home domain (first initial host's domain)
        self.service_homes: Dict[str, str] = landscape.service_domains()
        #: the federation's own server-selection controller, used to
        #: score foreign candidate hosts for relocation requests
        self.server_selector = ServerSelector()
        #: every published cross-domain relocation request, resolved or not
        self.relocation_requests: List[RelocationRequest] = []
        self._fault_cursor = 0
        # escrow ids must stay unique across kill-and-resume, so the
        # counter rides in snapshot_state alongside the fault cursor
        self._escrow_sequence = 0
        #: operator verdicts posted from outside the simulation thread;
        #: broadcast to every shard at the next tick
        self.commands = CommandQueue()
        self.shards: Dict[str, DomainShard] = {}
        homes_by_domain: Dict[str, List[str]] = {}
        for service_name, home in self.service_homes.items():
            homes_by_domain.setdefault(home, []).append(service_name)
        for index, domain in enumerate(landscape.effective_domains()):
            view = DomainView(
                platform,
                domain.name,
                host_names=domain.servers,
                service_names=homes_by_domain.get(domain.name, []),
            )
            archive = (
                archive_factory(domain.name)
                if archive_factory is not None
                else InMemoryLoadArchive()
            )
            handler = self._relocation_handler_for(domain.name)
            controller: DomainController
            if supervised:
                store_dir = state_dir / domain.name if state_dir else None
                controller = ControllerSupervisor(
                    view,
                    settings=self.settings,
                    archive=archive,
                    enabled=enabled,
                    store=DurableStateStore(store_dir),
                    standby=standby,
                    executor_factory=self._executor_factory_for(view, index),
                    relocation_handler=handler,
                    scan_mode=scan_mode,
                    **({"lease_ttl": lease_ttl} if lease_ttl is not None else {}),
                )
            else:
                controller = AutoGlobeController(
                    view,
                    settings=self.settings,
                    archive=archive,
                    enabled=enabled,
                    executor=self._make_executor(view, index, f"{domain.name}-exec", 0),
                    relocation_handler=handler,
                    scan_mode=scan_mode,
                )
            self.shards[domain.name] = DomainShard(
                name=domain.name, view=view, controller=controller, archive=archive
            )

    # -- construction helpers --------------------------------------------------------

    def _make_executor(
        self, view: DomainView, index: int, name: str, replica_number: int
    ) -> ActionExecutor:
        faults = (
            self._execution_faults if self._execution_faults is not None
            else ExecutionFaults()
        )
        # distinct deterministic stream per (domain, replica): domains
        # spaced by 100 leave room for failover replicas in between
        seed = (
            self._chaos_seed + 1000 + 100 * index + replica_number
            if self._chaos_seed is not None
            else 0
        )
        return ActionExecutor(view, faults=faults, seed=seed, name=name)

    def _executor_factory_for(self, view: DomainView, index: int):
        def factory(name: str, replica_number: int) -> ActionExecutor:
            return self._make_executor(view, index, name, replica_number)

        return factory

    def _relocation_handler_for(self, domain_name: str):
        def handler(situation: Situation, now: int) -> Optional[ActionOutcome]:
            return self._handle_relocation(domain_name, situation, now)

        return handler

    # -- routing ----------------------------------------------------------------------

    def _shard_for_instance(self, instance_id: str) -> DomainShard:
        service_name = instance_id.split("#", 1)[0]
        home = self.service_homes.get(service_name)
        if home is None:
            raise NoSuchTarget(
                f"no control domain administers instance {instance_id!r}"
            )
        return self.shards[home]

    def _shard_for_host(self, host_name: str) -> DomainShard:
        domain = self.host_domains.get(host_name)
        if domain is None:
            raise NoSuchTarget(f"host {host_name!r} belongs to no control domain")
        return self.shards[domain]

    @property
    def _supervised_shards(self) -> List[DomainShard]:
        return [shard for shard in self.shards.values() if shard.supervised]

    # -- cross-domain relocation -------------------------------------------------------

    def _handle_relocation(
        self, domain_name: str, situation: Situation, now: int
    ) -> Optional[ActionOutcome]:
        """Resolve one domain's unresolvable overload with a foreign host.

        Called synchronously from the requesting domain's decision loop
        after every local remedy failed.  Returns the executed outcome,
        or ``None`` (the caller escalates to the administrator exactly
        as a single-domain controller would).
        """
        if situation.kind is not SituationKind.SERVER_OVERLOADED:
            return None
        shard = self.shards[domain_name]
        host = self.platform.hosts.get(situation.subject)
        if host is None or not host.up:
            return None
        request = RelocationRequest(
            time=now, source_domain=domain_name, subject=situation.subject
        )
        self.relocation_requests.append(request)
        # heaviest owned instance first: moving it sheds the most load
        movable = sorted(
            (
                instance
                for instance in host.running_instances
                if instance.service_name in shard.view.services
                and self.platform.service(instance.service_name)
                .spec.constraints.allows(Action.MOVE)
            ),
            key=lambda i: (-i.demand, i.instance_id),
        )
        for instance in movable:
            outcome = self._offer_elsewhere(shard, request, instance, now)
            if outcome is not None:
                return outcome
        return None

    def _foreign_candidates(self, source_domain: str, instance) -> List[Any]:
        """Feasible equal-index hosts in every *other* domain."""
        source_index = self.platform.host(instance.host_name).performance_index
        candidates = []
        for host_name, host in self.platform.hosts.items():
            if self.host_domains.get(host_name) == source_domain:
                continue
            if host.performance_index != source_index:
                continue  # move requires an equivalently powerful host
            if self.platform.can_host(instance.service_name, host_name) is None:
                candidates.append(host)
        return candidates

    def _offer_elsewhere(
        self,
        shard: DomainShard,
        request: RelocationRequest,
        instance,
        now: int,
    ) -> Optional[ActionOutcome]:
        candidates = self._foreign_candidates(shard.name, instance)
        if not candidates:
            return None
        request.service_name = instance.service_name
        request.instance_id = instance.instance_id
        for scored in self.server_selector.rank(
            self.platform, Action.MOVE, candidates
        ):
            if scored.score < self.settings.min_applicability:
                break
            target_domain = self.host_domains[scored.host_name]
            try:
                outcome = self._escrowed_move(
                    shard, instance, scored.host_name, target_domain, now
                )
            except FencedActionError:
                request.status = "fenced"
                return None  # a deposed leader must not keep trying
            except ActionError:
                continue
            request.target_domain = target_domain
            request.status = "moved"
            return outcome
        return None

    def _escrowed_move(
        self,
        shard: DomainShard,
        instance,
        target_host: str,
        target_domain: str,
        now: int,
    ) -> ActionOutcome:
        """Two-phase escrow around the platform's relocation machinery.

        Every phase transition publishes an
        :class:`~repro.telemetry.records.EscrowEvent` keyed by a unique
        escrow id; the temporal-invariant verifier (AG302) rebuilds the
        prepare → commit → attach happens-before chain from these.
        """
        executor = shard.executor
        token = executor.fencing_token
        self._escrow_sequence += 1
        escrow_id = f"escrow-{self._escrow_sequence:06d}"
        source_host = instance.host_name
        committed = False
        closed = False

        def publish(phase: EscrowPhase, note: str = "") -> None:
            self.platform.bus.publish(
                EscrowEvent(
                    time=now,
                    phase=phase,
                    escrow_id=escrow_id,
                    service_name=instance.service_name,
                    instance_id=instance.instance_id,
                    source_domain=shard.name,
                    target_domain=target_domain,
                    source_host=source_host,
                    target_host=target_host,
                    fencing_token=token,
                    note=note,
                )
            )

        def abort(note: str) -> None:
            nonlocal closed
            if not closed:
                closed = True
                publish(EscrowPhase.ABORT, note)

        # phase 1 (prepare): the exporting domain must still be led by
        # the controller that raised the request, and the import must be
        # physically feasible right now
        try:
            shard.view.fence.validate(token)
        except FencedActionError:
            abort("prepare fenced")
            raise
        reason = self.platform.can_host(instance.service_name, target_host)
        if reason is not None:
            abort(f"prepare infeasible: {reason}")
            raise ActionError(
                f"escrow prepare failed: {instance.service_name} on "
                f"{target_host}: {reason}"
            )
        publish(EscrowPhase.PREPARE)
        # phase 2 (commit): splice an escrow barrier into the existing
        # relocation commit barrier; it re-validates the exporting
        # domain's fencing token at the commit point, so a leadership
        # change mid-escrow aborts the move and the platform compensates
        previous = self.platform.move_fault_hook

        def escrow_barrier(moving, barrier_target: str) -> None:
            nonlocal committed
            if previous is not None:
                previous(moving, barrier_target)
            try:
                shard.view.fence.validate(token)
            except FencedActionError:
                abort("commit fenced")
                raise
            # published once even if chaos retries re-run the barrier:
            # the retries re-commit the *same* transfer
            if not committed:
                committed = True
                publish(EscrowPhase.COMMIT)

        self.platform.move_fault_hook = escrow_barrier
        try:
            outcome = executor.execute(
                Action.MOVE,
                instance.service_name,
                instance_id=instance.instance_id,
                target_host=target_host,
                note=(
                    f"cross-domain relocation {shard.name}->{target_domain}"
                ),
            )
        except ActionError as exc:
            abort(f"move failed: {exc}")
            raise
        finally:
            self.platform.move_fault_hook = previous
        if outcome.status == "ok":
            closed = True
            publish(EscrowPhase.ATTACH)
        else:
            abort(f"move {outcome.status}: {outcome.note}")
        return outcome

    # -- the per-minute cycle ----------------------------------------------------------

    def tick(self, now: int) -> List[ActionOutcome]:
        """Tick every domain controller in declaration order."""
        # operator verdicts are broadcast: request ids are domain-prefixed,
        # so exactly one shard owns each command and the rest skip it
        for command in self.commands.drain():
            for shard in self.shards.values():
                shard.controller.commands.post(command)
        outcomes: List[ActionOutcome] = []
        for shard in self.shards.values():
            outcomes.extend(shard.controller.tick(now))
        return outcomes

    # -- ControlPlane surface -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        for shard in self.shards.values():
            shard.controller.enabled = bool(value)

    @property
    def alerts(self) -> _FederatedAlerts:
        return _FederatedAlerts(self)

    @property
    def failure_detector(self) -> _FederatedFailureDetector:
        return _FederatedFailureDetector(self)

    @property
    def decision_records(self):
        return [
            record
            for shard in self.shards.values()
            for record in shard.controller.decision_records
        ]

    @property
    def situations_handled(self):
        return [
            situation
            for shard in self.shards.values()
            for situation in shard.controller.situations_handled
        ]

    @property
    def downtime_minutes(self) -> int:
        return sum(
            getattr(shard.controller, "downtime_minutes", 0)
            for shard in self.shards.values()
        )

    @property
    def events(self):
        """Merged (time, kind, detail) supervision events of every shard."""
        merged = [
            tuple(event)
            for shard in self._supervised_shards
            for event in shard.controller.events
        ]
        merged.sort(key=lambda event: event[0])
        return merged

    def report_failure(self, instance_id: str, now: int):
        return self._shard_for_instance(instance_id).controller.report_failure(
            instance_id, now
        )

    def degrade_monitoring(self, host_name: str, until: int) -> None:
        self._shard_for_host(host_name).controller.degrade_monitoring(
            host_name, until
        )

    # -- controller-fault hooks (round-robin across supervised domains) -----------------

    def fault_in_progress(self, now: int) -> bool:
        return any(
            shard.controller.fault_in_progress(now)
            for shard in self._supervised_shards
        )

    def crash_active(self, now: int, down_minutes: int) -> Optional[str]:
        """Crash one supervised domain's leader; returns the domain name."""
        shards = self._supervised_shards
        if not shards:
            return None
        shard = shards[self._fault_cursor % len(shards)]
        self._fault_cursor += 1
        shard.controller.crash_active(now, down_minutes)
        return shard.name

    def partition_active(self, now: int, minutes: int) -> Optional[str]:
        """Partition one supervised domain's leader; returns the domain name."""
        shards = self._supervised_shards
        if not shards:
            return None
        shard = shards[self._fault_cursor % len(shards)]
        self._fault_cursor += 1
        shard.controller.partition_active(now, minutes)
        return shard.name

    # -- durability (kill -9 and resume) -------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "fault_cursor": self._fault_cursor,
            "escrow_sequence": self._escrow_sequence,
            "domains": {
                name: shard.controller.snapshot_state()
                for name, shard in self.shards.items()
            },
        }

    def restore_state(self, payload: Dict[str, Any], now: int = 0) -> None:
        self._fault_cursor = int(payload.get("fault_cursor", 0))
        self._escrow_sequence = int(payload.get("escrow_sequence", 0))
        for name, shard_payload in payload.get("domains", {}).items():
            shard = self.shards.get(name)
            if shard is None or shard_payload is None:
                continue
            if shard.supervised:
                shard.controller.restore_state(shard_payload, now)
            else:
                shard.controller.restore_state(shard_payload)

    def reconcile(
        self, now: int, intents: Dict[str, Dict[str, Any]]
    ) -> List[ActionOutcome]:
        """Route leftover intents to the shard whose executor issued them.

        Intent ids are ``"<executor name>:<seq>"``; unroutable intents
        fall to the first shard, whose reconciliation resolves them
        against the shared platform state all shards see.
        """
        outcomes: List[ActionOutcome] = []
        by_shard: Dict[str, Dict[str, Dict[str, Any]]] = {}
        first = next(iter(self.shards))
        for intent_id, data in intents.items():
            owner = first
            executor_name = intent_id.rsplit(":", 1)[0]
            for name, shard in self.shards.items():
                if shard.executor.name == executor_name:
                    owner = name
                    break
            by_shard.setdefault(owner, {})[intent_id] = data
        for name, shard_intents in by_shard.items():
            outcomes.extend(self.shards[name].controller.reconcile(now, shard_intents))
        return outcomes
