"""Constraint verification for controller decisions.

"The fuzzy controller only considers actions that do not violate any
given constraint [...].  The first action of the list is selected and
verified once more.  This is necessary, because the fuzzy controller is
able to handle several exceptional situations concurrently."
(Section 4.1)

:func:`verify_action` answers *why* an action is currently infeasible
for a service (or ``None`` if it is feasible), combining the declarative
constraints with the platform's runtime state.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.model import Action
from repro.serviceglobe.host import ServiceHost
from repro.serviceglobe.platform import Platform

__all__ = ["verify_action", "candidate_hosts"]


def verify_action(
    platform: Platform,
    action: Action,
    service_name: str,
    instance_id: Optional[str] = None,
) -> Optional[str]:
    """Reason the action is infeasible right now, or ``None`` if feasible."""
    service = platform.service(service_name)
    constraints = service.spec.constraints
    if not constraints.allows(action):
        return f"{service_name} does not support {action.value}"
    running = service.running_instances

    if action in (Action.START, Action.SCALE_OUT):
        if action is Action.START and running:
            return f"{service_name} is already running"
        if action is Action.SCALE_OUT and not running:
            return f"{service_name} is stopped"
        if (
            constraints.max_instances is not None
            and len(running) >= constraints.max_instances
        ):
            return (
                f"{service_name} is already at its maximum of "
                f"{constraints.max_instances} instances"
            )
        if not candidate_hosts(platform, action, service_name, instance_id):
            return f"no host can accept another {service_name} instance"
        return None

    if action in (Action.STOP, Action.SCALE_IN):
        if not running:
            return f"{service_name} is not running"
        minimum = constraints.min_instances
        remaining = 0 if action is Action.STOP else len(running) - 1
        if remaining < minimum:
            return (
                f"{service_name} must keep at least {minimum} instances running"
            )
        if action is Action.SCALE_IN and len(running) <= 1:
            return f"{service_name}: scale-in of the last instance is not allowed"
        return None

    if action in (Action.SCALE_UP, Action.SCALE_DOWN, Action.MOVE):
        if not running:
            return f"{service_name} is not running"
        if not candidate_hosts(platform, action, service_name, instance_id):
            return f"no suitable target host for {action.value} of {service_name}"
        return None

    # priority actions are always executable on a running service
    if not running:
        return f"{service_name} is not running"
    return None


def candidate_hosts(
    platform: Platform,
    action: Action,
    service_name: str,
    instance_id: Optional[str] = None,
) -> List[ServiceHost]:
    """Hosts that could physically receive the action's new/moved instance.

    Applies the platform's feasibility checks plus the performance index
    relation of the relocation actions: scale-up targets a more powerful
    host, scale-down a less powerful one, move an equivalently powerful
    one (Table 2).
    """
    if not action.needs_target_host:
        return []
    if action in (Action.START, Action.SCALE_OUT):
        # a new instance may start anywhere feasible, including a host
        # that already runs one (memory permitting)
        return platform.eligible_hosts(service_name)
    instance = None
    if instance_id is not None:
        instance = platform.service(service_name).find_instance(instance_id)
    if instance is None:
        running = platform.service(service_name).running_instances
        if not running:
            return []
        # default to the instance on the most loaded host, as execution will
        instance = max(
            running, key=lambda i: (platform.host_cpu_load(i.host_name), i.instance_id)
        )
    source_name = instance.host_name
    state = getattr(platform, "landscape_state", None)
    eligible_ids = getattr(platform, "eligible_ids", None)
    if state is not None and state.cache_enabled and eligible_ids is not None:
        # the perf-index relation over thousands of eligible hosts is one
        # column comparison; ids arrive in the same substrate order the
        # host objects would, so the filtered list is identical
        ids = eligible_ids(service_name)
        source_id = state.host_index.ids.get(source_name, -1)
        if ids is not None and source_id >= 0:
            perf = state.host_perf_index
            source_index = perf[source_id]
            if action is Action.SCALE_UP:
                keep = perf[ids] > source_index
            elif action is Action.SCALE_DOWN:
                keep = perf[ids] < source_index
            else:
                keep = perf[ids] == source_index
            keep &= ids != source_id
            host_objs = state.host_objs
            return [host_objs[i] for i in ids[keep]]
    eligible = platform.eligible_hosts(service_name)
    source_index = platform.host(source_name).performance_index
    if action is Action.SCALE_UP:
        return [
            host
            for host in eligible
            if host.name != source_name and host.performance_index > source_index
        ]
    if action is Action.SCALE_DOWN:
        return [
            host
            for host in eligible
            if host.name != source_name and host.performance_index < source_index
        ]
    return [
        host
        for host in eligible
        if host.name != source_name and host.performance_index == source_index
    ]
