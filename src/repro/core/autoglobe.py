"""The AutoGlobe controller facade.

Wires together the full Figure 2 architecture for one platform:

* load monitors for every server and every service instance,
* advisors escalating threshold crossings,
* the load monitoring system confirming real situations after watchTime,
* the two fuzzy controllers and the Figure 6 decision loop,
* protection mode, administrator alerts and the load archive,
* the self-healing path restarting crashed service instances.

Drive it by calling :meth:`AutoGlobeController.tick` once per simulated
minute after the workload model has updated instance demands.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.config.model import Action, ControllerSettings
from repro.core.action_selection import ActionContext, ActionSelector, RankedAction
from repro.core.alerts import (
    AlertChannel,
    ApprovalCommand,
    ApprovalRequest,
    CommandQueue,
    ConfirmationCallback,
)
from repro.core.constraints import verify_action
from repro.core.decision import DecisionLoop
from repro.core.protection import ProtectionRegistry
from repro.core.server_selection import ServerSelector
from repro.monitoring.advisor import Advisor, SubjectKind
from repro.monitoring.archive import ArchiveFlusher, InMemoryLoadArchive, LoadArchive
from repro.monitoring.heartbeat import HeartbeatDetector
from repro.monitoring.lms import LoadMonitoringSystem, Situation, SituationKind
from repro.monitoring.monitor import LoadMonitor
from repro.serviceglobe.actions import ActionError, ActionOutcome, NoSuchTarget
from repro.serviceglobe.executor import ActionExecutor
from repro.serviceglobe.platform import Platform
from repro.serviceglobe.service import ServiceInstance
from repro.telemetry.records import LoadReportBatch

__all__ = ["AutoGlobeController"]


class AutoGlobeController:
    """Supervises one platform and remedies exceptional situations."""

    def __init__(
        self,
        platform: Platform,
        settings: Optional[ControllerSettings] = None,
        archive: Optional[LoadArchive] = None,
        confirm: Optional[ConfirmationCallback] = None,
        enabled: bool = True,
        reservations=None,
        executor: Optional[ActionExecutor] = None,
        relocation_handler=None,
        scan_mode: str = "columnar",
    ) -> None:
        if scan_mode not in ("columnar", "object-graph"):
            raise ValueError(
                f"scan_mode must be 'columnar' or 'object-graph', got {scan_mode!r}"
            )
        #: ``"columnar"`` (the default) drives the per-minute cycle off the
        #: platform's :class:`~repro.serviceglobe.landscape_state.LandscapeState`:
        #: monitor sets are re-synchronized only when a version counter
        #: moved, samples are computed as vectorized column reads, down
        #: hosts come from the cached down-id scan and open situations are
        #: ranked in one batched fuzzy evaluation.  ``"object-graph"``
        #: disables the columnar cache and walks the object graph exactly
        #: as the pre-columnar controller did — the reference path for the
        #: equivalence suite and the benchmark baseline.  All controllers
        #: sharing one platform must use the same mode.
        self.scan_mode = scan_mode
        self.platform = platform
        if scan_mode == "object-graph":
            platform.landscape_state.cache_enabled = False
        self.settings = settings if settings is not None else platform.landscape.controller
        self.archive = archive if archive is not None else InMemoryLoadArchive()
        self.enabled = enabled
        #: name of the control domain this controller administers; empty
        #: for the classic single-controller deployment (``platform`` is
        #: then the full :class:`~repro.serviceglobe.platform.Platform`,
        #: not a :class:`~repro.serviceglobe.platform.DomainView`)
        self.domain = getattr(platform, "domain_name", "")
        self.lms = LoadMonitoringSystem()
        self.lms.bus = platform.bus
        self.lms.domain = self.domain
        self.protection = ProtectionRegistry(self.settings.protection_time)
        self.alerts = AlertChannel(
            confirm, approval_ttl=self.settings.approval_ttl, bus=platform.bus
        )
        self.alerts.approvals.domain = self.domain
        #: operator verdicts posted from outside the simulation thread
        #: (the ops API); drained at the start of every enabled tick
        self.commands = CommandQueue()
        self.action_selector = ActionSelector()
        #: optional ReservationBook: reserved capacity steers host selection
        self.reservations = reservations
        self.server_selector = ServerSelector(reservations=reservations)
        #: every controller-issued action flows through this executor;
        #: the default is a transparent pass-through, chaos runs inject
        #: transient failures, latency and timeouts here
        self.executor = executor if executor is not None else ActionExecutor(platform)
        self.decision_loop = DecisionLoop(
            platform=platform,
            server_selector=self.server_selector,
            protection=self.protection,
            alerts=self.alerts,
            settings=self.settings,
            executor=self.executor,
            relocation_handler=relocation_handler,
        )
        self.situations_handled: List[Situation] = []
        #: heartbeat-based failure detection feeding the self-healing path
        self.failure_detector = HeartbeatDetector(platform)
        #: host name -> last minute (inclusive) its load reports are lost;
        #: fed by failure injection to model monitoring degradation
        self._monitor_outages: Dict[str, int] = {}
        #: service name -> preferred host for a restart that could not be
        #: executed yet (every eligible host down); retried each tick
        self._pending_restarts: Dict[str, str] = {}
        #: optional :class:`~repro.core.state.StateJournal` shared by the
        #: protection registry, LMS, approval queue and executor; set via
        #: :meth:`attach_journal`
        self.journal = None
        #: services ever seen with a running instance: the baseline the
        #: dead-service reconciliation compares against after a recovery
        #: (a service that never ran is not "dead", it just never started)
        self._seen_running: Set[str] = set()
        #: observation descriptors recovered from a snapshot/journal,
        #: revived in the next tick once their monitors exist again
        self._pending_observation_restores: List[Dict[str, Any]] = []
        #: one tick's load reports, flushed to the bus (and from there to
        #: the archive) in one batch after the sampling pass
        self._report_buffer: List[Tuple[str, str, int, float]] = []
        #: the bus->archive bridge; shared across replicas of the same
        #: archive so a standby taking over does not double-store batches
        self.archive_flusher = self._ensure_archive_flusher()
        self._host_cpu_monitors: Dict[str, LoadMonitor] = {}
        self._host_mem_monitors: Dict[str, LoadMonitor] = {}
        self._host_advisors: Dict[str, Advisor] = {}
        #: service-level load monitors ("service:<name>" archive subjects);
        #: their history backs the service load forecasts (Section 7)
        self._service_monitors: Dict[str, LoadMonitor] = {}
        #: (instance id, host name) -> advisor; recreated when the instance moves
        self._instance_advisors: Dict[Tuple[str, str], Advisor] = {}
        self._instance_monitors: Dict[str, LoadMonitor] = {}
        #: landscape-state version cursors: the monitor-set scans run only
        #: when the corresponding counter moved since the last sync
        self._registry_cursor = -1
        self._topology_cursor = -1
        #: state ids aligned with the host/service monitor dicts, the index
        #: vectors behind the batched per-tick column reads
        self._host_monitor_ids = np.empty(0, dtype=np.int64)
        self._service_monitor_ids = np.empty(0, dtype=np.int64)
        self._install_service_rule_overrides()
        self._sync_host_monitors()

    # -- setup ---------------------------------------------------------------------

    def _ensure_archive_flusher(self) -> ArchiveFlusher:
        """One flusher per (archive, bus) pair.

        Controller replicas (hot standby, post-crash recovery) share one
        archive and one platform bus; a second flusher on the same pair
        would store every published batch twice.
        """
        flusher = getattr(self.archive, "bus_flusher", None)
        if (
            flusher is None
            or flusher.bus is not self.platform.bus
            or flusher.archive is not self.archive
            or flusher.domain != self.domain
        ):
            flusher = ArchiveFlusher(self.archive, self.platform.bus, domain=self.domain)
            self.archive.bus_flusher = flusher
        return flusher

    def _install_service_rule_overrides(self) -> None:
        for service in self.platform.landscape.services:
            for trigger_name, rules_text in service.rule_overrides.items():
                kind = SituationKind(trigger_name)
                self.action_selector.register_service_rules(
                    service.name, kind, rules_text
                )

    def _sync_host_monitors(self) -> None:
        state = self.platform.landscape_state
        if (
            self.scan_mode == "columnar"
            and self._registry_cursor == state.registry_version
        ):
            return  # host set is fixed, service set unchanged since last sync
        for host in self.platform.hosts.values():
            if host.name in self._host_cpu_monitors:
                continue
            cpu_monitor = LoadMonitor(
                host.name, "cpu",
                probe=lambda h=host: h.cpu_load,
                archive=self.archive,
            )
            cpu_monitor.report_sink = self._report_buffer
            mem_monitor = LoadMonitor(
                host.name, "mem",
                probe=lambda n=host.name: self.platform.host_mem_load(n),
                archive=self.archive,
            )
            mem_monitor.report_sink = self._report_buffer
            self._host_cpu_monitors[host.name] = cpu_monitor
            self._host_mem_monitors[host.name] = mem_monitor
            self._host_advisors[host.name] = Advisor(
                cpu_monitor,
                SubjectKind.SERVER,
                self.lms,
                overload_threshold=self.settings.overload_threshold,
                idle_threshold=self.settings.idle_threshold(host.performance_index),
                overload_watch_time=self.settings.overload_watch_time,
                idle_watch_time=self.settings.idle_watch_time,
            )
        for service_name in self.platform.services:
            if service_name in self._service_monitors:
                continue
            # total demand, not average load: invariant under the
            # controller's own scale-outs, so daily patterns stay clean
            monitor = LoadMonitor(
                f"service:{service_name}",
                "demand",
                probe=lambda n=service_name: self.platform.service_demand(n),
                archive=self.archive,
            )
            monitor.report_sink = self._report_buffer
            self._service_monitors[service_name] = monitor
        self._registry_cursor = state.registry_version
        if self.scan_mode == "columnar":
            self._host_monitor_ids = np.fromiter(
                (state.host_index.ids[name] for name in self._host_cpu_monitors),
                dtype=np.int64,
                count=len(self._host_cpu_monitors),
            )
            self._service_monitor_ids = np.fromiter(
                (state.service_index.ids[name] for name in self._service_monitors),
                dtype=np.int64,
                count=len(self._service_monitors),
            )

    def _sync_instance_monitors(self) -> None:
        """Create advisors for new instances, retire stale ones.

        An instance's advisor watches the CPU load of the instance's
        *current* host (an instance suffers when its host saturates); its
        idle threshold depends on the host's performance index, so moving
        an instance recreates its advisor.  In columnar scan mode the
        rebuild runs only when the landscape's topology version moved —
        placement, running set and host health changes are exactly the
        events that can invalidate the advisor set.
        """
        state = self.platform.landscape_state
        if (
            self.scan_mode == "columnar"
            and self._topology_cursor == state.topology_version
        ):
            return
        self._topology_cursor = state.topology_version
        running: Dict[str, ServiceInstance] = {
            instance.instance_id: instance
            for instance in self.platform.all_instances()
        }
        for key in list(self._instance_advisors):
            instance_id, host_name = key
            instance = running.get(instance_id)
            if instance is None or instance.host_name != host_name:
                self._instance_advisors.pop(key).detach()
                if instance is None:
                    self._instance_monitors.pop(instance_id, None)
        for instance in running.values():
            key = (instance.instance_id, instance.host_name)
            if key in self._instance_advisors:
                continue
            monitor = self._instance_monitors.get(instance.instance_id)
            if monitor is None:
                monitor = LoadMonitor(
                    instance.instance_id,
                    "cpu",
                    probe=lambda i=instance: self.platform.host(i.host_name).cpu_load,
                    archive=self.archive,
                )
                monitor.report_sink = self._report_buffer
                self._instance_monitors[instance.instance_id] = monitor
            host = self.platform.host(instance.host_name)
            self._instance_advisors[key] = Advisor(
                monitor,
                SubjectKind.SERVICE_INSTANCE,
                self.lms,
                overload_threshold=self.settings.overload_threshold,
                idle_threshold=self.settings.idle_threshold(host.performance_index),
                overload_watch_time=self.settings.overload_watch_time,
                idle_watch_time=self.settings.idle_watch_time,
                service_name=instance.service_name,
            )

    # -- measurement contexts ------------------------------------------------------------

    def _watch_time_for(self, kind: SituationKind) -> int:
        if kind.is_overload:
            return self.settings.overload_watch_time
        return self.settings.idle_watch_time

    def _context_for_instance(
        self, instance: ServiceInstance, kind: SituationKind, now: int
    ) -> ActionContext:
        """Initialize the Table 1 variables for one instance.

        CPU load is the watch-time mean from the load archive ("All
        variables [...] regarding CPU or memory load are set to the
        arithmetic means of the load values during the service specific
        watchTime"); the remaining variables use current measurements and
        metadata.
        """
        host = self.platform.host(instance.host_name)
        watch = self._watch_time_for(kind)
        cpu_mean = self.archive.average(host.name, "cpu", now - watch + 1, now)
        if cpu_mean is None:
            cpu_mean = host.cpu_load
        service = self.platform.service(instance.service_name)
        measurements = {
            "cpuLoad": cpu_mean,
            "memLoad": self.platform.host_mem_load(host.name),
            "performanceIndex": host.performance_index,
            "instanceLoad": self.platform.instance_load(instance),
            "serviceLoad": self.platform.service_load(instance.service_name),
            "instancesOnServer": float(len(host.running_instances)),
            "instancesOfService": float(len(service.running_instances)),
        }
        return ActionContext(
            service_name=instance.service_name,
            instance_id=instance.instance_id,
            measurements=measurements,
        )

    def _rank_for_situation(
        self, situation: Situation, now: int
    ) -> List[RankedAction]:
        kind = situation.kind
        if kind.is_server:
            host = self.platform.host(situation.subject)
            contexts = [
                self._context_for_instance(instance, kind, now)
                for instance in host.running_instances
            ]
            return self.action_selector.rank_many(kind, contexts)
        instance = self.platform.instance(situation.subject)
        context = self._context_for_instance(instance, kind, now)
        return self.action_selector.rank(kind, context)

    def _speculative_rankings(
        self, situations: List[Situation], blind: set, now: int
    ) -> Tuple[Dict[int, List[RankedAction]], int]:
        """Batch-rank this tick's situations in one fuzzy evaluation.

        All situations that would survive the decision loop's cheap
        guards are ranked together through
        :meth:`ActionSelector.rank_situations`, keyed by ``id(situation)``
        and stamped with the landscape's mutation version.  The decision
        loop uses a cached ranking only while the version still matches —
        an executed remedy mutates the landscape and invalidates every
        ranking computed after it — so the speculation can never change
        behavior, only save work.  The guards themselves are monotone
        within a tick (protection is only added, blind hosts are fixed,
        vanished instances stay vanished), so a situation filtered out
        here is also skipped by the loop.
        """
        if self.scan_mode != "columnar" or len(situations) < 2:
            return {}, -1
        survivors = [
            situation
            for situation in situations
            if not (situation.kind.is_server and situation.subject in blind)
            and not self._instance_vanished(situation)
            and not self._situation_protected(situation, now)
        ]
        if len(survivors) < 2:
            return {}, -1
        entries = []
        for situation in survivors:
            kind = situation.kind
            if kind.is_server:
                host = self.platform.host(situation.subject)
                contexts = [
                    self._context_for_instance(instance, kind, now)
                    for instance in host.running_instances
                ]
                entries.append((kind, contexts, True))
            else:
                instance = self.platform.instance(situation.subject)
                contexts = [self._context_for_instance(instance, kind, now)]
                entries.append((kind, contexts, False))
        version = self.platform.landscape_state.mutation_version
        rankings = self.action_selector.rank_situations(entries)
        return {
            id(situation): ranked
            for situation, ranked in zip(survivors, rankings)
        }, version

    def _situation_protected(self, situation: Situation, now: int) -> bool:
        if self.protection.is_protected(situation.subject, now):
            return True
        if situation.kind.is_server:
            return False
        instance = self.platform.service(situation.service_name).find_instance(
            situation.subject
        )
        if instance is None:
            return True  # instance vanished since confirmation
        return self.protection.any_protected(
            [situation.service_name, instance.host_name], now
        )

    # -- monitoring degradation --------------------------------------------------------

    def degrade_monitoring(self, host_name: str, until: int) -> None:
        """Lose the host's load reports up to minute ``until`` (inclusive).

        Models a monitoring outage: the host keeps running, but its
        advisors see no fresh measurements.  The stale-data guards in
        :class:`~repro.monitoring.advisor.Advisor` and the coverage check
        in the LMS keep the controller from mistaking the gap for zero
        load.
        """
        current = self._monitor_outages.get(host_name, -1)
        self._monitor_outages[host_name] = max(current, until)

    def _down_host_names(self) -> List[str]:
        """Down hosts of this controller's platform, in substrate order.

        Columnar scan mode reads the landscape state's cached down-id
        tuple (one identity check in the steady state) and filters it to
        the platform's host set — a :class:`DomainView` administers a
        subset of the global landscape.
        """
        state = self.platform.landscape_state
        names = state.host_index.names
        hosts = self.platform.hosts
        return [
            name
            for hid in state.down_host_ids()
            if (name := names[hid]) in hosts
        ]

    def _blind_hosts(self, now: int) -> set:
        """Hosts with no usable measurements this minute: down or in a
        monitoring outage."""
        if self.scan_mode == "columnar":
            blind = set(self._down_host_names())
        else:
            blind = {
                name for name, host in self.platform.hosts.items() if not host.up
            }
        for name, until in list(self._monitor_outages.items()):
            if now <= until:
                blind.add(name)
            else:
                del self._monitor_outages[name]
        return blind

    # -- the per-minute cycle ------------------------------------------------------------

    def _sample_columnar(self, now: int, blind: set) -> None:
        """One tick's monitor sweep off the columnar state.

        The per-monitor probe lambdas are bypassed: each monitor family's
        values come from one vectorized column read (the state flushes its
        dirty ids once, up front) and are pushed through the exact same
        record/report/observe pipeline as :meth:`LoadMonitor.sample`.
        Loop order matches the object-graph sweep — cpu monitors, mem
        monitors, service monitors, instance monitors, each in dict
        insertion order — so the report buffer and every advisor see the
        identical event sequence.
        """
        state = self.platform.landscape_state
        cpu_values = state.host_cpu_values(self._host_monitor_ids)
        mem_values = state.host_mem_values(self._host_monitor_ids)
        if blind:
            for (name, monitor), value in zip(
                self._host_cpu_monitors.items(), cpu_values
            ):
                if name in blind:
                    monitor.mark_dropped(now)
                else:
                    monitor.push(now, value)
            for (name, monitor), value in zip(
                self._host_mem_monitors.items(), mem_values
            ):
                if name in blind:
                    monitor.mark_dropped(now)
                else:
                    monitor.push(now, value)
        else:
            for monitor, value in zip(self._host_cpu_monitors.values(), cpu_values):
                monitor.push(now, value)
            for monitor, value in zip(self._host_mem_monitors.values(), mem_values):
                monitor.push(now, value)
        # service demand is aggregated from the registry's own state, not
        # shipped through per-host monitoring agents: always available
        for monitor, value in zip(
            self._service_monitors.values(),
            state.service_demand_values(self._service_monitor_ids),
        ):
            monitor.push(now, value)
        # an instance monitor reports its *current* host's cpu load; the
        # already-computed column read covers the monitored hosts, and a
        # foreign host (relocated instance in a domain view) falls back
        # to a cached scalar read
        cpu_by_name = dict(zip(self._host_cpu_monitors, cpu_values))
        host_ids = state.host_index.ids
        for (__, host_name), advisor in list(self._instance_advisors.items()):
            if host_name in blind:
                advisor.monitor.mark_dropped(now)
            else:
                value = cpu_by_name.get(host_name)
                if value is None:
                    value = state.host_cpu_load(host_ids[host_name])
                advisor.monitor.push(now, value)

    def tick(self, now: int) -> List[ActionOutcome]:
        """One controller cycle: sample, inspect, confirm, decide, act."""
        self.platform.current_time = now
        self._sync_host_monitors()
        self._sync_instance_monitors()
        if self._pending_observation_restores:
            self._restore_observations(now)
        blind = self._blind_hosts(now)
        if self.scan_mode == "columnar":
            self._sample_columnar(now, blind)
        else:
            for name, monitor in self._host_cpu_monitors.items():
                if name in blind:
                    monitor.mark_dropped(now)
                else:
                    monitor.sample(now)
            for name, monitor in self._host_mem_monitors.items():
                if name in blind:
                    monitor.mark_dropped(now)
                else:
                    monitor.sample(now)
            # service demand is aggregated from the registry's own state,
            # not shipped through per-host monitoring agents: always
            # available
            for monitor in self._service_monitors.values():
                monitor.sample(now)
            for (__, host_name), advisor in list(self._instance_advisors.items()):
                if host_name in blind:
                    advisor.monitor.mark_dropped(now)
                else:
                    advisor.monitor.sample(now)
        # one batched flush per tick: the archive consumes this minute's
        # reports off the bus before any decision queries watch-time means
        if self._report_buffer:
            self.platform.bus.publish(
                LoadReportBatch(now, tuple(self._report_buffer), self.domain)
            )
            self._report_buffer.clear()
        for name, advisor in self._host_advisors.items():
            if name not in blind:
                advisor.inspect(now)
        for (__, host_name), advisor in self._instance_advisors.items():
            if host_name not in blind:
                advisor.inspect(now)
        # a crashed host voids its pending observations: whatever was
        # suspected before the crash cannot be confirmed against a host
        # that no longer exists in the landscape
        if self.scan_mode == "columnar":
            for name in self._down_host_names():
                self.lms.cancel_subject(name, now)
        else:
            for name, host in self.platform.hosts.items():
                if not host.up:
                    self.lms.cancel_subject(name, now)
        outcomes: List[ActionOutcome] = []
        situations = self.lms.tick(now)
        if not self.enabled:
            return outcomes
        # operator verdicts first, then deferred executions, then expiry:
        # an approval and the TTL racing on the same tick resolves in the
        # administrator's favor
        for command in self.commands.drain():
            self._apply_command(command, now)
        for request in self.alerts.approvals.requests:
            if (
                request.status == "approved"
                and request.action
                and not request.executed
            ):
                outcome = self._execute_approved(request, now)
                if outcome is not None:
                    outcomes.append(outcome)
        for request in self.alerts.approvals.expire(now):
            self.alerts.warning(
                now, f"approval expired unanswered: {request.description}"
            )
        # self-healing first: a hung instance is worse than an overload
        for service_name in sorted(self._pending_restarts):
            outcome = self._retry_restart(service_name, now)
            if outcome is not None:
                outcomes.append(outcome)
        for orphan in self.platform.drain_orphans():
            outcome = self._heal(orphan.instance_id, now)
            if outcome is not None:
                outcomes.append(outcome)
        for failed_id in self.failure_detector.tick(now):
            outcome = self._heal(failed_id, now)
            self.failure_detector.forget(failed_id)
            if outcome is not None:
                outcomes.append(outcome)
        outcomes.extend(self._reconcile_dead_services(now))
        # handle service-level situations before server-level ones; the
        # protection entries of the first action suppress echoes
        situations.sort(key=lambda s: (s.kind.is_server, s.subject))
        ranked_cache, cache_version = self._speculative_rankings(
            situations, blind, now
        )
        state = self.platform.landscape_state
        for situation in situations:
            if situation.kind.is_server and situation.subject in blind:
                continue  # no trustworthy measurements behind it
            if self._instance_vanished(situation):
                continue
            if self._situation_protected(situation, now):
                continue
            self.situations_handled.append(situation)
            self.archive.store_event(
                now, "situation", situation.subject, str(situation)
            )
            ranked = ranked_cache.get(id(situation))
            if ranked is None or state.mutation_version != cache_version:
                # the batch was computed against a landscape an earlier
                # remedy has since mutated: re-rank against fresh state
                ranked = self._rank_for_situation(situation, now)
            outcome = self.decision_loop.handle(situation, ranked, now)
            if outcome is not None:
                outcomes.append(outcome)
                self.archive.store_event(
                    now, "action", outcome.service_name, str(outcome)
                )
        if now % 60 == 0:
            self.protection.prune(now)
        return outcomes

    def _instance_vanished(self, situation: Situation) -> bool:
        if situation.kind.is_server:
            return False
        instance = self.platform.service(situation.service_name).find_instance(
            situation.subject
        )
        return instance is None or not instance.running

    # -- self-healing -----------------------------------------------------------------

    def _heal(self, instance_id: str, now: int) -> Optional[ActionOutcome]:
        """Self-healing wrapper tolerant of racy bookkeeping.

        Under combined faults (a host crash sweeping away an instance
        the heartbeat detector was about to report) the instance may be
        unknown by the time healing runs; that is not an error, the
        instance's service was already handled by another path.
        """
        try:
            return self.report_failure(instance_id, now)
        except NoSuchTarget:
            self.failure_detector.forget(instance_id)
            return None

    def report_failure(self, instance_id: str, now: int) -> Optional[ActionOutcome]:
        """Handle a crashed instance: restart it (self-healing).

        The restart bypasses the declarative allowed-actions policy —
        recovering a failed service is always permitted — but respects
        physical constraints.  The original host is preferred; if it
        cannot take the instance back, the server-selection controller
        picks a replacement host.
        """
        instance = self.platform.instance(instance_id)
        service_before = self.platform.service(instance.service_name)
        users_before = service_before.total_users
        if instance.running:
            instance = self.platform.crash_instance(instance_id)
        # sessions that found no surviving peer reconnect after the restart
        dropped_users = users_before - service_before.total_users
        situation = Situation(
            kind=SituationKind.SERVICE_FAILED,
            subject=instance_id,
            service_name=instance.service_name,
            detected_at=now,
            observed_mean=0.0,
        )
        self.situations_handled.append(situation)
        outcome = self._start_somewhere(
            instance.service_name,
            preferred_host=instance.host_name,
            note=f"restart after failure of {instance_id}",
            now=now,
        )
        if outcome is not None:
            if dropped_users > 0:
                self.platform.dispatcher.place_users(
                    self.platform.service(instance.service_name).running_instances,
                    dropped_users,
                )
            return outcome
        # nowhere to restart right now (e.g. every eligible host down);
        # remember the service and keep retrying every tick until a host
        # returns — a crashed service must not stay dead forever
        self._register_pending_restart(
            instance.service_name, instance.host_name
        )
        self.alerts.escalate(
            now, f"could not restart {instance.service_name} after failure"
        )
        return None

    def _register_pending_restart(
        self, service_name: str, preferred_host: str
    ) -> None:
        if service_name in self._pending_restarts:
            return
        self._pending_restarts[service_name] = preferred_host
        if self.journal is not None:
            self.journal.append(
                "restart-pending",
                service_name=service_name,
                preferred_host=preferred_host,
            )

    def _clear_pending_restart(self, service_name: str) -> None:
        if self._pending_restarts.pop(service_name, None) is not None:
            if self.journal is not None:
                self.journal.append("restart-done", service_name=service_name)

    def _start_somewhere(
        self,
        service_name: str,
        preferred_host: Optional[str],
        note: str,
        now: int,
    ) -> Optional[ActionOutcome]:
        """Start one instance on the preferred host or any eligible one."""
        service = self.platform.service(service_name)
        action = Action.START if not service.running_instances else Action.SCALE_OUT
        host_names = ([preferred_host] if preferred_host else []) + [
            ranked.host_name
            for ranked in self.server_selector.rank(
                self.platform,
                Action.SCALE_OUT,
                self.platform.eligible_hosts(service_name),
            )
        ]
        for host_name in host_names:
            try:
                outcome = self.executor.execute(
                    action,
                    service_name,
                    target_host=host_name,
                    enforce_allowed=False,
                    note=note,
                )
            except ActionError:
                continue
            self.alerts.warning(
                now, f"restarted {service_name} on {host_name} ({note})"
            )
            return outcome
        return None

    def _retry_restart(self, service_name: str, now: int) -> Optional[ActionOutcome]:
        """Retry a restart that previously found no live host."""
        preferred = self._pending_restarts[service_name]
        if self.platform.service(service_name).running_instances:
            # someone else brought the service back in the meantime
            self._clear_pending_restart(service_name)
            return None
        outcome = self._start_somewhere(
            service_name,
            preferred_host=preferred,
            note="deferred restart after failure",
            now=now,
        )
        if outcome is not None:
            self._clear_pending_restart(service_name)
        return outcome

    def _reconcile_dead_services(self, now: int) -> List[ActionOutcome]:
        """Restart services found dead with no pending failure event.

        After a controller crash the failure events that would normally
        trigger self-healing may be gone with the dead process: a service
        whose last instance died during the outage has no orphan record
        and no heartbeat history in the recovered detector.  This sweep
        compares the platform against the set of services ever seen
        running; a service that ran before, runs nothing now, was not
        deliberately stopped and has no restart pending is restarted.
        In steady state (no crash) the sweep is a no-op: ordinary
        failures are healed by the orphan and heartbeat paths in the
        same tick.
        """
        outcomes: List[ActionOutcome] = []
        state = self.platform.landscape_state
        columnar = self.scan_mode == "columnar" and state.cache_enabled
        service_ids = state.service_index.ids
        for service_name in sorted(self.platform.services):
            if columnar:
                running = state.service_running_count(service_ids[service_name]) > 0
            else:
                running = bool(
                    self.platform.service(service_name).running_instances
                )
            if running:
                self._seen_running.add(service_name)
                continue
            if (
                service_name not in self._seen_running
                or service_name in self._pending_restarts
                or service_name in self.platform.stopped_services
            ):
                continue
            outcome = self._start_somewhere(
                service_name,
                preferred_host=None,
                note="restart of service found dead after controller recovery",
                now=now,
            )
            if outcome is not None:
                outcomes.append(outcome)
            else:
                self._register_pending_restart(service_name, "")
                self.alerts.escalate(
                    now, f"could not restart dead service {service_name}"
                )
        return outcomes

    # -- live approvals (ops API) ---------------------------------------------------------

    def _apply_command(self, command: ApprovalCommand, now: int) -> None:
        """Answer one operator verdict posted over the ops API.

        Unknown request ids are skipped silently: the federated plane
        broadcasts every command to all domains and exactly one of them
        owns the request.  A verdict arriving after the request was
        answered or expired is acknowledged but changes nothing.
        """
        request = self.alerts.approvals.get(command.request_id)
        if request is None:
            return
        if not request.pending:
            self.alerts.info(
                now,
                f"ignored late verdict for {command.request_id} "
                f"(already {request.status})",
            )
            return
        self.alerts.approvals.answer(command.request_id, command.approve, now)
        verdict = "approved" if command.approve else "rejected"
        self.alerts.info(
            now,
            f"administrator {verdict} {command.request_id} over the ops API: "
            f"{request.description}",
        )

    def _execute_approved(
        self, request: ApprovalRequest, now: int
    ) -> Optional[ActionOutcome]:
        """Execute the deferred action of a late-approved request.

        Runs exactly once per approval: the executor journals the action
        intent with the approval id before the platform mutates, so a
        controller recovered mid-execution sees the request as executed
        (or reconciles the in-flight intent) instead of re-applying it.
        The landscape may have drifted since the request was raised, so
        the action is re-verified against current constraints first; a
        proposal the landscape outgrew is consumed without effect.
        """
        data = request.action or {}
        action = Action(str(data["action"]))
        service_name = str(data["service_name"])
        instance_id = data.get("instance_id")
        problem = verify_action(
            self.platform, action, service_name, instance_id
        )
        if problem is not None:
            request.executed = True
            self.alerts.warning(
                now,
                f"approved action no longer applicable ({problem}): "
                f"{request.description}",
            )
            return None
        try:
            outcome = self.executor.execute(
                action,
                service_name,
                instance_id=instance_id,
                target_host=data.get("target_host"),
                applicability=data.get("applicability"),
                note=f"approved by administrator ({request.request_id})",
                approval_id=request.request_id,
            )
        except ActionError as error:
            # one attempt per approval: a permanently failing action must
            # not be retried every tick (the intent is already resolved
            # as aborted in the journal)
            request.executed = True
            self.alerts.warning(
                now, f"approved action failed: {request.description}: {error}"
            )
            return None
        self.alerts.approvals.mark_executed(request.request_id, now)
        self.decision_loop._protect_involved(outcome, now)
        self.alerts.info(now, f"executed {outcome}")
        self.archive.store_event(now, "action", outcome.service_name, str(outcome))
        return outcome

    # -- durability & crash recovery -----------------------------------------------------

    def attach_journal(self, journal) -> None:
        """Route this controller's soft state through a write-ahead journal.

        Protection grants, watch-time observation progress, approval
        requests/answers, pending restarts and the executor's two-phase
        action log are journalled as they happen; a recovered controller
        folds the journal back via
        :func:`repro.core.state.replay_journal`.
        """
        self.journal = journal
        self.protection.journal = journal
        self.lms.journal = journal
        self.alerts.approvals.journal = journal
        self.executor.journal = journal

    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-able controller soft state (one snapshot payload)."""
        payload: Dict[str, Any] = {
            "tick": self.platform.current_time,
            "protection": self.protection.snapshot_state(),
            "observations": self.lms.snapshot_state(),
            "pending_restarts": dict(self._pending_restarts),
            "monitor_outages": dict(self._monitor_outages),
            "heartbeat": self.failure_detector.snapshot_state(),
            "seen_running": sorted(self._seen_running),
        }
        payload.update(self.alerts.approvals.snapshot_state())
        return payload

    def restore_state(self, payload: Dict[str, Any]) -> None:
        """Merge a recovered snapshot payload into this controller.

        Every merge is idempotent (max-merge or upsert-by-key), so
        restoring the same payload twice — or a payload overlapping what
        this controller already knows — cannot change the result.
        Observations are revived lazily on the next tick, once their
        monitors exist again; their watch windows are backfilled from
        the load archive.
        """
        self.protection.restore_state(payload.get("protection", {}))
        self.alerts.approvals.restore_state(
            payload.get("approvals", []),
            payload.get("approval_sequence", 0),
        )
        for service_name, preferred in payload.get(
            "pending_restarts", {}
        ).items():
            self._pending_restarts.setdefault(service_name, preferred)
        for host_name, until in payload.get("monitor_outages", {}).items():
            current = self._monitor_outages.get(host_name, -1)
            self._monitor_outages[host_name] = max(current, int(until))
        self.failure_detector.restore_state(payload.get("heartbeat", {}))
        self._seen_running.update(payload.get("seen_running", []))
        self._pending_observation_restores.extend(
            payload.get("observations", [])
        )

    def _backfill_monitor(self, monitor: LoadMonitor, start: int, end: int) -> None:
        """Refill a fresh monitor's series from the archive's history."""
        latest = monitor.series.latest_time
        for time, value in self.archive.history(
            monitor.subject, monitor.metric, start, end
        ):
            if latest is not None and time <= latest:
                continue
            monitor.series.record(time, value)
            latest = time

    def _restore_observations(self, now: int) -> None:
        """Revive recovered watch-time observations around live monitors."""
        descriptors = self._pending_observation_restores
        self._pending_observation_restores = []
        for descriptor in descriptors:
            kind = SituationKind(str(descriptor["kind"]))
            subject = str(descriptor["subject"])
            if kind.is_server:
                monitor = self._host_cpu_monitors.get(subject)
            else:
                monitor = self._instance_monitors.get(subject)
            if monitor is None:
                continue  # the watched host/instance died with the crash
            self._backfill_monitor(
                monitor, int(descriptor["started_at"]), now - 1
            )
            self.lms.restore_observation(descriptor, monitor)

    def reconcile(
        self, now: int, intents: Dict[str, Dict[str, Any]]
    ) -> List[ActionOutcome]:
        """Resolve action intents a crashed leader left unresolved.

        Each intent was journalled before the platform mutated and has
        no commit record, so the platform itself is the only witness of
        whether the action took effect.  Every intent is resolved —
        completed, aborted or compensated — exactly once: resolving
        writes the missing ``action-commit`` record, so a second
        recovery pass finds nothing left to reconcile.
        """
        relocations = (Action.MOVE, Action.SCALE_UP, Action.SCALE_DOWN)
        outcomes: List[ActionOutcome] = []
        for intent_id in sorted(intents):
            data = intents[intent_id]
            action = Action(data["action"])
            service_name = data["service_name"]
            instance_id = data.get("instance_id")
            target_host = data.get("target_host")
            service = self.platform.service(service_name)
            instance = (
                service.find_instance(instance_id) if instance_id else None
            )
            running = instance is not None and instance.running
            if action in relocations and instance_id:
                if running and instance.host_name == target_host:
                    status = "ok"  # detached, re-attached, crash after
                elif running:
                    status = "aborted"  # never detached from the source
                else:
                    # detached from the source, never confirmed on the
                    # target: the instance is lost — restore it once
                    outcome = self._start_somewhere(
                        service_name,
                        preferred_host=target_host,
                        note=(
                            f"completing in-flight {action.value} "
                            f"({intent_id}) after controller crash"
                        ),
                        now=now,
                    )
                    if outcome is not None:
                        outcomes.append(outcome)
                    else:
                        self._register_pending_restart(
                            service_name, target_host or ""
                        )
                    status = "compensated"
            elif action in (Action.STOP, Action.SCALE_IN):
                status = "aborted" if running else "ok"
            else:
                # start-like actions are atomic on the platform: they
                # either fully happened or not at all
                on_target = any(
                    i.host_name == target_host
                    for i in service.running_instances
                ) if target_host else bool(service.running_instances)
                status = "ok" if on_target else "aborted"
            self.executor._journal_commit(intent_id, status)
            self.alerts.info(
                now,
                f"reconciled in-flight {action.value} {service_name} "
                f"({intent_id}): {status}",
            )
        return outcomes

    # -- introspection -------------------------------------------------------------------

    def host_monitor(self, host_name: str, metric: str = "cpu") -> LoadMonitor:
        monitors = (
            self._host_cpu_monitors if metric == "cpu" else self._host_mem_monitors
        )
        return monitors[host_name]

    @property
    def decision_records(self):
        return self.decision_loop.records
