"""Administrator alerting and the semi-automatic confirmation channel.

"In the automatic mode, the actions are logged and then executed.  In
semi-automatic mode, the human administrator is contacted to confirm the
action before execution.  If there are no possible hosts and actions
with a sufficient applicability, the controller requests human
interaction by alerting the system administrator."  (Section 4.3)
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.telemetry.records import AlertEvent, ApprovalEvent, ApprovalPhase

__all__ = [
    "AlertSeverity",
    "Alert",
    "ApprovalRequest",
    "ApprovalQueue",
    "ApprovalCommand",
    "CommandQueue",
    "AlertChannel",
]


class AlertSeverity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    ESCALATION = "escalation"


@dataclass(frozen=True)
class Alert:
    """One administrative message."""

    time: int
    severity: AlertSeverity
    message: str

    def __str__(self) -> str:
        return f"[t={self.time} {self.severity.value}] {self.message}"


#: Asked in semi-automatic mode; returns True to approve the action.
ConfirmationCallback = Callable[[str], bool]


@dataclass
class ApprovalRequest:
    """One semi-automatic confirmation request and its lifecycle.

    ``status`` is ``"pending"`` (awaiting the administrator),
    ``"approved"``, ``"declined"`` or ``"expired"`` (the TTL ran out
    before anyone answered — surfaced so unattended semi-automatic
    controllers do not silently drop decisions).

    ``action`` is the deferred action's JSON-able payload (action kind,
    service, instance, target host, applicability) when the request was
    raised by the decision loop; a late approval replays it through the
    fenced executor.  ``executed`` flips once that deferred execution
    has been journalled as an action intent — a recovered controller
    must never apply the same approval twice.
    """

    request_id: str
    time: int
    description: str
    status: str = "pending"
    answered_at: Optional[int] = None
    service_name: str = ""
    action: Optional[Dict[str, Any]] = None
    executed: bool = False

    @property
    def pending(self) -> bool:
        return self.status == "pending"

    def __str__(self) -> str:
        return f"[{self.request_id} {self.status}] {self.description}"


@dataclass(frozen=True)
class ApprovalCommand:
    """One administrator verdict posted from outside the sim thread."""

    request_id: str
    approve: bool


class CommandQueue:
    """Thread-safe mailbox for operator commands into the control loop.

    The ops API's HTTP threads only ever :meth:`post`; the simulation
    thread drains the queue at tick boundaries.  This is the *only*
    write path from the operations plane into the controller, which is
    what keeps a ``--serve`` run byte-identical when nobody posts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: Deque[ApprovalCommand] = deque()

    def post(self, command: ApprovalCommand) -> None:
        with self._lock:
            self._pending.append(command)

    def drain(self) -> List[ApprovalCommand]:
        with self._lock:
            drained = list(self._pending)
            self._pending.clear()
        return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)


class ApprovalQueue:
    """Tracks semi-automatic approval requests with a time-to-live.

    Requests are journalled (when a journal is attached) so a recovered
    controller still knows what was asked and what was never answered;
    the TTL expires stale questions so a revived controller does not act
    on confirmations requested before a crash.
    """

    def __init__(self, ttl: int = 240) -> None:
        if ttl < 1:
            raise ValueError("approval ttl must be at least one minute")
        self.ttl = ttl
        self._requests: Dict[str, ApprovalRequest] = {}
        self._sequence = 0
        #: optional :class:`~repro.core.state.StateJournal`
        self.journal = None
        #: optional :class:`~repro.telemetry.bus.EventBus`: lifecycle
        #: transitions publish :class:`ApprovalEvent` records when set
        self.bus = None
        #: control domain of the owning controller (prefixes request ids
        #: so federated domains never collide); empty when single-domain
        self.domain = ""

    def _publish(
        self, now: int, phase: ApprovalPhase, request: ApprovalRequest
    ) -> None:
        if self.bus is not None:
            self.bus.publish(
                ApprovalEvent(
                    time=now,
                    phase=phase,
                    request_id=request.request_id,
                    description=request.description,
                    service_name=request.service_name,
                    domain=self.domain,
                )
            )

    def submit(
        self,
        now: int,
        description: str,
        service_name: str = "",
        action: Optional[Dict[str, Any]] = None,
    ) -> ApprovalRequest:
        self._sequence += 1
        prefix = f"{self.domain}-apr" if self.domain else "apr"
        request_id = f"{prefix}-{self._sequence:06d}"
        request = ApprovalRequest(
            request_id, now, description, service_name=service_name, action=action
        )
        self._requests[request_id] = request
        if self.journal is not None:
            self.journal.append(
                "approval-request",
                request_id=request_id,
                time=now,
                description=description,
                service_name=service_name,
                action=action,
            )
        self._publish(now, ApprovalPhase.REQUESTED, request)
        return request

    def get(self, request_id: str) -> Optional[ApprovalRequest]:
        return self._requests.get(request_id)

    def answer(self, request_id: str, approved: bool, now: int) -> bool:
        """Record the administrator's verdict; False if not answerable."""
        request = self._requests.get(request_id)
        if request is None or not request.pending:
            return False
        request.status = "approved" if approved else "declined"
        request.answered_at = now
        if self.journal is not None:
            self.journal.append(
                "approval-answer",
                request_id=request_id,
                approved=approved,
                time=now,
            )
        self._publish(
            now,
            ApprovalPhase.APPROVED if approved else ApprovalPhase.REJECTED,
            request,
        )
        return True

    def mark_executed(self, request_id: str, now: int) -> None:
        """Flag an approved request's deferred action as applied.

        The durable record of execution is the executor's action-intent
        entry (which carries the approval id); this flag only mirrors it
        in memory and on the telemetry stream.
        """
        request = self._requests.get(request_id)
        if request is None or request.executed:
            return
        request.executed = True
        self._publish(now, ApprovalPhase.EXECUTED, request)

    def expire(self, now: int) -> List[ApprovalRequest]:
        """Expire pending requests older than the TTL; returns them."""
        expired: List[ApprovalRequest] = []
        for request in self._requests.values():
            if request.pending and now - request.time >= self.ttl:
                request.status = "expired"
                request.answered_at = now
                expired.append(request)
                if self.journal is not None:
                    self.journal.append(
                        "approval-expired",
                        request_id=request.request_id,
                        time=now,
                    )
                self._publish(now, ApprovalPhase.EXPIRED, request)
        return expired

    def pending(self) -> List[ApprovalRequest]:
        return [r for r in self._requests.values() if r.pending]

    def expired(self) -> List[ApprovalRequest]:
        return [r for r in self._requests.values() if r.status == "expired"]

    @property
    def requests(self) -> List[ApprovalRequest]:
        return list(self._requests.values())

    # -- durability -------------------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        return {
            "approvals": [
                {
                    "request_id": r.request_id,
                    "time": r.time,
                    "description": r.description,
                    "status": r.status,
                    "answered_at": r.answered_at,
                    "service_name": r.service_name,
                    "action": r.action,
                    "executed": r.executed,
                }
                for r in self._requests.values()
            ],
            "approval_sequence": self._sequence,
        }

    def restore_state(
        self, approvals: List[Dict[str, object]], sequence: int
    ) -> None:
        """Upsert recovered requests by id (idempotent, never publishes)."""
        for raw in approvals:
            request_id = str(raw["request_id"])
            existing = self._requests.get(request_id)
            if existing is not None and not existing.pending:
                # an answered verdict is never overwritten, but the
                # executed flag may only be learned from the journal
                if raw.get("executed"):
                    existing.executed = True
                continue
            self._requests[request_id] = ApprovalRequest(
                request_id=request_id,
                time=int(raw["time"]),  # type: ignore[arg-type]
                description=str(raw.get("description", "")),
                status=str(raw.get("status", "pending")),
                answered_at=raw.get("answered_at"),  # type: ignore[arg-type]
                service_name=str(raw.get("service_name", "")),
                action=raw.get("action"),  # type: ignore[arg-type]
                executed=bool(raw.get("executed", False)),
            )
        self._sequence = max(self._sequence, int(sequence))


class AlertChannel:
    """Collects administrative messages and brokers confirmations.

    Parameters
    ----------
    confirm:
        Callback consulted in semi-automatic mode before executing an
        action.  When no callback is installed, confirmation requests are
        denied and escalated — an unattended semi-automatic controller
        must not act on its own.
    """

    def __init__(
        self,
        confirm: Optional[ConfirmationCallback] = None,
        approval_ttl: int = 240,
        bus=None,
    ) -> None:
        self._confirm = confirm
        self.alerts: List[Alert] = []
        #: optional :class:`~repro.telemetry.bus.EventBus`: every alert
        #: also publishes on the ``alerts`` topic when set
        self.bus = bus
        #: every confirmation request is tracked here; unanswered ones
        #: expire after ``approval_ttl`` simulated minutes
        self.approvals = ApprovalQueue(approval_ttl)
        self.approvals.bus = bus

    def _record(self, alert: Alert) -> None:
        self.alerts.append(alert)
        if self.bus is not None:
            self.bus.publish(
                AlertEvent(alert.time, alert.severity.value, alert.message)
            )

    def info(self, time: int, message: str) -> None:
        self._record(Alert(time, AlertSeverity.INFO, message))

    def warning(self, time: int, message: str) -> None:
        self._record(Alert(time, AlertSeverity.WARNING, message))

    def escalate(self, time: int, message: str) -> None:
        """Request human interaction (no applicable action/host found)."""
        self._record(Alert(time, AlertSeverity.ESCALATION, message))

    def request_confirmation(
        self,
        time: int,
        description: str,
        service_name: str = "",
        action: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Ask the administrator to approve an action (semi-automatic mode).

        ``action`` is the proposed action's JSON-able payload; it rides
        on the request so a *later* approval (over the live ops API) can
        still execute the deferred action.
        """
        request = self.approvals.submit(
            time, description, service_name=service_name, action=action
        )
        if self._confirm is None:
            # no administrator attached: the request stays pending until
            # its TTL expires — the controller must not act on its own
            self.escalate(
                time,
                f"confirmation required but no administrator attached: {description}",
            )
            return False
        approved = bool(self._confirm(description))
        self.approvals.answer(request.request_id, approved, time)
        if approved:
            # the caller executes the action inline on a True return; the
            # deferred-execution scanner must not run it a second time
            request.executed = True
        verdict = "approved" if approved else "declined"
        self.info(time, f"administrator {verdict}: {description}")
        return approved

    def escalations(self) -> List[Alert]:
        return [a for a in self.alerts if a.severity is AlertSeverity.ESCALATION]
