"""Administrator alerting and the semi-automatic confirmation channel.

"In the automatic mode, the actions are logged and then executed.  In
semi-automatic mode, the human administrator is contacted to confirm the
action before execution.  If there are no possible hosts and actions
with a sufficient applicability, the controller requests human
interaction by alerting the system administrator."  (Section 4.3)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["AlertSeverity", "Alert", "AlertChannel"]


class AlertSeverity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    ESCALATION = "escalation"


@dataclass(frozen=True)
class Alert:
    """One administrative message."""

    time: int
    severity: AlertSeverity
    message: str

    def __str__(self) -> str:
        return f"[t={self.time} {self.severity.value}] {self.message}"


#: Asked in semi-automatic mode; returns True to approve the action.
ConfirmationCallback = Callable[[str], bool]


class AlertChannel:
    """Collects administrative messages and brokers confirmations.

    Parameters
    ----------
    confirm:
        Callback consulted in semi-automatic mode before executing an
        action.  When no callback is installed, confirmation requests are
        denied and escalated — an unattended semi-automatic controller
        must not act on its own.
    """

    def __init__(self, confirm: Optional[ConfirmationCallback] = None) -> None:
        self._confirm = confirm
        self.alerts: List[Alert] = []

    def info(self, time: int, message: str) -> None:
        self.alerts.append(Alert(time, AlertSeverity.INFO, message))

    def warning(self, time: int, message: str) -> None:
        self.alerts.append(Alert(time, AlertSeverity.WARNING, message))

    def escalate(self, time: int, message: str) -> None:
        """Request human interaction (no applicable action/host found)."""
        self.alerts.append(Alert(time, AlertSeverity.ESCALATION, message))

    def request_confirmation(self, time: int, description: str) -> bool:
        """Ask the administrator to approve an action (semi-automatic mode)."""
        if self._confirm is None:
            self.escalate(
                time,
                f"confirmation required but no administrator attached: {description}",
            )
            return False
        approved = bool(self._confirm(description))
        verdict = "approved" if approved else "declined"
        self.info(time, f"administrator {verdict}: {description}")
        return approved

    def escalations(self) -> List[Alert]:
        return [a for a in self.alerts if a.severity is AlertSeverity.ESCALATION]
