"""The server-selection fuzzy controller (Section 4.2).

"In the case of a scale-out, scale-up, scale-down, move, or start, an
appropriate target server where the action should take place must be
chosen.  [...]  First, a list of all possible servers is determined.
[...]  For each server the fuzzy controller is executed with the input
variables initialized to the current values.  [...]  In the
defuzzification phase, the controller calculates a crisp value for every
possible host and selects the most applicable server."

Candidate filtering (constraints, protection mode) happens in the
decision loop; this module only scores hosts that were already deemed
possible.  Ties are broken by lower current CPU load, then by host name,
so rankings are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, cast

import numpy as np

from repro.config.model import Action
from repro.core import variables
from repro.core.rulebases import default_server_rulebases
from repro.fuzzy.controller import FuzzyController
from repro.fuzzy.defuzzify import _GRADE_TOLERANCE, LeftmostMax
from repro.fuzzy.rules import RuleBase
from repro.fuzzy.sets import ClippedSet, MembershipFunction, UnionSet
from repro.serviceglobe.host import ServiceHost
from repro.serviceglobe.platform import Platform

__all__ = ["RankedHost", "ServerSelector", "host_measurements"]

OUTPUT_VARIABLE = "suitability"

#: How far ahead reserved capacity is counted against a candidate host;
#: matches the protection window, i.e. roughly the horizon within which
#: the controller will not revisit the placement.
RESERVATION_HORIZON_MINUTES = 30


@dataclass(frozen=True)
class RankedHost:
    """One candidate host with its defuzzified suitability score."""

    host_name: str
    score: float

    def __str__(self) -> str:
        return f"{self.host_name}={self.score:.0%}"


def host_measurements(
    platform: Platform,
    host: ServiceHost,
    reservations=None,
) -> Dict[str, float]:
    """The Table 3 input variables for one candidate host.

    With a :class:`repro.allocation.reservations.ReservationBook`, the
    CPU load includes the capacity reserved for mission-critical tasks
    within the next :data:`RESERVATION_HORIZON_MINUTES`, so the fuzzy
    scoring steers new instances away from hosts whose headroom is
    already promised (Section 7 future work).
    """
    spec = host.spec
    cpu_load = platform.host_cpu_load(host.name)
    if reservations is not None:
        cpu_load = reservations.effective_cpu_load(
            host.name,
            cpu_load,
            host.cpu_capacity,
            platform.current_time,
            horizon=RESERVATION_HORIZON_MINUTES,
        )
    return {
        "cpuLoad": cpu_load,
        "memLoad": platform.host_mem_load(host.name),
        "instancesOnServer": float(len(host.running_instances)),
        "performanceIndex": float(spec.performance_index),
        "numberOfCpus": float(spec.num_cpus),
        "cpuClock": float(spec.cpu_clock_mhz),
        "cpuCache": float(spec.cpu_cache_kb),
        "memory": float(host.memory_free_mb(platform.memory_of)),
        "swapSpace": float(spec.swap_space_mb),
        "tempSpace": float(spec.temp_space_mb),
    }


class ServerSelector:
    """Scores candidate target hosts for actions that need one.

    Parameters
    ----------
    rulebases:
        Per-action rule bases; defaults to the built-in ones.
    reservations:
        Optional reservation book; reserved capacity counts against
        candidate hosts (see :func:`host_measurements`).
    """

    def __init__(
        self,
        rulebases: Optional[Dict[Action, RuleBase]] = None,
        reservations=None,
    ) -> None:
        self._rulebases = (
            rulebases if rulebases is not None else default_server_rulebases()
        )
        self.reservations = reservations
        self._controller = FuzzyController(
            variables.server_selection_inputs(),
            [variables.applicability_variable(OUTPUT_VARIABLE)],
            RuleBase("empty"),
        )
        for rulebase in self._rulebases.values():
            self._controller.engine.validate(rulebase)
        #: host name -> (spec, static Table 3 fields); the spec-derived
        #: inputs never change while the spec object does not, so the
        #: batch path re-derives only the four load-dependent fields
        self._static_inputs: Dict[str, tuple] = {}
        #: per-landscape-state static columns (spec fields + names),
        #: keyed by ``id(state)``; see :meth:`_static_columns`
        self._static_columns: Dict[int, tuple] = {}
        #: per-rule-base leftmost-max lookup tables, keyed by
        #: ``id(rulebase)``; see :meth:`_scores_analytic`
        self._ramp_tables: Dict[int, tuple] = {}

    _STATIC_FIELDS = (
        ("performanceIndex", "performance_index"),
        ("numberOfCpus", "num_cpus"),
        ("cpuClock", "cpu_clock_mhz"),
        ("cpuCache", "cpu_cache_kb"),
        ("swapSpace", "swap_space_mb"),
        ("tempSpace", "temp_space_mb"),
    )

    def _static_columns_for(self, state) -> tuple:
        """Spec-derived input columns plus host names, indexed by host id.

        Built once per landscape state (the host set and every host's
        spec are fixed after construction); the per-candidate spec
        identity check in :meth:`_rank_columnar` guards the rare spec
        swap and falls back to the scalar path when it happens.
        """
        cached = self._static_columns.get(id(state))
        if (
            cached is not None
            and cached[0] is state
            and len(cached[1]) == len(state.host_objs)
        ):
            return cached
        specs = [host.spec for host in state.host_objs]
        columns = {
            input_name: np.array(
                [float(getattr(spec, attr)) for spec in specs], dtype=np.float64
            )
            for input_name, attr in self._STATIC_FIELDS
        }
        names = np.array([host.name for host in state.host_objs])
        cached = (state, specs, columns, names)
        self._static_columns[id(state)] = cached
        return cached

    def _measurements_for(
        self, platform: Platform, host: ServiceHost
    ) -> Dict[str, float]:
        """:func:`host_measurements` with the static fields memoized.

        Value-identical to the plain function — the spec-derived fields
        are cached per host (invalidated when the spec object changes)
        and the load-dependent ones read fresh every call.
        """
        spec = host.spec
        cached = self._static_inputs.get(host.name)
        if cached is None or cached[0] is not spec:
            static = {
                "performanceIndex": float(spec.performance_index),
                "numberOfCpus": float(spec.num_cpus),
                "cpuClock": float(spec.cpu_clock_mhz),
                "cpuCache": float(spec.cpu_cache_kb),
                "swapSpace": float(spec.swap_space_mb),
                "tempSpace": float(spec.temp_space_mb),
            }
            self._static_inputs[host.name] = (spec, static)
        else:
            static = cached[1]
        measurements = dict(static)
        cpu_load = platform.host_cpu_load(host.name)
        if self.reservations is not None:
            cpu_load = self.reservations.effective_cpu_load(
                host.name,
                cpu_load,
                host.cpu_capacity,
                platform.current_time,
                horizon=RESERVATION_HORIZON_MINUTES,
            )
        measurements["cpuLoad"] = cpu_load
        measurements["memLoad"] = platform.host_mem_load(host.name)
        measurements["instancesOnServer"] = float(len(host.running_instances))
        measurements["memory"] = float(host.memory_free_mb(platform.memory_of))
        return measurements

    def score(self, action: Action, measurements: Mapping[str, float]) -> float:
        """Suitability of one host for one action, in [0, 1]."""
        rulebase = self._rulebases.get(action)
        if rulebase is None:
            raise ValueError(f"no server-selection rule base for {action.value}")
        result = self._controller.evaluate(dict(measurements), rulebase)
        return result.outputs[OUTPUT_VARIABLE]

    def rank(
        self,
        platform: Platform,
        action: Action,
        candidates: List[ServiceHost],
    ) -> List[RankedHost]:
        """Score all candidates, most suitable first.

        The whole candidate list goes through one batched fuzzy
        evaluation (:meth:`FuzzyController.evaluate_many`), whose
        per-element outputs are bit-identical to scoring each host
        individually — on a 10k-host landscape a single relocation can
        have thousands of candidates, and per-host inference dominated
        the decision burst before batching.
        """
        rulebase = self._rulebases.get(action)
        if rulebase is None:
            raise ValueError(f"no server-selection rule base for {action.value}")
        if self.reservations is None and len(candidates) >= 32:
            ranked = self._rank_columnar(platform, rulebase, candidates)
            if ranked is not None:
                return ranked
        measurements_list = [
            self._measurements_for(platform, host) for host in candidates
        ]
        outputs = self._controller.evaluate_many(measurements_list, rulebase)
        scored = [
            (RankedHost(host.name, out[OUTPUT_VARIABLE]), measurements["cpuLoad"])
            for host, out, measurements in zip(candidates, outputs, measurements_list)
        ]
        scored.sort(key=lambda pair: (-pair[0].score, pair[1], pair[0].host_name))
        return [ranked for ranked, __ in scored]

    def _scores_analytic(
        self,
        rulebase: RuleBase,
        consequents: list,
        domain: tuple,
        strengths: "np.ndarray",
    ) -> Optional["np.ndarray"]:
        """Closed-form leftmost-max scores for single-consequent rule bases.

        Every server rule asserts the same ramp-shaped ``applicable``
        term, so the union of clipped consequents collapses pointwise:
        ``max_r min(mu(x), h_r) == min(mu(x), max_r h_r)`` — both sides
        select among the same floats, so the aggregated set's grid is
        bitwise equal to clipping at the row-maximum strength.  With a
        monotone consequent grid, the leftmost maximum is then one
        ``searchsorted`` instead of a per-host grid sweep.  Returns
        ``None`` (caller builds the sets per distinct strength row) when
        the defuzzifier is not :class:`LeftmostMax`, the consequents
        differ, or the grid is not monotone.
        """
        defuzzifier = self._controller.defuzzifier
        if type(defuzzifier) is not LeftmostMax:
            return None
        cached = self._ramp_tables.get(id(rulebase))
        if cached is None or cached[0] is not rulebase:
            consequent = consequents[0]
            table = None
            if all(other is consequent for other in consequents):
                lo, hi = domain
                xs = np.linspace(lo, hi, defuzzifier.resolution)
                grid = np.asarray(consequent.evaluate(xs), dtype=np.float64)
                if np.all(np.diff(grid) >= 0.0):
                    table = (xs, grid, float(grid.max()))
            cached = (rulebase, table)
            self._ramp_tables[id(rulebase)] = cached
        table = cached[1]
        if table is None:
            return None
        xs, grid, grid_max = table
        heights = strengths.max(axis=1)
        # the scalar defuzzifier computes peak = mus.max() = min(grid_max,
        # height) and takes the first grid point with mus >= peak - tol;
        # for a monotone grid that is exactly this searchsorted
        thresholds = np.minimum(grid_max, heights) - _GRADE_TOLERANCE
        indices = np.searchsorted(grid, thresholds, side="left")
        return cast("np.ndarray", xs[indices])

    def _rank_columnar(
        self,
        platform: Platform,
        rulebase: RuleBase,
        candidates: List[ServiceHost],
    ) -> Optional[List[RankedHost]]:
        """Column-at-a-time :meth:`rank` off the landscape substrate.

        Reads every Table 3 input for all candidates in a handful of
        vectorized column operations, fuzzifies the columns directly and
        defuzzifies only the *distinct* firing-strength rows — replicated
        landscapes collapse thousands of candidates to a few dozen unique
        rows.  Returns ``None`` (caller falls back to the per-host path)
        when a candidate is not bound to the platform's landscape state
        or a spec object changed identity; the produced ranking is
        bit-identical to the fallback's.
        """
        state = getattr(platform, "landscape_state", None)
        if state is None or not state.cache_enabled:
            return None
        statics = self._static_columns_for(state)
        __, specs, static_columns, names = statics
        host_objs = state.host_objs
        bound = len(host_objs)
        id_list = []
        for host in candidates:
            hid = host.state_id
            if (
                hid < 0
                or hid >= bound
                or host_objs[hid] is not host
                or specs[hid] is not host.spec
            ):
                return None
            id_list.append(hid)
        ids = np.asarray(id_list, dtype=np.int64)
        cpu, mem, running, free = state.host_server_inputs(ids)
        columns = {
            "cpuLoad": cpu,
            "memLoad": mem,
            "instancesOnServer": running,
            "memory": free,
        }
        for input_name in static_columns:
            columns[input_name] = static_columns[input_name][ids]
        engine = self._controller.engine
        grades = engine.fuzzify_columns(columns)
        rules = [
            rule for rule in rulebase if rule.output_variable == OUTPUT_VARIABLE
        ]
        if not rules:
            return None
        strengths = np.stack(
            [rule.antecedent.truth_many(grades) * rule.weight for rule in rules],
            axis=1,
        )
        domain = engine.output_domain(OUTPUT_VARIABLE)
        assert domain is not None  # validated at construction
        consequents = [engine._resolve_consequent(rule) for rule in rules]
        scores = self._scores_analytic(rulebase, consequents, domain, strengths)
        if scores is None:
            unique_rows, inverse = np.unique(strengths, axis=0, return_inverse=True)
            unique_scores = np.empty(len(unique_rows), dtype=np.float64)
            for j, row in enumerate(unique_rows):
                heights = row.tolist()
                clipped = [
                    ClippedSet(consequent, height)
                    for consequent, height in zip(consequents, heights)
                ]
                fuzzy_set: MembershipFunction = (
                    clipped[0] if len(clipped) == 1 else UnionSet(tuple(clipped))
                )
                unique_scores[j] = self._controller.defuzzifier(fuzzy_set, domain)
            scores = unique_scores[inverse]
        candidate_names = names[ids]
        order = np.lexsort((candidate_names, cpu, -scores))
        score_list = scores.tolist()
        name_list = candidate_names.tolist()
        return [RankedHost(name_list[i], score_list[i]) for i in order]
