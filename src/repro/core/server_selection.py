"""The server-selection fuzzy controller (Section 4.2).

"In the case of a scale-out, scale-up, scale-down, move, or start, an
appropriate target server where the action should take place must be
chosen.  [...]  First, a list of all possible servers is determined.
[...]  For each server the fuzzy controller is executed with the input
variables initialized to the current values.  [...]  In the
defuzzification phase, the controller calculates a crisp value for every
possible host and selects the most applicable server."

Candidate filtering (constraints, protection mode) happens in the
decision loop; this module only scores hosts that were already deemed
possible.  Ties are broken by lower current CPU load, then by host name,
so rankings are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.config.model import Action
from repro.core import variables
from repro.core.rulebases import default_server_rulebases
from repro.fuzzy.controller import FuzzyController
from repro.fuzzy.rules import RuleBase
from repro.serviceglobe.host import ServiceHost
from repro.serviceglobe.platform import Platform

__all__ = ["RankedHost", "ServerSelector", "host_measurements"]

OUTPUT_VARIABLE = "suitability"

#: How far ahead reserved capacity is counted against a candidate host;
#: matches the protection window, i.e. roughly the horizon within which
#: the controller will not revisit the placement.
RESERVATION_HORIZON_MINUTES = 30


@dataclass(frozen=True)
class RankedHost:
    """One candidate host with its defuzzified suitability score."""

    host_name: str
    score: float

    def __str__(self) -> str:
        return f"{self.host_name}={self.score:.0%}"


def host_measurements(
    platform: Platform,
    host: ServiceHost,
    reservations=None,
) -> Dict[str, float]:
    """The Table 3 input variables for one candidate host.

    With a :class:`repro.allocation.reservations.ReservationBook`, the
    CPU load includes the capacity reserved for mission-critical tasks
    within the next :data:`RESERVATION_HORIZON_MINUTES`, so the fuzzy
    scoring steers new instances away from hosts whose headroom is
    already promised (Section 7 future work).
    """
    spec = host.spec
    cpu_load = platform.host_cpu_load(host.name)
    if reservations is not None:
        cpu_load = reservations.effective_cpu_load(
            host.name,
            cpu_load,
            host.cpu_capacity,
            platform.current_time,
            horizon=RESERVATION_HORIZON_MINUTES,
        )
    return {
        "cpuLoad": cpu_load,
        "memLoad": platform.host_mem_load(host.name),
        "instancesOnServer": float(len(host.running_instances)),
        "performanceIndex": float(spec.performance_index),
        "numberOfCpus": float(spec.num_cpus),
        "cpuClock": float(spec.cpu_clock_mhz),
        "cpuCache": float(spec.cpu_cache_kb),
        "memory": float(host.memory_free_mb(platform.memory_of)),
        "swapSpace": float(spec.swap_space_mb),
        "tempSpace": float(spec.temp_space_mb),
    }


class ServerSelector:
    """Scores candidate target hosts for actions that need one.

    Parameters
    ----------
    rulebases:
        Per-action rule bases; defaults to the built-in ones.
    reservations:
        Optional reservation book; reserved capacity counts against
        candidate hosts (see :func:`host_measurements`).
    """

    def __init__(
        self,
        rulebases: Optional[Dict[Action, RuleBase]] = None,
        reservations=None,
    ) -> None:
        self._rulebases = (
            rulebases if rulebases is not None else default_server_rulebases()
        )
        self.reservations = reservations
        self._controller = FuzzyController(
            variables.server_selection_inputs(),
            [variables.applicability_variable(OUTPUT_VARIABLE)],
            RuleBase("empty"),
        )
        for rulebase in self._rulebases.values():
            self._controller.engine.validate(rulebase)

    def score(self, action: Action, measurements: Mapping[str, float]) -> float:
        """Suitability of one host for one action, in [0, 1]."""
        rulebase = self._rulebases.get(action)
        if rulebase is None:
            raise ValueError(f"no server-selection rule base for {action.value}")
        result = self._controller.evaluate(dict(measurements), rulebase)
        return result.outputs[OUTPUT_VARIABLE]

    def rank(
        self,
        platform: Platform,
        action: Action,
        candidates: List[ServiceHost],
    ) -> List[RankedHost]:
        """Score all candidates, most suitable first."""
        scored = []
        for host in candidates:
            measurements = host_measurements(platform, host, self.reservations)
            scored.append(
                (
                    RankedHost(host.name, self.score(action, measurements)),
                    measurements["cpuLoad"],
                )
            )
        scored.sort(key=lambda pair: (-pair[0].score, pair[1], pair[0].host_name))
        return [ranked for ranked, __ in scored]
