"""The controller console (Figure 8), rendered as text.

The paper's GUI offers three views: the *server view* (controlled
servers grouped by category), the *service view* (controlled services
and their instances) and the *message view* (administrative messages and
notifications).  This module renders the same three views as plain-text
tables and exposes the manual-execution affordance the console offers
administrators.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.model import Action
from repro.core.autoglobe import AutoGlobeController
from repro.serviceglobe.actions import ActionOutcome

__all__ = ["ControllerConsole"]


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: List[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


class ControllerConsole:
    """Text renderings of the controller's state.

    Parameters
    ----------
    controller:
        The supervised AutoGlobe controller.
    access:
        Optional :class:`repro.serviceglobe.security.AccessController`;
        when set, manual executions must name a principal whose role
        permits them (manual overrides are administrator-only).
    """

    def __init__(self, controller: AutoGlobeController, access=None) -> None:
        self.controller = controller
        self.access = access

    # -- views ----------------------------------------------------------------------

    def server_view(self, now: Optional[int] = None) -> str:
        """Servers grouped by category with load and instance placement."""
        platform = self.controller.platform
        rows: List[List[str]] = []
        hosts = sorted(
            platform.hosts.values(), key=lambda h: (h.spec.category, h.name)
        )
        for host in hosts:
            protected = (
                "yes"
                if now is not None
                and self.controller.protection.is_protected(host.name, now)
                else ""
            )
            rows.append(
                [
                    host.spec.category,
                    host.name,
                    f"{host.performance_index:g}",
                    f"{host.cpu_load:.0%}",
                    f"{host.mem_load(platform.memory_of):.0%}",
                    ", ".join(i.instance_id for i in host.running_instances) or "-",
                    protected,
                ]
            )
        return _table(
            ["category", "server", "perf", "cpu", "mem", "instances", "protected"],
            rows,
        )

    def service_view(self) -> str:
        """Services with priorities, instance counts, users and placement."""
        platform = self.controller.platform
        rows: List[List[str]] = []
        for definition in sorted(platform.services.values(), key=lambda s: s.name):
            instances = definition.running_instances
            rows.append(
                [
                    definition.name,
                    definition.spec.kind.value,
                    str(definition.priority),
                    str(len(instances)),
                    str(definition.total_users),
                    f"{platform.service_load(definition.name):.0%}",
                    ", ".join(f"{i.instance_id}@{i.host_name}" for i in instances)
                    or "-",
                ]
            )
        return _table(
            ["service", "kind", "prio", "instances", "users", "load", "placement"],
            rows,
        )

    def message_view(self, limit: int = 20) -> str:
        """The most recent administrative messages and notifications."""
        alerts = self.controller.alerts.alerts[-limit:]
        if not alerts:
            return "(no messages)"
        return "\n".join(str(alert) for alert in alerts)

    def decision_view(self, limit: int = 3) -> str:
        """Explanations of the controller's most recent decisions."""
        from repro.core.explain import explain_last_decisions

        return explain_last_decisions(self.controller.decision_records, limit)

    def telemetry_view(self, limit: int = 20, topic: Optional[str] = None) -> str:
        """Tail of the platform's telemetry bus, newest last.

        Merges every topic by global sequence number (or tails one topic
        when named): the console's live window into actions, faults,
        supervision events, situation transitions and alerts.
        """
        from repro.telemetry.records import record_to_dict

        bus = self.controller.platform.bus
        envelopes = bus.tail(topic=topic, limit=limit)
        if not envelopes:
            return "(no telemetry)"
        lines = []
        for envelope in envelopes:
            payload = record_to_dict(envelope.record)
            kind = payload.pop("type")
            if kind == "LoadReportBatch":
                payload["rows"] = f"{len(payload['rows'])} samples"
            fields = " ".join(
                f"{key}={value}"
                for key, value in payload.items()
                if value not in (None, "", ())
            )
            lines.append(f"#{envelope.seq:<6} [{envelope.topic}] {kind} {fields}")
        return "\n".join(lines)

    def render(self, now: Optional[int] = None) -> str:
        """All views, separated by headings."""
        sections = [
            "== Servers ==\n" + self.server_view(now),
            "== Services ==\n" + self.service_view(),
            "== Messages ==\n" + self.message_view(),
        ]
        if self.controller.platform.bus.last_seq > 0:
            sections.append("== Telemetry ==\n" + self.telemetry_view())
        return "\n\n".join(sections)

    # -- manual execution ----------------------------------------------------------------

    def execute_manually(
        self,
        action: Action,
        service_name: str,
        instance_id: Optional[str] = None,
        target_host: Optional[str] = None,
        now: int = 0,
        principal: Optional[str] = None,
    ) -> ActionOutcome:
        """Manually execute an action "that [is] normally triggered by the
        fuzzy controller" (Section 4.3).  Manual actions bypass the
        allowed-actions policy (the administrator outranks it) but still
        respect physical constraints; the involved subjects enter
        protection mode like after any other action.

        When an access controller is attached, ``principal`` must name an
        identity allowed both to execute the action and to override the
        declarative policy.
        """
        if self.access is not None:
            if principal is None:
                from repro.serviceglobe.security import AccessDenied

                raise AccessDenied(
                    "console access control is active: a principal is required"
                )
            self.access.authorize_action(principal, action, now)
            self.access.authorize_override(principal, now)
        outcome = self.controller.platform.execute(
            action,
            service_name,
            instance_id=instance_id,
            target_host=target_host,
            enforce_allowed=False,
            note="manual execution via controller console",
        )
        subjects = {service_name}
        if outcome.source_host:
            subjects.add(outcome.source_host)
        if outcome.target_host:
            subjects.add(outcome.target_host)
        self.controller.protection.protect(subjects, now)
        self.controller.alerts.info(now, f"manual action: {outcome}")
        return outcome
