"""Linguistic variables of the AutoGlobe controllers.

The load variables follow Figure 3: trapezoid ``low`` / ``medium`` /
``high`` terms over [0, 1], calibrated so that the paper's worked
examples hold exactly (a CPU load of 0.6 has 0.5 ``medium`` and 0.2
``high`` membership; a load of 0.9 has 0.8 ``high``).

Count-like variables (``instancesOnServer``, ``instancesOfService``,
``numberOfCpus``) use ``few`` / ``some`` / ``many`` terms, and hardware
metadata variables (``cpuClock``, ``cpuCache``, ``memory``,
``swapSpace``, ``tempSpace``) use magnitude terms over their natural
units.

Output variables carry a single ``applicable`` term whose membership is
the unit ramp, so that leftmost-maximum defuzzification of the clipped
set recovers the rule base's strongest firing strength — exactly the
mechanics of Figure 5.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.fuzzy.sets import RampUp, Trapezoid
from repro.fuzzy.variables import LinguisticTerm, LinguisticVariable

__all__ = [
    "load_variable",
    "count_variable",
    "magnitude_variable",
    "applicability_variable",
    "action_selection_inputs",
    "server_selection_inputs",
    "PERFORMANCE_INDEX_DOMAIN",
]

PERFORMANCE_INDEX_DOMAIN = (0.0, 10.0)


def load_variable(name: str) -> LinguisticVariable:
    """A [0, 1] load variable with the paper's Figure 3 terms."""
    return LinguisticVariable(
        name,
        [
            LinguisticTerm("low", Trapezoid(0.0, 0.0, 0.2, 0.4)),
            LinguisticTerm("medium", Trapezoid(0.2, 0.35, 0.5, 0.7)),
            LinguisticTerm("high", Trapezoid(0.5, 1.0, 1.0, 1.0)),
        ],
        domain=(0.0, 1.0),
    )


def performance_index_variable() -> LinguisticVariable:
    """Relative server performance on a 0-10 scale.

    With the paper's hardware, a BX300 blade (index 1) is fully ``low``,
    a BX600 blade (index 2) is half ``low`` / half ``medium``, and a
    BL40p server (index 9) is fully ``high``.  The databases' minimum
    index of 5 sits at the medium/high boundary.
    """
    return LinguisticVariable(
        "performanceIndex",
        [
            LinguisticTerm("low", Trapezoid(0.0, 0.0, 1.0, 3.0)),
            LinguisticTerm("medium", Trapezoid(1.0, 3.0, 5.0, 7.0)),
            LinguisticTerm("high", Trapezoid(5.0, 7.0, 10.0, 10.0)),
        ],
        domain=PERFORMANCE_INDEX_DOMAIN,
    )


def count_variable(name: str, maximum: float = 10.0) -> LinguisticVariable:
    """A small-count variable with ``few`` / ``some`` / ``many`` terms.

    Calibrated for the instance counts of the paper's landscape: one
    instance is fully ``few``, two to four instances are ``some``, and
    six or more are fully ``many`` (with ``maximum`` = 10).
    """
    unit = maximum / 10.0
    return LinguisticVariable(
        name,
        [
            LinguisticTerm("few", Trapezoid(0.0, 0.0, unit * 1.0, unit * 2.0)),
            LinguisticTerm(
                "some", Trapezoid(unit * 1.0, unit * 2.0, unit * 4.0, unit * 6.0)
            ),
            LinguisticTerm(
                "many", Trapezoid(unit * 4.0, unit * 6.0, maximum, maximum)
            ),
        ],
        domain=(0.0, maximum),
    )


def magnitude_variable(name: str, maximum: float) -> LinguisticVariable:
    """A hardware magnitude variable with ``small`` / ``medium`` / ``large``."""
    return LinguisticVariable(
        name,
        [
            LinguisticTerm("small", Trapezoid(0.0, 0.0, maximum * 0.1, maximum * 0.3)),
            LinguisticTerm(
                "medium",
                Trapezoid(maximum * 0.1, maximum * 0.3, maximum * 0.5, maximum * 0.7),
            ),
            LinguisticTerm(
                "large", Trapezoid(maximum * 0.5, maximum * 0.7, maximum, maximum)
            ),
        ],
        domain=(0.0, maximum),
    )


def applicability_variable(name: str) -> LinguisticVariable:
    """An output variable with a single ramp-shaped ``applicable`` term."""
    return LinguisticVariable(
        name,
        [LinguisticTerm("applicable", RampUp(0.0, 1.0))],
        domain=(0.0, 1.0),
    )


def action_selection_inputs() -> List[LinguisticVariable]:
    """The input variables of Table 1."""
    return [
        load_variable("cpuLoad"),
        load_variable("memLoad"),
        performance_index_variable(),
        load_variable("instanceLoad"),
        load_variable("serviceLoad"),
        count_variable("instancesOnServer"),
        count_variable("instancesOfService"),
    ]


def server_selection_inputs() -> List[LinguisticVariable]:
    """The input variables of Table 3."""
    return [
        load_variable("cpuLoad"),
        load_variable("memLoad"),
        count_variable("instancesOnServer"),
        performance_index_variable(),
        count_variable("numberOfCpus", maximum=8.0),
        magnitude_variable("cpuClock", maximum=4000.0),       # MHz
        magnitude_variable("cpuCache", maximum=4096.0),       # KB
        magnitude_variable("memory", maximum=16384.0),        # MB
        magnitude_variable("swapSpace", maximum=32768.0),     # MB
        magnitude_variable("tempSpace", maximum=131072.0),    # MB
    ]


def applicability_variables(names: Iterable[str]) -> Dict[str, LinguisticVariable]:
    return {name: applicability_variable(name) for name in names}
