"""Durable controller state: write-ahead journal, snapshots, leases.

The paper's controller is the one component AutoGlobe cannot heal: every
self-organizing decision (the Figure 6 loop, protection mode,
semi-automatic approvals) lives in the controller process, and losing it
collapses availability toward the no-controller floor.  This module
makes the administration layer as fault-tolerant as the landscape it
administers:

* :class:`StateJournal` — an append-only JSON-lines write-ahead journal
  of the controller's soft state: protection-registry entries, LMS
  watch-time observation progress, pending semi-automatic approvals and
  the executor's two-phase action log (intent before the platform
  mutates, commit after).  Reads tolerate a torn tail: a record half
  written when the process died is ignored, everything before it is
  kept.
* :class:`SnapshotStore` — periodic full-state snapshots written
  atomically (temp file + ``os.replace``), so recovery replays only the
  journal suffix past the snapshot.
* :class:`LeaseStore` — SQLite-backed leader lease with monotonically
  increasing *fencing tokens*.  A new leadership grant bumps the token;
  the platform rejects actions carrying an older token
  (:class:`~repro.serviceglobe.actions.FencedActionError`), so a deposed
  or partitioned leader cannot double-apply actions.
* :func:`replay_journal` — the idempotent fold from (snapshot, journal
  suffix) back to controller state.  Applying the same suffix twice
  yields the same state: protection entries max-merge, observations and
  approvals upsert by id, and action intents are resolved by their
  commit records — whatever intent remains unresolved was in flight
  when the controller died and must be reconciled against the platform.

:class:`DurableStateStore` bundles the three behind one directory (or
fully in memory for hot-standby failover without persistence).
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.config.model import Action
from repro.serviceglobe.actions import ActionOutcome

__all__ = [
    "JournalRecord",
    "StateJournal",
    "SnapshotStore",
    "LeaseStore",
    "DurableStateStore",
    "replay_journal",
    "outcome_to_dict",
    "outcome_from_dict",
]


# -- codecs ---------------------------------------------------------------------------


def outcome_to_dict(outcome: ActionOutcome) -> Dict[str, Any]:
    """JSON-able form of an audit record (the Action enum by value)."""
    return {
        "time": outcome.time,
        "action": outcome.action.value,
        "service_name": outcome.service_name,
        "instance_id": outcome.instance_id,
        "source_host": outcome.source_host,
        "target_host": outcome.target_host,
        "applicability": outcome.applicability,
        "note": outcome.note,
        "status": outcome.status,
        "attempts": outcome.attempts,
        "duration": outcome.duration,
    }


def outcome_from_dict(payload: Dict[str, Any]) -> ActionOutcome:
    return ActionOutcome(
        time=int(payload["time"]),
        action=Action(payload["action"]),
        service_name=payload["service_name"],
        instance_id=payload.get("instance_id"),
        source_host=payload.get("source_host"),
        target_host=payload.get("target_host"),
        applicability=payload.get("applicability"),
        note=payload.get("note", ""),
        status=payload.get("status", "ok"),
        attempts=int(payload.get("attempts", 1)),
        duration=float(payload.get("duration", 0.0)),
    )


# -- journal --------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry: a monotonically increasing sequence number, a
    record kind and a JSON-able payload."""

    seq: int
    kind: str
    data: Dict[str, Any]


class StateJournal:
    """Append-only write-ahead journal, JSON lines on disk.

    Every ``append`` is flushed to the OS before returning, so a killed
    process (SIGKILL, crash) loses at most the record being written —
    and :meth:`load` tolerates exactly that torn tail: reading stops at
    the first line that does not decode, keeping everything before it.

    With ``path=None`` the journal lives in memory only (hot-standby
    failover inside one process needs replay, not persistence).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.records: List[JournalRecord] = []
        self._handle = None
        if self.path is not None:
            self.records = self.load(self.path)
            self._handle = open(self.path, "a", encoding="utf-8")

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0

    def append(self, kind: str, /, **data: Any) -> JournalRecord:
        record = JournalRecord(seq=self.last_seq + 1, kind=kind, data=data)
        self.records.append(record)
        if self._handle is not None:
            self._handle.write(
                json.dumps(
                    {"seq": record.seq, "kind": record.kind, "data": record.data}
                )
                + "\n"
            )
            self._handle.flush()
        return record

    def since(self, seq: int) -> List[JournalRecord]:
        """Records with a sequence number strictly greater than ``seq``."""
        return [record for record in self.records if record.seq > seq]

    def truncate(self, seq: int) -> None:
        """Drop every record past ``seq`` (and rewrite the file).

        Used when a run resumes from a snapshot older than the journal
        tail: everything after the snapshot belongs to the abandoned
        timeline between the snapshot and the kill and must not be
        replayed into the resumed one.
        """
        self.records = [record for record in self.records if record.seq <= seq]
        if self.path is None:
            return
        self.close()
        with open(self.path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(
                    json.dumps(
                        {"seq": record.seq, "kind": record.kind, "data": record.data}
                    )
                    + "\n"
                )
        self._handle = open(self.path, "a", encoding="utf-8")

    @staticmethod
    def load(path: Union[str, Path]) -> List[JournalRecord]:
        """Read a journal file, stopping at the first torn/undecodable line."""
        records: List[JournalRecord] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        raw = json.loads(line)
                        records.append(
                            JournalRecord(
                                seq=int(raw["seq"]),
                                kind=str(raw["kind"]),
                                data=dict(raw["data"]),
                            )
                        )
                    except (ValueError, KeyError, TypeError):
                        break  # torn tail: the process died mid-write
        except FileNotFoundError:
            pass
        return records

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# -- snapshots ------------------------------------------------------------------------


class SnapshotStore:
    """Atomic JSON snapshots, one file per snapshot kind.

    ``save`` writes to a temp file and ``os.replace``s it into place, so
    a crash mid-write leaves the previous snapshot intact.  With
    ``directory=None`` snapshots are kept in memory only.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._memory: Dict[str, Dict[str, Any]] = {}

    def _path_for(self, kind: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{kind}.snapshot.json"

    def save(
        self, kind: str, tick: int, journal_seq: int, payload: Dict[str, Any]
    ) -> None:
        snapshot = {"kind": kind, "tick": tick, "journal_seq": journal_seq,
                    "payload": payload}
        if self.directory is None:
            self._memory[kind] = snapshot
            return
        target = self._path_for(kind)
        temp = target.with_suffix(".tmp")
        temp.write_text(json.dumps(snapshot), encoding="utf-8")
        os.replace(temp, target)

    def load(self, kind: str) -> Optional[Dict[str, Any]]:
        """The latest snapshot of a kind, or ``None``.

        A corrupt snapshot file (crash while no previous snapshot
        existed) reads as ``None`` — recovery then replays the whole
        journal.
        """
        if self.directory is None:
            return self._memory.get(kind)
        try:
            return json.loads(self._path_for(kind).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None


# -- leases ---------------------------------------------------------------------------


class LeaseStore:
    """A single leader lease with monotonic fencing tokens.

    Backed by SQLite (``:memory:`` by default) so that, with a state
    directory, leadership survives process restarts: a resumed
    controller re-acquires the lease with a *new, higher* token and the
    platform's fencing guard rejects anything still carrying the old
    one.

    ``acquire`` returns the fencing token when the caller holds the
    lease afterwards (granted fresh, taken over after expiry, or
    renewed), else ``None`` — somebody else holds an unexpired lease.
    A change of holder always increments the token; a renewal never
    does.

    Every mutation runs inside a ``BEGIN IMMEDIATE`` transaction that
    re-reads the lease row *after* taking SQLite's write lock.  Without
    that, two processes racing for an expired lease could both read the
    old row, both "take over", and both leave believing they hold the
    same bumped token — overlapping leadership, exactly what fencing
    exists to prevent.  With the write lock held from the first read,
    the loser of the race observes the winner's fresh lease and backs
    off with ``None``.
    """

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS lease (
        id         INTEGER PRIMARY KEY CHECK (id = 1),
        holder     TEXT NOT NULL,
        token      INTEGER NOT NULL,
        expires_at INTEGER NOT NULL
    );
    """

    #: How long a writer waits for a competing process's transaction
    #: before giving up; lease transactions are tiny, so contention
    #: clears in microseconds and this is pure safety margin.
    BUSY_TIMEOUT_MS = 5_000

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        cross_thread: bool = False,
    ) -> None:
        # cross_thread relaxes SQLite's same-thread check for callers
        # that serialize access themselves (the federation server touches
        # each domain's lease from reader, sweep and shutdown threads,
        # all under one lock)
        self._connection = sqlite3.connect(
            str(path), check_same_thread=not cross_thread
        )
        self._connection.execute(
            f"PRAGMA busy_timeout = {self.BUSY_TIMEOUT_MS}"
        )
        # autocommit mode: transactions are opened explicitly below
        self._connection.isolation_level = None
        self._connection.executescript(self._SCHEMA)

    def close(self) -> None:
        self._connection.close()

    def current(self) -> Optional[Tuple[str, int, int]]:
        """(holder, token, expires_at) of the lease row, or ``None``."""
        row = self._connection.execute(
            "SELECT holder, token, expires_at FROM lease WHERE id = 1"
        ).fetchone()
        if row is None:
            return None
        return str(row[0]), int(row[1]), int(row[2])

    def acquire(self, holder: str, now: int, ttl: int) -> Optional[int]:
        if ttl < 1:
            raise ValueError("lease ttl must be at least one minute")
        connection = self._connection
        connection.execute("BEGIN IMMEDIATE")
        try:
            row = connection.execute(
                "SELECT holder, token, expires_at FROM lease WHERE id = 1"
            ).fetchone()
            if row is None:
                token = 1
                connection.execute(
                    "INSERT INTO lease (id, holder, token, expires_at) "
                    "VALUES (1, ?, ?, ?)",
                    (holder, token, now + ttl),
                )
                connection.execute("COMMIT")
                return token
            current_holder, token, expires_at = str(row[0]), int(row[1]), int(row[2])
            if current_holder == holder:
                # renewal: same leadership, same token
                connection.execute(
                    "UPDATE lease SET expires_at = ? WHERE id = 1",
                    (now + ttl,),
                )
                connection.execute("COMMIT")
                return token
            if expires_at <= now:
                token += 1
                connection.execute(
                    "UPDATE lease SET holder = ?, token = ?, expires_at = ? "
                    "WHERE id = 1",
                    (holder, token, now + ttl),
                )
                connection.execute("COMMIT")
                return token
            connection.execute("COMMIT")
            return None
        except BaseException:
            connection.execute("ROLLBACK")
            raise

    def renew(self, holder: str, now: int, ttl: int) -> Optional[int]:
        """Extend the lease if (and only if) ``holder`` still owns it."""
        row = self.current()
        if row is None or row[0] != holder:
            return None
        return self.acquire(holder, now, ttl)

    def release(self, holder: str) -> None:
        """Voluntarily give up the lease (the token stays monotonic)."""
        # the WHERE clause makes check-then-release a single atomic
        # statement: releasing a lease someone else took over is a no-op
        self._connection.execute(
            "UPDATE lease SET expires_at = 0 WHERE id = 1 AND holder = ?",
            (holder,),
        )


# -- the facade -----------------------------------------------------------------------


class DurableStateStore:
    """Journal + snapshots + lease behind one state directory.

    With a directory, the layout is::

        state_dir/journal.jsonl          append-only WAL
        state_dir/controller.snapshot.json  per-tick controller state
        state_dir/run.snapshot.json      periodic full-run state
        state_dir/lease.db               leader lease + fencing tokens

    With ``directory=None`` everything lives in memory: hot-standby
    failover inside one process still journals and replays, it just does
    not survive the process.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.journal = StateJournal(self.directory / "journal.jsonl")
            self.snapshots = SnapshotStore(self.directory)
            self.lease = LeaseStore(self.directory / "lease.db")
        else:
            self.journal = StateJournal(None)
            self.snapshots = SnapshotStore(None)
            self.lease = LeaseStore(":memory:")

    @property
    def persistent(self) -> bool:
        return self.directory is not None

    def close(self) -> None:
        self.journal.close()
        self.lease.close()


# -- replay ---------------------------------------------------------------------------


def _blank_state() -> Dict[str, Any]:
    return {
        "tick": None,
        "protection": {},
        "observations": {},
        "approvals": {},
        "approval_sequence": 0,
        "pending_restarts": {},
        "intents": {},
    }


def replay_journal(
    base: Optional[Dict[str, Any]],
    records: List[JournalRecord],
) -> Dict[str, Any]:
    """Fold a journal suffix onto a snapshot payload, idempotently.

    ``base`` is a controller snapshot payload (or ``None`` for recovery
    without any snapshot).  The fold is a join, not a log of side
    effects: protection entries merge by maximum expiry, observations
    and approvals upsert by key, ticks merge by maximum, and action
    intents are added on ``action-intent`` and removed on
    ``action-commit``.  Replaying the same records twice — including a
    suffix that partially overlaps the snapshot — cannot change the
    result, which is what makes crash recovery safe to re-run.

    Whatever remains in ``state["intents"]`` was started but never
    committed or aborted: the in-flight actions reconciliation must
    complete or compensate exactly once.
    """
    state = _blank_state()
    if base is not None:
        state["tick"] = base.get("tick")
        state["protection"] = dict(base.get("protection", {}))
        state["observations"] = {
            f"{d['subject']}|{d['kind']}": dict(d)
            for d in base.get("observations", [])
        }
        state["approvals"] = {
            a["request_id"]: dict(a) for a in base.get("approvals", [])
        }
        state["approval_sequence"] = int(base.get("approval_sequence", 0))
        state["pending_restarts"] = dict(base.get("pending_restarts", {}))
    for record in records:
        data = record.data
        if record.kind == "tick":
            now = int(data["now"])
            if state["tick"] is None or now > state["tick"]:
                state["tick"] = now
        elif record.kind == "protect":
            subject = data["subject"]
            until = int(data["until"])
            current = state["protection"].get(subject, -1)
            state["protection"][subject] = max(current, until)
        elif record.kind == "observation-open":
            key = f"{data['subject']}|{data['kind']}"
            state["observations"][key] = dict(data)
        elif record.kind == "observation-close":
            key = f"{data['subject']}|{data['kind']}"
            state["observations"].pop(key, None)
        elif record.kind == "approval-request":
            request_id = data["request_id"]
            existing = state["approvals"].get(request_id)
            if existing is None:
                state["approvals"][request_id] = {
                    "request_id": request_id,
                    "time": int(data["time"]),
                    "description": data.get("description", ""),
                    "status": "pending",
                    "answered_at": None,
                    "service_name": data.get("service_name", ""),
                    "action": data.get("action"),
                    "executed": False,
                }
            sequence = int(request_id.rsplit("-", 1)[-1])
            if sequence > state["approval_sequence"]:
                state["approval_sequence"] = sequence
        elif record.kind == "approval-answer":
            request = state["approvals"].get(data["request_id"])
            if request is not None and request["status"] == "pending":
                request["status"] = (
                    "approved" if data.get("approved") else "declined"
                )
                request["answered_at"] = int(data["time"])
        elif record.kind == "approval-expired":
            request = state["approvals"].get(data["request_id"])
            if request is not None and request["status"] == "pending":
                request["status"] = "expired"
                request["answered_at"] = int(data["time"])
        elif record.kind == "restart-pending":
            state["pending_restarts"].setdefault(
                data["service_name"], data.get("preferred_host", "")
            )
        elif record.kind == "restart-done":
            state["pending_restarts"].pop(data["service_name"], None)
        elif record.kind == "action-intent":
            state["intents"][data["intent_id"]] = dict(data)
            # an intent raised on behalf of an approved request is the
            # durable proof that its deferred action was applied: a
            # recovered controller must never execute the approval again
            approval_id = data.get("approval_id")
            if approval_id:
                request = state["approvals"].get(approval_id)
                if request is not None:
                    request["executed"] = True
        elif record.kind == "action-commit":
            state["intents"].pop(data["intent_id"], None)
        # unknown kinds are skipped: journals are forward-compatible
    return state
