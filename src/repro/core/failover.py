"""Controller crash recovery and hot-standby failover.

AutoGlobe heals every component of the landscape except the one doing
the healing: the controller itself.  :class:`ControllerSupervisor`
closes that gap.  It manages a sequence of controller *replicas* over
one platform:

* the **active** replica runs the ordinary Figure 2 loop; every tick its
  soft state flows into the shared write-ahead journal and a controller
  snapshot (:class:`~repro.core.state.DurableStateStore`);
* leadership is a **lease** with a monotonically increasing fencing
  token.  The active replica renews the lease each tick; a replica that
  cannot renew (crashed, partitioned) loses leadership when the lease
  expires;
* on a **crash**, a replacement replica is rebuilt from snapshot +
  journal replay, reconciles in-flight action intents against the
  platform (completed, aborted or compensated — exactly once) and
  re-acquires the lease with a higher token;
* with a **hot standby**, a network-partitioned leader is superseded as
  soon as its lease expires: the standby is promoted with a new token
  and the platform's :class:`~repro.serviceglobe.actions.FencingGuard`
  rejects everything the deposed leader keeps issuing (audited as
  ``"fenced"`` outcomes) until the partition heals and it demotes.

The supervisor is a drop-in replacement for
:class:`~repro.core.autoglobe.AutoGlobeController` from the simulation
runner's and fault injector's point of view: it proxies ``platform``,
``enabled``, ``report_failure``, ``failure_detector``,
``degrade_monitoring`` and exposes an aggregated ``alerts`` view over
every replica that ever led.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config.model import ControllerSettings
from repro.core.alerts import CommandQueue
from repro.core.autoglobe import AutoGlobeController
from repro.core.state import DurableStateStore, replay_journal
from repro.monitoring.archive import InMemoryLoadArchive, LoadArchive
from repro.serviceglobe.actions import ActionOutcome
from repro.serviceglobe.executor import ActionExecutor
from repro.serviceglobe.platform import Platform
from repro.telemetry.records import SupervisionEvent, SupervisionEventKind

__all__ = ["ControllerSupervisor"]

#: minutes a leadership lease stays valid without renewal
DEFAULT_LEASE_TTL = 5


class _ApprovalView:
    """Aggregated approval queue over every controller replica."""

    def __init__(self, replicas: List[AutoGlobeController]) -> None:
        self._replicas = replicas

    def pending(self):
        return [r for c in self._replicas for r in c.alerts.approvals.pending()]

    def expired(self):
        return [r for c in self._replicas for r in c.alerts.approvals.expired()]

    @property
    def requests(self):
        return [r for c in self._replicas for r in c.alerts.approvals.requests]


class _AlertsView:
    """Aggregated alert channel over every controller replica."""

    def __init__(self, supervisor: "ControllerSupervisor") -> None:
        self._supervisor = supervisor

    @property
    def alerts(self):
        return [
            alert
            for controller in self._supervisor.replicas
            for alert in controller.alerts.alerts
        ]

    def escalations(self):
        return [
            alert
            for controller in self._supervisor.replicas
            for alert in controller.alerts.escalations()
        ]

    @property
    def approvals(self) -> _ApprovalView:
        return _ApprovalView(self._supervisor.replicas)


class ControllerSupervisor:
    """Supervises controller replicas: leases, failover, recovery.

    Parameters
    ----------
    platform:
        The platform the controllers administer.
    settings / archive / confirm / enabled:
        Forwarded to every replica, exactly as
        :class:`~repro.core.autoglobe.AutoGlobeController` takes them.
    store:
        The :class:`~repro.core.state.DurableStateStore` holding the
        journal, snapshots and lease.  Defaults to a fully in-memory
        store (failover works, nothing survives the process).
    standby:
        Keep a hot standby: on a leader crash or partition the standby
        is promoted as soon as the old lease expires, instead of
        waiting out the crashed leader's restart.
    executor_factory:
        ``(name, replica_number) -> ActionExecutor`` building each
        replica's executor; chaos runs inject their fault profile here
        with a per-replica seed.  Defaults to a pristine executor.
    lease_ttl:
        Lease validity in simulated minutes.
    scan_mode:
        Landscape scan strategy forwarded to every replica
        (``"columnar"`` or ``"object-graph"``).
    """

    def __init__(
        self,
        platform: Platform,
        settings: Optional[ControllerSettings] = None,
        archive: Optional[LoadArchive] = None,
        confirm=None,
        enabled: bool = True,
        store: Optional[DurableStateStore] = None,
        standby: bool = False,
        executor_factory: Optional[Callable[[str, int], ActionExecutor]] = None,
        lease_ttl: int = DEFAULT_LEASE_TTL,
        relocation_handler=None,
        scan_mode: str = "columnar",
    ) -> None:
        self.platform = platform
        #: landscape scan strategy, forwarded to every replica
        self.scan_mode = scan_mode
        #: control domain this supervisor's replicas administer (from a
        #: DomainView's marker); empty when supervising the whole landscape
        self.domain = getattr(platform, "domain_name", "")
        #: forwarded to every replica's decision loop so failover
        #: replicas stay wired to the federation's relocation path
        self._relocation_handler = relocation_handler
        self.settings = (
            settings if settings is not None else platform.landscape.controller
        )
        self.archive = archive if archive is not None else InMemoryLoadArchive()
        self._confirm = confirm
        self._enabled = enabled
        self.store = store if store is not None else DurableStateStore(None)
        self.standby_enabled = standby
        self._executor_factory = executor_factory
        self.lease_ttl = lease_ttl
        self._replica_sequence = 0
        #: every replica ever created, newest last (alert aggregation)
        self.replicas: List[AutoGlobeController] = []
        #: (time, kind, detail) supervision events: crashes, recoveries,
        #: failovers, partition heals — merged into the run's fault records
        self.events: List[Tuple[int, str, str]] = []
        self.downtime_minutes = 0
        self._restart_at: Optional[int] = None
        self._partitioned_until: Optional[int] = None
        #: deposed-but-still-running ex-leader and the minute it heals
        self._stale: Optional[Tuple[AutoGlobeController, int]] = None
        #: monitoring outages injected at supervisor level, so replicas
        #: promoted mid-outage inherit them
        self._monitor_outages: Dict[str, int] = {}
        #: unresolved action intents awaiting reconciliation on the next tick
        self._pending_intents: Dict[str, Dict[str, Any]] = {}
        #: operator verdicts posted while the active replica may be down
        #: or changing; forwarded to whoever leads at the next tick
        self.commands = CommandQueue()
        self.active: Optional[AutoGlobeController] = self._recover_from_store()

    def _record_event(self, now: int, kind: str, detail: str) -> None:
        """Record one supervision event and publish it on the bus.

        ``kind`` must name a :class:`SupervisionEventKind` member —
        a typo or a new unregistered kind raises ``ValueError`` here, at
        the producer, instead of being silently dropped downstream.
        """
        event_kind = SupervisionEventKind(kind)
        self.events.append((now, kind, detail))
        self.platform.bus.publish(
            SupervisionEvent(now, event_kind, detail, self.domain)
        )

    # -- replica construction -------------------------------------------------------

    def _new_controller(self) -> AutoGlobeController:
        self._replica_sequence += 1
        name = f"controller-{self._replica_sequence}"
        if self._executor_factory is not None:
            executor = self._executor_factory(name, self._replica_sequence)
        else:
            executor = ActionExecutor(self.platform, name=name)
        controller = AutoGlobeController(
            self.platform,
            settings=self.settings,
            archive=self.archive,
            confirm=self._confirm,
            enabled=self._enabled,
            executor=executor,
            relocation_handler=self._relocation_handler,
            scan_mode=self.scan_mode,
        )
        controller.attach_journal(self.store.journal)
        self.replicas.append(controller)
        return controller

    def _recover_from_store(self) -> AutoGlobeController:
        """Build a replica from snapshot + journal replay.

        On a fresh (empty) store this degenerates to a plain new
        controller; otherwise the replica inherits everything the
        previous leader durably recorded, and whatever action intents
        replay leaves unresolved is queued for reconciliation.
        """
        snapshot = self.store.snapshots.load("controller")
        base = snapshot["payload"] if snapshot else None
        seq = int(snapshot["journal_seq"]) if snapshot else 0
        state = replay_journal(base, self.store.journal.since(seq))
        # a fresh process recovering from a persistent store must not
        # reuse the previous leader's name: renewing under the same
        # holder would keep the old fencing token alive.  Seed the
        # replica counter past whatever name the lease row records.
        row = self.store.lease.current()
        if row is not None:
            try:
                self._replica_sequence = max(
                    self._replica_sequence, int(row[0].rsplit("-", 1)[-1])
                )
            except ValueError:
                pass
        controller = self._new_controller()
        payload: Dict[str, Any] = dict(base or {})
        payload.update(
            {
                "protection": state["protection"],
                "observations": list(state["observations"].values()),
                "approvals": list(state["approvals"].values()),
                "approval_sequence": state["approval_sequence"],
                "pending_restarts": state["pending_restarts"],
            }
        )
        controller.restore_state(payload)
        for host_name, until in self._monitor_outages.items():
            controller.degrade_monitoring(host_name, until)
        self._pending_intents = dict(state["intents"])
        return controller

    # -- identity -------------------------------------------------------------------

    @property
    def active_name(self) -> Optional[str]:
        return self.active.executor.name if self.active is not None else None

    @property
    def _active_replica_number(self) -> Optional[int]:
        if self.active is None:
            return None
        return int(self.active.executor.name.rsplit("-", 1)[-1])

    # -- fault hooks (called by the fault injector) -----------------------------------

    def fault_in_progress(self, now: int) -> bool:
        """A controller fault is still playing out (don't stack another)."""
        if self.active is None or self._stale is not None:
            return True
        return self._partitioned_until is not None and now < self._partitioned_until

    def crash_active(self, now: int, down_minutes: int) -> None:
        """Kill the active controller process.

        Without a standby a replacement restarts after ``down_minutes``;
        with one, the standby takes over as soon as the lease expires.
        """
        if self.active is None:
            return
        self._record_event(now, "controller-crash", self.active.executor.name)
        self.active = None
        self._restart_at = now + down_minutes
        # the crashed process takes its partition state with it
        self._partitioned_until = None

    def partition_active(self, now: int, minutes: int) -> None:
        """Cut the active leader off from the lease store.

        The leader keeps running and issuing actions — it does not know
        it is partitioned — but cannot renew its lease.  With a standby
        the expiry triggers a promotion and the old leader's actions are
        fenced from then on.
        """
        if self.active is None:
            return
        self._partitioned_until = now + minutes
        self._record_event(now, "leader-partition", self.active.executor.name)

    # -- leadership -------------------------------------------------------------------

    def _maybe_recover(self, now: int) -> None:
        """Replace a crashed leader once permitted by lease and timer."""
        row = self.store.lease.current()
        lease_free = row is None or row[2] <= now
        if not lease_free:
            return
        if self.standby_enabled:
            kind = "leader-failover"
        elif self._restart_at is not None and now >= self._restart_at:
            kind = "controller-recovery"
        else:
            return
        self.active = self._recover_from_store()
        self._restart_at = None
        self._record_event(now, kind, self.active.executor.name)

    def _maybe_promote(self, now: int) -> None:
        """Promote the standby over a partitioned leader at lease expiry."""
        if (
            not self.standby_enabled
            or self.active is None
            or self._partitioned_until is None
            or now >= self._partitioned_until
        ):
            return
        row = self.store.lease.current()
        if row is not None and row[2] > now:
            return  # the partitioned leader's lease has not expired yet
        deposed = self.active
        # the partitioned side can reach neither the lease store nor the
        # journal; it keeps running blind until the partition heals
        deposed.attach_journal(None)
        self._stale = (deposed, self._partitioned_until)
        self._partitioned_until = None
        self.active = self._recover_from_store()
        self._record_event(
            now,
            "leader-failover",
            f"{deposed.executor.name}->{self.active.executor.name}",
        )

    def _acquire_lease(self, now: int) -> None:
        if self._partitioned_until is not None and now < self._partitioned_until:
            return  # partitioned: the lease store is unreachable
        assert self.active is not None
        token = self.store.lease.acquire(
            self.active.executor.name, now, self.lease_ttl
        )
        if token is None:
            return
        if token != self.active.executor.fencing_token:
            self.active.executor.fencing_token = token
            # announce the new leadership epoch: anything older is stale
            self.platform.fence.advance(token)
            # published (not journaled in self.events) so the verifier's
            # fencing watermark advances before the first action of the
            # new epoch — a stale application right after a failover is
            # flagged even if the new leader has not acted yet
            self.platform.bus.publish(
                SupervisionEvent(
                    now,
                    SupervisionEventKind.LEADER_EPOCH,
                    self.active.executor.name,
                    self.domain,
                    fencing_token=token,
                )
            )

    # -- the per-minute cycle ----------------------------------------------------------

    def tick(self, now: int) -> List[ActionOutcome]:
        outcomes: List[ActionOutcome] = []
        if self.active is None:
            self.downtime_minutes += 1
            self._maybe_recover(now)
        else:
            self._maybe_promote(now)
        if self.active is not None:
            self._acquire_lease(now)
            if self._pending_intents and self._enabled:
                outcomes.extend(
                    self.active.reconcile(now, self._pending_intents)
                )
                self._pending_intents = {}
            # operator verdicts survive the dead window between a crash
            # and the next promotion: they sit in the supervisor's queue
            # and reach whichever replica leads now
            for command in self.commands.drain():
                self.active.commands.post(command)
            outcomes.extend(self.active.tick(now))
            self.store.journal.append("tick", now=now)
            self.store.snapshots.save(
                "controller",
                now,
                self.store.journal.last_seq,
                self.active.snapshot_state(),
            )
        if self._stale is not None:
            stale, heal_at = self._stale
            if now >= heal_at:
                self._record_event(now, "partition-healed", stale.executor.name)
                self._stale = None
            else:
                # the deposed leader keeps ticking; its actions carry the
                # old fencing token and are rejected ("fenced" audit
                # records), never double-applied
                stale.tick(now)
        return outcomes

    # -- proxies (duck-typed AutoGlobeController surface) ------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled and self.active is not None

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        for controller in self.replicas:
            controller.enabled = bool(value)

    @property
    def _latest(self) -> AutoGlobeController:
        return self.active if self.active is not None else self.replicas[-1]

    @property
    def failure_detector(self):
        return self._latest.failure_detector

    @property
    def protection(self):
        return self._latest.protection

    @property
    def executor(self):
        return self._latest.executor

    @property
    def lms(self):
        return self._latest.lms

    @property
    def alerts(self) -> _AlertsView:
        return _AlertsView(self)

    @property
    def decision_records(self):
        return [
            record
            for controller in self.replicas
            for record in controller.decision_records
        ]

    @property
    def situations_handled(self):
        return [
            situation
            for controller in self.replicas
            for situation in controller.situations_handled
        ]

    def report_failure(self, instance_id: str, now: int):
        if self.active is None:
            return None  # nobody is listening: the failure waits for recovery
        return self.active.report_failure(instance_id, now)

    def degrade_monitoring(self, host_name: str, until: int) -> None:
        current = self._monitor_outages.get(host_name, -1)
        self._monitor_outages[host_name] = max(current, until)
        if self.active is not None:
            self.active.degrade_monitoring(host_name, until)

    def reconcile(
        self, now: int, intents: Dict[str, Dict[str, Any]]
    ) -> List[ActionOutcome]:
        """Resolve externally supplied intents (ControlPlane surface).

        With a live leader the intents resolve immediately; otherwise
        they queue with the store-recovered ones and resolve on the
        first tick after recovery.
        """
        if self.active is None:
            self._pending_intents.update(intents)
            return []
        return self.active.reconcile(now, intents)

    # -- run-level durability (kill -9 and resume) -------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-able supervision state for a full-run snapshot."""
        return {
            "replica_sequence": self._replica_sequence,
            "active_replica": self._active_replica_number,
            "journal_seq": self.store.journal.last_seq,
            "controller": (
                self.active.snapshot_state() if self.active is not None else None
            ),
            "executor": (
                self.active.executor.snapshot_state()
                if self.active is not None
                else None
            ),
            "monitor_outages": dict(self._monitor_outages),
            "events": [list(event) for event in self.events],
            "downtime_minutes": self.downtime_minutes,
            "restart_at": self._restart_at,
            "partitioned_until": self._partitioned_until,
        }

    def restore_state(self, payload: Dict[str, Any], now: int) -> None:
        """Rebuild supervision state from a full-run snapshot.

        The journal is truncated back to the snapshot's sequence number
        — everything after it belongs to the abandoned timeline between
        the snapshot and the kill — and the active replica is rebuilt
        under its pre-kill identity, so the lease renews under the same
        holder and intent ids stay unambiguous.
        """
        self.events = [tuple(event) for event in payload.get("events", [])]
        self.downtime_minutes = int(payload.get("downtime_minutes", 0))
        self._restart_at = payload.get("restart_at")
        self._partitioned_until = payload.get("partitioned_until")
        for host_name, until in payload.get("monitor_outages", {}).items():
            current = self._monitor_outages.get(host_name, -1)
            self._monitor_outages[host_name] = max(current, int(until))
        journal_seq = int(payload.get("journal_seq", 0))
        self.store.journal.truncate(journal_seq)
        self.replicas = []
        self._pending_intents = {}
        active_replica = payload.get("active_replica")
        controller_payload = payload.get("controller")
        if active_replica is None or controller_payload is None:
            self.active = None
            self._replica_sequence = int(payload.get("replica_sequence", 0))
            return
        self._replica_sequence = int(active_replica) - 1
        self.active = self._new_controller()
        self.active.restore_state(controller_payload)
        executor_payload = payload.get("executor")
        if executor_payload is not None:
            self.active.executor.restore_state(executor_payload)
        for host_name, until in self._monitor_outages.items():
            self.active.degrade_monitoring(host_name, until)
        self._replica_sequence = max(
            self._replica_sequence, int(payload.get("replica_sequence", 0))
        )
        self.store.snapshots.save(
            "controller",
            int(controller_payload.get("tick") or 0),
            journal_seq,
            controller_payload,
        )
