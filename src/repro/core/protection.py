"""Protection mode.

"After a rearrangement has taken place, the involved services and
servers are protected for a certain time, i.e., they are excluded from
further actions.  This protection mode prevents the system from
oscillation, e.g., moving services back and forth."  (Section 4)
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["ProtectionRegistry"]


class ProtectionRegistry:
    """Tracks which services and servers are temporarily untouchable."""

    def __init__(self, protection_time: int) -> None:
        if protection_time < 0:
            raise ValueError("protection time must be non-negative")
        self.protection_time = protection_time
        self._protected_until: Dict[str, int] = {}
        #: optional :class:`~repro.core.state.StateJournal`: when set,
        #: every protection grant is journalled so crash recovery can
        #: rebuild the registry (replay max-merges expiries)
        self.journal = None

    def protect(self, subjects: Iterable[str], now: int) -> None:
        """Protect services/servers until ``now + protection_time``."""
        until = now + self.protection_time
        for subject in subjects:
            current = self._protected_until.get(subject, -1)
            final = max(current, until)
            self._protected_until[subject] = final
            if self.journal is not None:
                self.journal.append("protect", subject=subject, until=final)

    def is_protected(self, subject: str, now: int) -> bool:
        until = self._protected_until.get(subject)
        return until is not None and now < until

    def any_protected(self, subjects: Iterable[str], now: int) -> bool:
        return any(self.is_protected(subject, now) for subject in subjects)

    def protected_subjects(self, now: int) -> List[str]:
        return sorted(
            subject
            for subject, until in self._protected_until.items()
            if now < until
        )

    def expiry_of(self, subject: str) -> int:
        """Protection end time of a subject; -1 if never protected."""
        return self._protected_until.get(subject, -1)

    def prune(self, now: int) -> None:
        """Drop expired entries (bookkeeping hygiene for long runs)."""
        self._protected_until = {
            subject: until
            for subject, until in self._protected_until.items()
            if now < until
        }

    # -- durability -------------------------------------------------------------

    def snapshot_state(self) -> Dict[str, int]:
        """The subject -> expiry map (for controller snapshots)."""
        return dict(self._protected_until)

    def restore_state(self, protection: Dict[str, int]) -> None:
        """Max-merge a recovered subject -> expiry map (idempotent)."""
        for subject, until in protection.items():
            current = self._protected_until.get(subject, -1)
            self._protected_until[subject] = max(current, int(until))
