"""Default rule bases of the AutoGlobe controller.

The paper's production rule base comprises "about 40 rules" split across
dedicated rule bases per trigger (action selection) and per action
(server selection); administrators can additionally register
service-specific rule bases that are layered on top of the defaults.

All rules are written in the textual DSL so that the declarative
configuration path (XML ``<rules>`` elements) and the built-in defaults
exercise the same parser.  The two rules printed in the paper appear
verbatim at the top of the ``serviceOverloaded`` base.
"""

from __future__ import annotations

from typing import Dict

from repro.config.model import Action
from repro.fuzzy.parser import parse_rules
from repro.fuzzy.rules import RuleBase
from repro.monitoring.lms import SituationKind

__all__ = [
    "default_action_rulebases",
    "default_server_rulebases",
    "action_rulebase_text",
    "server_rulebase_text",
]

#: Action-selection rules per trigger.  Output variables are the Table 2
#: actions; every rule asserts the ``applicable`` term of its action.
_ACTION_RULES: Dict[SituationKind, str] = {
    SituationKind.SERVICE_OVERLOADED: """
        # the two rules printed in Section 3 of the paper
        IF cpuLoad IS high AND
           (performanceIndex IS low OR performanceIndex IS medium)
        THEN scaleUp IS applicable
        IF cpuLoad IS high AND performanceIndex IS high
        THEN scaleOut IS applicable

        # additional instances pay off while the service has few of them
        IF cpuLoad IS high AND serviceLoad IS high AND instancesOfService IS few
        THEN scaleOut IS applicable
        IF cpuLoad IS high AND serviceLoad IS high AND instancesOfService IS some
        THEN scaleOut IS applicable WITH 0.9
        IF cpuLoad IS high AND serviceLoad IS medium AND instancesOfService IS few
        THEN scaleOut IS applicable WITH 0.75

        # a crowded or mixed host suggests relocating rather than growing
        IF cpuLoad IS high AND instancesOnServer IS many
        THEN move IS applicable WITH 0.9
        IF cpuLoad IS high AND instancesOnServer IS some
        THEN move IS applicable WITH 0.7
        IF cpuLoad IS high AND instanceLoad IS low
        THEN move IS applicable WITH 0.8
        IF cpuLoad IS high AND serviceLoad IS low
        THEN move IS applicable WITH 0.6

        # memory pressure is best solved on a bigger box
        IF cpuLoad IS high AND memLoad IS high
        THEN scaleUp IS applicable WITH 0.8

        # when the service is already spread wide, prefer priority tuning
        IF cpuLoad IS high AND instancesOfService IS many
        THEN increasePriority IS applicable WITH 0.4
    """,
    SituationKind.SERVICE_IDLE: """
        # shrink a wide service first
        IF serviceLoad IS low AND instancesOfService IS many
        THEN scaleIn IS applicable
        IF serviceLoad IS low AND instancesOfService IS some
        THEN scaleIn IS applicable WITH 0.8

        # vacate powerful hosts for services that need them
        IF cpuLoad IS low AND performanceIndex IS high
        THEN scaleDown IS applicable WITH 0.7
        IF cpuLoad IS low AND performanceIndex IS medium
        THEN scaleDown IS applicable WITH 0.5

        # demotion; consolidation happens via scale-in/scale-down only
        # (moving an idle instance between idle hosts is oscillation bait)
        IF serviceLoad IS low AND instancesOfService IS few
        THEN stop IS applicable WITH 0.3
        IF serviceLoad IS low
        THEN reducePriority IS applicable WITH 0.2
    """,
    SituationKind.SERVER_OVERLOADED: """
        # heavy instances on weak hosts scale up, on strong hosts scale out
        IF cpuLoad IS high AND instanceLoad IS high AND
           (performanceIndex IS low OR performanceIndex IS medium)
        THEN scaleUp IS applicable
        IF cpuLoad IS high AND instanceLoad IS high AND performanceIndex IS high
        THEN scaleOut IS applicable
        IF cpuLoad IS high AND serviceLoad IS high AND instancesOfService IS few
        THEN scaleOut IS applicable WITH 0.9

        # light instances are cheap to evacuate
        IF cpuLoad IS high AND instanceLoad IS low
        THEN move IS applicable
        IF cpuLoad IS high AND instanceLoad IS medium
        THEN move IS applicable WITH 0.9
        IF cpuLoad IS high AND instancesOnServer IS many
        THEN move IS applicable WITH 0.8

        # a redundant instance can simply leave the crowded host
        IF cpuLoad IS high AND instanceLoad IS low AND instancesOfService IS many
        THEN scaleIn IS applicable WITH 0.7
        IF cpuLoad IS high AND instanceLoad IS low AND instancesOfService IS some
        THEN scaleIn IS applicable WITH 0.6

        # last resort: demote services that barely use the host anyway
        IF cpuLoad IS high AND serviceLoad IS low
        THEN reducePriority IS applicable WITH 0.3
    """,
    SituationKind.SERVER_IDLE: """
        # release redundant capacity
        IF cpuLoad IS low AND instancesOfService IS many
        THEN scaleIn IS applicable
        IF cpuLoad IS low AND instancesOfService IS some
        THEN scaleIn IS applicable WITH 0.7

        # vacate an expensive idle host downwards; plain moves between
        # idle hosts are avoided (oscillation bait)
        IF cpuLoad IS low AND performanceIndex IS high AND instancesOfService IS few
        THEN scaleDown IS applicable WITH 0.5
        IF cpuLoad IS low AND instancesOfService IS few
        THEN scaleDown IS applicable WITH 0.4
        IF cpuLoad IS low AND serviceLoad IS low
        THEN stop IS applicable WITH 0.2
    """,
}

#: Server-selection rules per action.  Every base asserts a single output
#: variable ``suitability``; the crisp score of a candidate host is the
#: strongest firing strength, so rules encode a preference lattice via
#: their weights.
_COMMON_SERVER_RULES = """
    IF cpuLoad IS low AND memLoad IS low
    THEN suitability IS applicable WITH 0.9
    IF cpuLoad IS low AND memLoad IS medium
    THEN suitability IS applicable WITH 0.7
    IF cpuLoad IS medium AND memLoad IS low
    THEN suitability IS applicable WITH 0.55
    IF cpuLoad IS medium AND memLoad IS medium
    THEN suitability IS applicable WITH 0.4
"""

_SERVER_RULES: Dict[Action, str] = {
    Action.SCALE_OUT: _COMMON_SERVER_RULES + """
        # a powerful idle host absorbs a new instance best; among equally
        # idle hosts, higher performance indexes win
        IF cpuLoad IS low AND performanceIndex IS high
        THEN suitability IS applicable
        IF cpuLoad IS low AND performanceIndex IS medium
        THEN suitability IS applicable WITH 0.93
        IF cpuLoad IS low AND numberOfCpus IS many
        THEN suitability IS applicable WITH 0.96
        IF cpuLoad IS low AND instancesOnServer IS few
        THEN suitability IS applicable WITH 0.8
        IF cpuLoad IS low AND memory IS large AND swapSpace IS large
        THEN suitability IS applicable WITH 0.75
    """,
    Action.START: _COMMON_SERVER_RULES + """
        IF cpuLoad IS low AND performanceIndex IS high
        THEN suitability IS applicable
        IF cpuLoad IS low AND performanceIndex IS medium
        THEN suitability IS applicable WITH 0.93
        IF cpuLoad IS low AND instancesOnServer IS few
        THEN suitability IS applicable WITH 0.8
    """,
    Action.SCALE_UP: _COMMON_SERVER_RULES + """
        # scale-up exists to reach stronger hardware
        IF cpuLoad IS low AND performanceIndex IS high
        THEN suitability IS applicable
        IF cpuLoad IS low AND performanceIndex IS medium
        THEN suitability IS applicable WITH 0.8
        IF cpuLoad IS low AND cpuClock IS large AND cpuCache IS large
        THEN suitability IS applicable WITH 0.85
    """,
    Action.SCALE_DOWN: _COMMON_SERVER_RULES + """
        # prefer the cheapest host that still fits
        IF cpuLoad IS low AND performanceIndex IS low
        THEN suitability IS applicable
        IF cpuLoad IS low AND performanceIndex IS medium
        THEN suitability IS applicable WITH 0.7
    """,
    Action.MOVE: _COMMON_SERVER_RULES + """
        IF cpuLoad IS low AND instancesOnServer IS few
        THEN suitability IS applicable
        IF cpuLoad IS low AND tempSpace IS large
        THEN suitability IS applicable WITH 0.65
    """,
}


def action_rulebase_text(kind: SituationKind) -> str:
    """The DSL text of the default action-selection rules for a trigger."""
    return _ACTION_RULES[kind]


def server_rulebase_text(action: Action) -> str:
    """The DSL text of the default server-selection rules for an action."""
    return _SERVER_RULES[action]


def default_action_rulebases() -> Dict[SituationKind, RuleBase]:
    """Parsed action-selection rule bases, one per trigger."""
    return {
        kind: RuleBase(
            kind.value, list(parse_rules(text, label_prefix=kind.value))
        )
        for kind, text in _ACTION_RULES.items()
    }


def default_server_rulebases() -> Dict[Action, RuleBase]:
    """Parsed server-selection rule bases, one per targeted action."""
    return {
        action: RuleBase(
            f"select-host-{action.value}",
            list(parse_rules(text, label_prefix=action.value)),
        )
        for action, text in _SERVER_RULES.items()
    }
