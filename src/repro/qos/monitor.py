"""SLA compliance monitoring.

Each minute the monitor samples every SLA-covered service's response
time through the request-level invoker and records whether the request
met its objective.  Compliance is evaluated over the objective's rolling
window; a service whose compliance falls below its target is *in
violation*, and the accumulated violation minutes price the penalty.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.qos.sla import ServiceLevelAgreement, SlaCatalog
from repro.serviceglobe.invocation import ServiceInvoker

__all__ = ["ComplianceReport", "SlaMonitor"]


@dataclass(frozen=True)
class ComplianceReport:
    """State of one agreement at one point in time."""

    agreement: ServiceLevelAgreement
    compliance: float
    last_response_time_ms: float
    in_violation: bool
    violation_minutes: int
    accumulated_penalty: float

    def __str__(self) -> str:
        state = "VIOLATED" if self.in_violation else "ok"
        return (
            f"{self.agreement.service_name}: {self.compliance:.0%} compliant "
            f"(target {self.agreement.objective.compliance_target:.0%}, "
            f"last {self.last_response_time_ms:.0f} ms) [{state}]"
        )


class _ServiceTracker:
    """Rolling window of pass/fail samples for one agreement."""

    def __init__(self, agreement: ServiceLevelAgreement) -> None:
        self.agreement = agreement
        self.window: Deque[bool] = deque(
            maxlen=agreement.objective.window_minutes
        )
        self.last_response_time_ms = 0.0
        self.violation_minutes = 0

    def record(self, response_time_ms: float) -> None:
        self.last_response_time_ms = response_time_ms
        self.window.append(
            response_time_ms <= self.agreement.objective.response_time_ms
        )

    @property
    def compliance(self) -> float:
        if not self.window:
            return 1.0
        return sum(self.window) / len(self.window)

    @property
    def in_violation(self) -> bool:
        return self.compliance < self.agreement.objective.compliance_target

    def report(self) -> ComplianceReport:
        return ComplianceReport(
            agreement=self.agreement,
            compliance=self.compliance,
            last_response_time_ms=self.last_response_time_ms,
            in_violation=self.in_violation,
            violation_minutes=self.violation_minutes,
            accumulated_penalty=(
                self.violation_minutes
                * self.agreement.penalty_per_violation_minute
            ),
        )


class SlaMonitor:
    """Per-minute SLA compliance measurement over the invoker."""

    def __init__(self, invoker: ServiceInvoker, catalog: SlaCatalog) -> None:
        self.invoker = invoker
        self.catalog = catalog
        self._trackers: Dict[str, _ServiceTracker] = {
            agreement.service_name: _ServiceTracker(agreement)
            for agreement in catalog.agreements
        }

    def tick(self, now: int) -> List[ComplianceReport]:
        """Sample every covered service; return reports of violations."""
        violations: List[ComplianceReport] = []
        for service_name, tracker in self._trackers.items():
            try:
                response_time = self.invoker.sample_response_time(service_name)
            except LookupError:
                # the service is down: maximally non-compliant
                response_time = float("inf")
            tracker.record(response_time)
            if tracker.in_violation:
                tracker.violation_minutes += 1
                violations.append(tracker.report())
        return violations

    def report_for(self, service_name: str) -> Optional[ComplianceReport]:
        tracker = self._trackers.get(service_name)
        return tracker.report() if tracker is not None else None

    def reports(self) -> List[ComplianceReport]:
        return [tracker.report() for tracker in self._trackers.values()]

    def total_penalty(self) -> float:
        return sum(report.accumulated_penalty for report in self.reports())

    def worst_violations(self) -> List[Tuple[float, ComplianceReport]]:
        """Current violations, most expensive first (penalty-weighted gap)."""
        scored = []
        for report in self.reports():
            if not report.in_violation:
                continue
            gap = report.agreement.objective.compliance_target - report.compliance
            score = gap * report.agreement.penalty_per_violation_minute
            scored.append((score, report))
        scored.sort(key=lambda pair: -pair[0])
        return scored
