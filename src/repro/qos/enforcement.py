"""SLA enforcement through the controller's actions.

"The actions will then be used to enforce Service Level Agreements."
(Section 7)

The enforcer sits next to the reactive controller.  Each minute it reads
the SLA monitor; for the most expensive violation it injects a synthetic
``serviceOverloaded`` situation into the regular Figure-6 decision loop
(so the normal fuzzy action/host selection, constraints and protection
apply) and — as the cheap first line of defence — raises the violating
service's priority so the platform's weighted CPU sharing favors it.
A service back in compliance for ``relax_after`` consecutive minutes has
its priority lowered back toward neutral.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config.model import Action
from repro.core.action_selection import ActionContext
from repro.core.autoglobe import AutoGlobeController
from repro.monitoring.lms import Situation, SituationKind
from repro.qos.monitor import ComplianceReport, SlaMonitor
from repro.serviceglobe.actions import ActionError, ActionOutcome
from repro.serviceglobe.service import DEFAULT_PRIORITY

__all__ = ["SlaEnforcer"]


class SlaEnforcer:
    """Turns SLA violations into controller work."""

    def __init__(
        self,
        controller: AutoGlobeController,
        monitor: SlaMonitor,
        relax_after: int = 60,
        cooldown: int = 30,
    ) -> None:
        self.controller = controller
        self.monitor = monitor
        self.relax_after = relax_after
        self.cooldown = cooldown
        self._compliant_streak: Dict[str, int] = {}
        self._last_enforced: Dict[str, int] = {}
        self.enforcements: List[ActionOutcome] = []

    # -- helpers ---------------------------------------------------------------

    def _boost_priority(self, service_name: str, now: int) -> Optional[ActionOutcome]:
        service = self.controller.platform.service(service_name)
        if service.priority >= 8:
            return None
        try:
            outcome = self.controller.platform.execute(
                Action.INCREASE_PRIORITY,
                service_name,
                enforce_allowed=False,  # SLA enforcement outranks the policy
                note="SLA enforcement: priority boost",
            )
        except ActionError:
            return None
        self.controller.alerts.warning(
            now, f"SLA enforcement raised priority of {service_name} to "
                 f"{service.priority}"
        )
        return outcome

    def _relax_priority(self, service_name: str, now: int) -> None:
        service = self.controller.platform.service(service_name)
        if service.priority <= DEFAULT_PRIORITY:
            return
        try:
            self.controller.platform.execute(
                Action.REDUCE_PRIORITY,
                service_name,
                enforce_allowed=False,
                note="SLA enforcement: compliance restored",
            )
        except ActionError:
            pass

    def _structural_remedy(
        self, report: ComplianceReport, now: int
    ) -> Optional[ActionOutcome]:
        """Run the fuzzy decision machinery for the violating service."""
        platform = self.controller.platform
        service_name = report.agreement.service_name
        instances = platform.service(service_name).running_instances
        if not instances:
            return None
        instance = max(
            instances,
            key=lambda i: (platform.host(i.host_name).cpu_load, i.instance_id),
        )
        situation = Situation(
            kind=SituationKind.SERVICE_OVERLOADED,
            subject=instance.instance_id,
            service_name=service_name,
            detected_at=now,
            observed_mean=platform.host(instance.host_name).cpu_load,
        )
        base = self.controller._context_for_instance(
            instance, SituationKind.SERVICE_OVERLOADED, now
        )
        # non-compliance is treated as pressure even if the CPU numbers
        # alone would not yet cross the fuzzy "high" terms
        measurements = dict(base.measurements)
        shortfall = (
            report.agreement.objective.compliance_target - report.compliance
        )
        pressure = min(1.0, max(measurements["cpuLoad"], 0.7 + shortfall))
        measurements["cpuLoad"] = pressure
        measurements["serviceLoad"] = max(measurements["serviceLoad"], pressure)
        measurements["instanceLoad"] = max(measurements["instanceLoad"], pressure)
        ranked = self.controller.action_selector.rank(
            SituationKind.SERVICE_OVERLOADED,
            ActionContext(service_name, instance.instance_id, measurements),
        )
        return self.controller.decision_loop.handle(situation, ranked, now)

    # -- the per-minute cycle ------------------------------------------------------

    def tick(self, now: int) -> List[ActionOutcome]:
        """Measure compliance, enforce the worst violation, relax winners."""
        violations = self.monitor.tick(now)
        violating = {report.agreement.service_name for report in violations}
        outcomes: List[ActionOutcome] = []

        # relax services that have stayed compliant long enough
        for report in self.monitor.reports():
            service_name = report.agreement.service_name
            if service_name in violating:
                self._compliant_streak[service_name] = 0
                continue
            streak = self._compliant_streak.get(service_name, 0) + 1
            self._compliant_streak[service_name] = streak
            if streak == self.relax_after:
                self._relax_priority(service_name, now)
                self._compliant_streak[service_name] = 0

        ranked_violations = self.monitor.worst_violations()
        if not ranked_violations:
            return outcomes
        __, worst = ranked_violations[0]
        service_name = worst.agreement.service_name
        last = self._last_enforced.get(service_name)
        if last is not None and now - last < self.cooldown:
            return outcomes
        self._last_enforced[service_name] = now

        boost = self._boost_priority(service_name, now)
        if boost is not None:
            self.enforcements.append(boost)
            outcomes.append(boost)
        structural = self._structural_remedy(worst, now)
        if structural is not None:
            self.enforcements.append(structural)
            outcomes.append(structural)
        return outcomes
