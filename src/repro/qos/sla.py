"""Service level objectives and agreements.

An SLA binds a service to a response-time objective: a bound on the
per-request response time and a compliance target (the fraction of
requests that must meet the bound over the evaluation window).
Violating the agreement costs a penalty per violation minute, which the
enforcement policy uses to rank which service to help first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = ["ServiceLevelObjective", "ServiceLevelAgreement", "SlaCatalog"]


@dataclass(frozen=True)
class ServiceLevelObjective:
    """A response-time objective.

    Attributes
    ----------
    response_time_ms:
        Per-request response-time bound.
    compliance_target:
        Required fraction of compliant requests over the evaluation
        window, in (0, 1].
    window_minutes:
        Length of the rolling evaluation window.
    """

    response_time_ms: float
    compliance_target: float = 0.95
    window_minutes: int = 60

    def __post_init__(self) -> None:
        if self.response_time_ms <= 0:
            raise ValueError("response-time bound must be positive")
        if not 0.0 < self.compliance_target <= 1.0:
            raise ValueError("compliance target must be in (0, 1]")
        if self.window_minutes < 1:
            raise ValueError("evaluation window must be at least one minute")


@dataclass(frozen=True)
class ServiceLevelAgreement:
    """An SLO bound to a service, with a violation penalty."""

    service_name: str
    objective: ServiceLevelObjective
    penalty_per_violation_minute: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.penalty_per_violation_minute < 0:
            raise ValueError("penalty must be non-negative")

    def __str__(self) -> str:
        return (
            f"SLA({self.service_name}: "
            f"{self.objective.response_time_ms:.0f} ms @ "
            f"{self.objective.compliance_target:.0%})"
        )


class SlaCatalog:
    """The agreements in force, by service."""

    def __init__(
        self, agreements: Optional[Iterable[ServiceLevelAgreement]] = None
    ) -> None:
        self._by_service: Dict[str, ServiceLevelAgreement] = {}
        for agreement in agreements or []:
            self.register(agreement)

    def register(self, agreement: ServiceLevelAgreement) -> None:
        if agreement.service_name in self._by_service:
            raise ValueError(
                f"service {agreement.service_name!r} already has an SLA"
            )
        self._by_service[agreement.service_name] = agreement

    def agreement_for(self, service_name: str) -> Optional[ServiceLevelAgreement]:
        return self._by_service.get(service_name)

    @property
    def agreements(self) -> List[ServiceLevelAgreement]:
        return list(self._by_service.values())

    def __contains__(self, service_name: str) -> bool:
        return service_name in self._by_service

    def __len__(self) -> int:
        return len(self._by_service)
