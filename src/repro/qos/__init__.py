"""QoS management for self-organizing infrastructures (§7 future work).

"Eventually, we plan to enhance AutoGlobe towards QoS management for
self-organizing infrastructures.  The actions will then be used to
enforce Service Level Agreements."

* :mod:`repro.qos.sla` — service level objectives (response-time bound,
  compliance target) and agreements binding them to services;
* :mod:`repro.qos.monitor` — measures per-service response times through
  the request-level invoker and tracks rolling compliance;
* :mod:`repro.qos.enforcement` — turns SLA violations into controller
  work: priority boosts and synthetic overload situations for the
  regular fuzzy decision machinery, plus rule-base overrides for
  mission-critical services.
"""

from repro.qos.enforcement import SlaEnforcer
from repro.qos.monitor import ComplianceReport, SlaMonitor
from repro.qos.sla import ServiceLevelAgreement, ServiceLevelObjective

__all__ = [
    "ComplianceReport",
    "ServiceLevelAgreement",
    "ServiceLevelObjective",
    "SlaEnforcer",
    "SlaMonitor",
]
