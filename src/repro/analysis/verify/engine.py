"""The temporal-invariant verification engine: one engine, two front ends.

:class:`TraceVerifier` owns the AG301-AG305 stream checkers.  The *live*
front end (``autoglobe run --verify``) attaches it to the telemetry bus
as a wildcard subscriber — sanitizer-style, observing every event the
moment it is published.  The *offline* front end
(:func:`verify_trace`, ``autoglobe verify telemetry.jsonl``) replays an
exported trace through the identical ``feed``/``finish`` path.  Both
normalize records through
:func:`repro.telemetry.records.record_to_dict`, so the two front ends
produce byte-identical reports for the same run.

Findings fold into the familiar
:class:`~repro.analysis.engine.AnalysisReport` — same reporters, same
``--strict``/``--ignore`` semantics, same exit-code contract as
``autoglobe lint``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.analysis.diagnostics import Diagnostic, sorted_diagnostics
from repro.analysis.engine import AnalysisReport
from repro.analysis.verify.checkers import (
    InvariantChecker,
    VerificationContext,
    default_checkers,
)
from repro.telemetry.bus import Envelope, EventBus, WILDCARD
from repro.telemetry.records import TOPIC_REPORTS, record_to_dict
from repro.telemetry.trace import TraceEvent, merge_traces, read_trace

__all__ = ["TraceVerifier", "verify_trace", "verify_traces", "load_summary"]

PathLike = Union[str, Path]


class TraceVerifier:
    """Feeds one event stream through every temporal-invariant checker.

    Use either front end, not both: ``attach``/``detach`` for the live
    sanitizer, a ``feed`` loop for offline replay.  ``report`` finalizes
    the checkers and must be called exactly once.
    """

    def __init__(
        self,
        checkers: Optional[List[InvariantChecker]] = None,
        ignore: Iterable[str] = (),
    ) -> None:
        self._checkers = checkers if checkers is not None else default_checkers()
        self._ignore = frozenset(ignore)
        self._bus: Optional[EventBus] = None
        self._live_complete = True
        self._end_time = 0
        self._fed = 0

    @property
    def fed(self) -> int:
        """Events fed so far."""
        return self._fed

    def feed(self, event: TraceEvent) -> None:
        """Run one normalized event through every checker."""
        self._fed += 1
        time = event.record.get("time")
        if isinstance(time, int) and time > self._end_time:
            self._end_time = time
        if event.topic == TOPIC_REPORTS:
            return  # load reports carry no safety-relevant state
        for checker in self._checkers:
            checker.feed(event)

    # -- live (sanitizer) front end --------------------------------------------------

    def attach(self, bus: EventBus) -> None:
        """Subscribe to every topic of a bus; events feed as published."""
        if self._bus is not None:
            raise RuntimeError("verifier is already attached to a bus")
        self._live_complete = bus.last_seq == 0
        bus.subscribe(WILDCARD, self._on_envelope)
        self._bus = bus

    def detach(self) -> None:
        """Stop observing the bus; safe to call when never attached."""
        if self._bus is not None:
            self._bus.unsubscribe(WILDCARD, self._on_envelope)
            self._bus = None

    def _on_envelope(self, envelope: Envelope) -> None:
        self.feed(
            TraceEvent(
                seq=envelope.seq,
                topic=envelope.topic,
                record=record_to_dict(envelope.record),
            )
        )

    # -- finalization -----------------------------------------------------------------

    def report(
        self,
        name: str,
        complete: Optional[bool] = None,
        summary: Optional[Mapping[str, Any]] = None,
    ) -> AnalysisReport:
        """Finalize every checker and fold the findings into a report.

        ``complete`` defaults to what the live attachment observed (the
        bus was virgin when attached); offline callers pass the trace
        header's flag.  ``summary`` enables accounting reconciliation
        (AG305).
        """
        self.detach()
        context = VerificationContext(
            complete=self._live_complete if complete is None else complete,
            summary=summary,
            end_time=self._end_time,
        )
        findings: List[Diagnostic] = []
        for checker in self._checkers:
            findings.extend(checker.finish(context))
        kept = [d for d in findings if d.code not in self._ignore]
        return AnalysisReport(name, tuple(sorted_diagnostics(kept)))


def load_summary(path: PathLike) -> Dict[str, Any]:
    """Read a ``summary.json`` produced by the exporter."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a JSON object")
    return payload


def _read_trace_or_store(trace_file: Path):
    """Dispatch on file format: SQLite event store or JSONL trace.

    Both yield the same ``(TraceHeader, [TraceEvent])`` shape, so the
    checkers downstream cannot tell which surface the run was captured
    on — the ISSUE's "same report from either format" guarantee.
    """
    from repro.ops.store import is_store_file, read_store

    if is_store_file(trace_file):
        return read_store(trace_file)
    return read_trace(trace_file)


def verify_trace(
    trace_path: PathLike,
    summary_path: Optional[PathLike] = None,
    ignore: Iterable[str] = (),
    name: str = "",
) -> AnalysisReport:
    """Offline front end: verify one exported ``telemetry.jsonl`` trace.

    A SQLite event store written by ``autoglobe run --store`` is
    accepted in place of the JSONL trace; the report is identical for
    the same run.  When ``summary_path`` is omitted, a ``summary.json``
    sitting next to the trace is picked up automatically (accounting
    reconciliation degrades gracefully to "off" when neither exists).
    Raises :class:`~repro.telemetry.trace.TraceSchemaError` for traces
    written by a newer schema version.
    """
    trace_file = Path(trace_path)
    header, events = _read_trace_or_store(trace_file)
    verifier = TraceVerifier(ignore=ignore)
    for event in events:
        verifier.feed(event)
    summary: Optional[Dict[str, Any]] = None
    if summary_path is not None:
        summary = load_summary(summary_path)
    else:
        sibling = trace_file.parent / "summary.json"
        if sibling.exists():
            summary = load_summary(sibling)
    return verifier.report(
        name or trace_file.stem,
        complete=header.complete,
        summary=summary,
    )


def verify_traces(
    trace_paths: List[PathLike],
    summary_path: Optional[PathLike] = None,
    ignore: Iterable[str] = (),
    name: str = "",
) -> AnalysisReport:
    """Verify several per-agent trace exports as one merged run.

    Each file is a multi-process agent's Lamport-stamped trace (see
    :class:`~repro.telemetry.trace.ClockedTraceWriter`); the streams are
    merged with :func:`~repro.telemetry.trace.merge_traces` into the
    same causally ordered sequence the federation server verifies live,
    so offline replay of the per-agent exports reproduces the server's
    report.  The merged run counts as complete only if every input
    trace is complete.  A single path degrades to :func:`verify_trace`.
    """
    if len(trace_paths) == 1:
        return verify_trace(
            trace_paths[0], summary_path=summary_path, ignore=ignore, name=name
        )
    sources = []
    complete = True
    for path in trace_paths:
        trace_file = Path(path)
        header, events = _read_trace_or_store(trace_file)
        complete = complete and header.complete
        sources.append((trace_file.parent.name or trace_file.stem, events))
    sources.sort(key=lambda pair: pair[0])
    merged = merge_traces(sources)
    verifier = TraceVerifier(ignore=ignore)
    for event in merged:
        verifier.feed(event)
    summary: Optional[Dict[str, Any]] = None
    if summary_path is not None:
        summary = load_summary(summary_path)
    return verifier.report(
        name or "merged", complete=complete, summary=summary
    )
