"""Temporal invariant verification over telemetry event streams (AG3xx).

The runtime counterpart of the static analyzers: AG301-AG305 check a
run's event stream against the safety invariants the architecture
promises (fencing safety, escrow ordering under happens-before,
exactly-once application, compensation completeness, accounting
consistency), and AG306/AG307 statically prove the fuzzy rule bases free
of scale-out/scale-in thrash cycles before any simulation runs.
"""

from repro.analysis.verify.checkers import (
    AccountingChecker,
    CompensationChecker,
    EscrowOrderChecker,
    ExactlyOnceChecker,
    FencingChecker,
    InvariantChecker,
    VerificationContext,
    default_checkers,
)
from repro.analysis.verify.engine import (
    TraceVerifier,
    load_summary,
    verify_trace,
    verify_traces,
)
from repro.analysis.verify.hb import VectorClock, vc_format, vc_join, vc_leq
from repro.analysis.verify.oscillation import analyze_oscillation

__all__ = [
    "AccountingChecker",
    "CompensationChecker",
    "EscrowOrderChecker",
    "ExactlyOnceChecker",
    "FencingChecker",
    "InvariantChecker",
    "TraceVerifier",
    "VectorClock",
    "VerificationContext",
    "analyze_oscillation",
    "default_checkers",
    "load_summary",
    "vc_format",
    "vc_join",
    "vc_leq",
    "verify_trace",
    "verify_traces",
]
