"""AG306/AG307: static controller-oscillation analysis.

An abstract-interpretation pass over the action-selection rule bases on
the discretized load space, run before any simulation.  The abstract
state is ``(L, n)`` — a service's load level and instance count.  The
controller's own scale-out transform conserves work: after adding an
instance the per-capacity load becomes ``L' = L * n / (n + 1)``.

* **AG306 (error)** — a *closed thrash cycle*: at some overload state
  ``(L, n)`` the ``serviceOverloaded`` base's winning action is
  ``scaleOut``, the transformed load ``L'`` lands strictly inside the
  idle trigger region, and at ``(L', n + 1)`` the ``serviceIdle`` base's
  winning action is ``scaleIn`` — which restores ``(L, n)`` exactly.
  The controller would oscillate forever on a constant workload.
* **AG307 (warning)** — a *limit-cycle-prone rule pair*: one rule of an
  oscillation couple (start/stop, scaleUp/scaleDown, scaleIn/scaleOut)
  fires strongly (>= the linter's contradiction threshold) at an
  overload state while its counterpart fires strongly at the transformed
  idle state.  Weaker than AG306 — the pair need not win the
  defuzzification — but it is the structural precondition for a limit
  cycle under drifting load.

The watch times and protection time damp real oscillation in *time*;
this pass flags rule bases for which damping is the only thing standing
between the controller and a thrash loop.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rulebase import ACTION_COUPLES, CONTRADICTION_THRESHOLD
from repro.analysis.sampling import GradeCache
from repro.config.model import Action, ControllerSettings, LandscapeSpec
from repro.core import variables
from repro.core.rulebases import default_action_rulebases
from repro.fuzzy.controller import FuzzyController
from repro.fuzzy.parser import parse_rules
from repro.fuzzy.rules import Rule, RuleBase
from repro.monitoring.lms import SituationKind

__all__ = ["analyze_oscillation"]

#: Instance counts the abstract state space covers (the paper's
#: landscape never exceeds a handful of instances per service).
_INSTANCE_COUNTS: Tuple[int, ...] = (1, 2, 3, 4, 5, 6)

#: Load samples across the overload trigger region.
_LOAD_SAMPLES = 16

#: Memory-load levels sampled alongside (kept off the extremes so the
#: memory terms neither dominate nor vanish).
_MEM_SAMPLES: Tuple[float, ...] = (0.2, 0.5, 0.8)

#: instancesOnServer levels sampled alongside.
_SERVER_COUNTS: Tuple[float, ...] = (1.0, 3.0)


def _controller() -> FuzzyController:
    output_names = [action.value for action in Action]
    return FuzzyController(
        variables.action_selection_inputs(),
        [variables.applicability_variable(name) for name in output_names],
        RuleBase("empty"),
    )


def _measurements(
    load: float, mem: float, index: float, instances: int, on_server: float
) -> Dict[str, float]:
    return {
        "cpuLoad": load,
        "memLoad": mem,
        "performanceIndex": index,
        "instanceLoad": load,
        "serviceLoad": load,
        "instancesOnServer": on_server,
        "instancesOfService": float(instances),
    }


def _winner(outputs: Mapping[str, float], min_applicability: float) -> Optional[str]:
    """The defuzzified winning action, or None below the applicability bar.

    Ties break toward the lexicographically smallest action name, the
    same order :class:`~repro.core.action_selection.ActionSelector` uses.
    """
    best_name: Optional[str] = None
    best_value = 0.0
    for name in sorted(outputs):
        value = outputs[name]
        if value > best_value:
            best_name, best_value = name, value
    if best_name is None or best_value < min_applicability:
        return None
    return best_name


def _abstract_states(
    settings: ControllerSettings, idle_hi: float
) -> Iterator[Tuple[int, float, float, float, float]]:
    """(n, L, L', mem, on_server) states whose scale-out lands idle.

    Only states where the transformed load falls strictly inside the
    idle trigger region are yielded — elsewhere scale-out cannot close a
    cycle, whatever the rules say.
    """
    lo = settings.overload_threshold
    for instances in _INSTANCE_COUNTS:
        for step in range(_LOAD_SAMPLES):
            load = lo + (1.0 - lo) * (step + 0.5) / _LOAD_SAMPLES
            transformed = load * instances / (instances + 1)
            if transformed >= idle_hi:
                continue
            for mem in _MEM_SAMPLES:
                for on_server in _SERVER_COUNTS:
                    yield instances, load, transformed, mem, on_server


def _find_thrash_witnesses(
    controller: FuzzyController,
    overload_base: RuleBase,
    idle_base: RuleBase,
    settings: ControllerSettings,
    min_index: float,
    idle_hi: float,
) -> List[Tuple[int, float, float, float, float]]:
    witnesses: List[Tuple[int, float, float, float, float]] = []
    for instances, load, transformed, mem, on_server in _abstract_states(
        settings, idle_hi
    ):
        overload_result = controller.evaluate(
            _measurements(load, mem, min_index, instances, on_server),
            overload_base,
        )
        if _winner(overload_result.outputs, settings.min_applicability) != (
            Action.SCALE_OUT.value
        ):
            continue
        idle_result = controller.evaluate(
            _measurements(transformed, mem, min_index, instances + 1, on_server),
            idle_base,
        )
        if _winner(idle_result.outputs, settings.min_applicability) == (
            Action.SCALE_IN.value
        ):
            witnesses.append((instances, load, transformed, mem, on_server))
    return witnesses


def _couple_partners() -> Dict[str, Set[str]]:
    partners: Dict[str, Set[str]] = {}
    for first, second in ACTION_COUPLES:
        partners.setdefault(first.value, set()).add(second.value)
        partners.setdefault(second.value, set()).add(first.value)
    return partners


def _find_limit_cycle_pairs(
    grades: GradeCache,
    overload_base: RuleBase,
    idle_base: RuleBase,
    settings: ControllerSettings,
    min_index: float,
    idle_hi: float,
) -> List[Tuple[Rule, Rule, Tuple[int, float, float, float, float]]]:
    partners = _couple_partners()
    pairs: List[Tuple[Rule, Rule, Tuple[int, float, float, float, float]]] = []
    for overload_rule in overload_base:
        coupled = partners.get(overload_rule.output_variable)
        if not coupled:
            continue
        for idle_rule in idle_base:
            if idle_rule.output_variable not in coupled:
                continue
            for state in _abstract_states(settings, idle_hi):
                instances, load, transformed, mem, on_server = state
                strength_out = overload_rule.firing_strength(
                    grades.grades(
                        _measurements(load, mem, min_index, instances, on_server)
                    )
                )
                if strength_out < CONTRADICTION_THRESHOLD:
                    continue
                strength_in = idle_rule.firing_strength(
                    grades.grades(
                        _measurements(
                            transformed, mem, min_index, instances + 1, on_server
                        )
                    )
                )
                if strength_in >= CONTRADICTION_THRESHOLD:
                    pairs.append((overload_rule, idle_rule, state))
                    break
    return pairs


def _analyze_pair(
    controller: FuzzyController,
    grades: GradeCache,
    overload_base: RuleBase,
    idle_base: RuleBase,
    settings: ControllerSettings,
    min_index: float,
    idle_hi: float,
    subject: str,
    service: Optional[str],
) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    witnesses = _find_thrash_witnesses(
        controller, overload_base, idle_base, settings, min_index, idle_hi
    )
    if witnesses:
        instances, load, transformed, mem, on_server = witnesses[0]
        diagnostics.append(
            Diagnostic(
                code="AG306",
                severity=Severity.ERROR,
                message=(
                    f"scale-out at load {load:.3f} with {instances} instance(s) "
                    f"drops the load to {transformed:.3f} — inside the idle "
                    f"region (< {idle_hi:.3f}) where scale-in wins: the "
                    f"controller thrashes on a constant workload "
                    f"({len(witnesses)} witness state(s))"
                ),
                subject=subject,
                service=service,
                trigger=SituationKind.SERVICE_OVERLOADED.value,
                details={
                    "witness": {
                        "load": round(load, 4),
                        "instances": instances,
                        "transformed_load": round(transformed, 4),
                        "memLoad": mem,
                        "instancesOnServer": on_server,
                    },
                    "idle_threshold": round(idle_hi, 4),
                    "overload_threshold": settings.overload_threshold,
                    "witness_count": len(witnesses),
                },
            )
        )
    for overload_rule, idle_rule, state in _find_limit_cycle_pairs(
        grades, overload_base, idle_base, settings, min_index, idle_hi
    ):
        instances, load, transformed, mem, on_server = state
        diagnostics.append(
            Diagnostic(
                code="AG307",
                severity=Severity.WARNING,
                message=(
                    f"rules {overload_rule.label or str(overload_rule)!r} "
                    f"({overload_rule.output_variable}) and "
                    f"{idle_rule.label or str(idle_rule)!r} "
                    f"({idle_rule.output_variable}) both fire >= "
                    f"{CONTRADICTION_THRESHOLD} across one scale-out step "
                    f"(load {load:.3f} -> {transformed:.3f}): "
                    f"limit-cycle-prone couple"
                ),
                subject=subject,
                service=service,
                trigger=SituationKind.SERVICE_OVERLOADED.value,
                rule_label=overload_rule.label,
                details={
                    "overload_rule": overload_rule.label,
                    "idle_rule": idle_rule.label,
                    "witness": {
                        "load": round(load, 4),
                        "instances": instances,
                        "transformed_load": round(transformed, 4),
                    },
                    "threshold": CONTRADICTION_THRESHOLD,
                },
            )
        )
    return diagnostics


def analyze_oscillation(landscape: LandscapeSpec) -> List[Diagnostic]:
    """Run the AG306/AG307 pass over a landscape's effective rule bases.

    Analyzes the built-in ``serviceOverloaded``/``serviceIdle`` pair
    once, then each service whose overrides touch either trigger (using
    the merged base the controller would actually evaluate).  Override
    texts that do not parse are skipped here — the rule-base linter
    already reports them as AG108.
    """
    settings = landscape.controller
    min_index = min(
        (server.performance_index for server in landscape.servers), default=1.0
    )
    idle_hi = (
        min(settings.idle_threshold(min_index), 1.0) if min_index > 0 else 1.0
    )
    controller = _controller()
    grades = GradeCache(variables.action_selection_inputs())
    defaults = default_action_rulebases()
    overload_default = defaults[SituationKind.SERVICE_OVERLOADED]
    idle_default = defaults[SituationKind.SERVICE_IDLE]
    diagnostics = _analyze_pair(
        controller,
        grades,
        overload_default,
        idle_default,
        settings,
        min_index,
        idle_hi,
        subject="rulebases serviceOverloaded/serviceIdle (defaults)",
        service=None,
    )
    relevant = (
        SituationKind.SERVICE_OVERLOADED.value,
        SituationKind.SERVICE_IDLE.value,
    )
    for service in landscape.services:
        merged: Dict[str, RuleBase] = {}
        for trigger_name, text in sorted(service.rule_overrides.items()):
            if trigger_name not in relevant:
                continue
            try:
                rules = list(
                    parse_rules(
                        text, label_prefix=f"{service.name}-{trigger_name}"
                    )
                )
            except Exception:
                continue  # the linter reports the parse failure (AG108)
            override = RuleBase(f"{service.name}-{trigger_name}", rules)
            default = defaults[SituationKind(trigger_name)]
            merged[trigger_name] = default.merged_with(override)
        if not merged:
            continue
        try:
            found = _analyze_pair(
                controller,
                grades,
                merged.get(relevant[0], overload_default),
                merged.get(relevant[1], idle_default),
                settings,
                min_index,
                idle_hi,
                subject=(
                    f"service {service.name!r} effective rulebases "
                    "serviceOverloaded/serviceIdle"
                ),
                service=service.name,
            )
        except (KeyError, ValueError):
            # the override parses but is not evaluable (unknown input
            # variable or term) — the linter reports that (AG101-AG104)
            continue
        diagnostics.extend(found)
    return diagnostics
