"""The AG301-AG305 temporal invariant checkers.

Each checker consumes the normalized event stream one
:class:`~repro.telemetry.trace.TraceEvent` at a time (``feed``) and
yields its findings once the stream ends (``finish``).  The same
algorithm runs in both front ends — live as a bus subscriber and
offline over an exported trace — which is what makes their findings
byte-identical.

The checkers only ever see the JSON-shaped record dicts produced by
:func:`repro.telemetry.records.record_to_dict`; the live front end
normalizes typed records through the same function before feeding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.verify.hb import VectorClock, vc_format, vc_join, vc_leq
from repro.telemetry.trace import TraceEvent

__all__ = [
    "VerificationContext",
    "InvariantChecker",
    "FencingChecker",
    "EscrowOrderChecker",
    "ExactlyOnceChecker",
    "CompensationChecker",
    "AccountingChecker",
    "default_checkers",
]

#: Statuses meaning the platform actually mutated state (fully or until
#: compensation kicked in).  ``"fenced"`` means the guard rejected the
#: action — the invariant holding, not breaking; ``"failed"`` means no
#: attempt ever touched the platform.
_APPLIED_STATUSES = ("ok", "compensated")

#: Supervision event kinds the run's fault-record merge turns into fault
#: records (mirrors ``SupervisionEventKind.creates_fault_record``).
_FAULT_CREATING_KINDS = ("controller-recovery", "leader-failover", "partition-healed")

#: Actions whose successful execution restores a service that lost an
#: instance (the AG304 self-heal criteria).
_RESTORING_ACTIONS = ("start", "scaleOut", "move")

#: Minutes of remaining trace an unhealed loss gets before AG304 fires;
#: a loss at the very end of the horizon is not a completeness bug.
COMPENSATION_GRACE_MINUTES = 15


@dataclass(frozen=True)
class VerificationContext:
    """End-of-stream facts the checkers need to finalize findings."""

    #: whether the stream holds *every* event of the run (trace header's
    #: ``complete`` flag; always True for the live sanitizer)
    complete: bool
    #: the run summary (``summary.json`` payload) for accounting
    #: reconciliation; ``None`` disables AG305
    summary: Optional[Mapping[str, Any]] = None
    #: simulated time of the last event in the stream
    end_time: int = 0


class InvariantChecker:
    """Base class: one temporal invariant over the event stream."""

    #: the diagnostic codes this checker can emit
    codes: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self._diagnostics: List[Diagnostic] = []

    def feed(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def finish(self, context: VerificationContext) -> List[Diagnostic]:
        """Findings, in stream order.  Call once, after the last feed."""
        return list(self._diagnostics)


class FencingChecker(InvariantChecker):
    """AG301: no action is ever *applied* with a stale fencing token.

    Per scope (control domain, or the global scope for single-domain
    runs) the checker tracks the highest token any applied event carried
    — the stream's view of the current leadership epoch.  An applied
    action (status ``ok``/``compensated``) or a non-abort escrow phase
    carrying a *smaller* token means a deposed leader's action made it
    past the guard.  ``fenced`` outcomes are the guard working and never
    fire this check.
    """

    codes = ("AG301",)

    def __init__(self) -> None:
        super().__init__()
        self._watermarks: Dict[str, int] = {}

    def _check(
        self,
        scope: str,
        token: int,
        applied: bool,
        event: TraceEvent,
        what: str,
        service: Optional[str],
    ) -> None:
        mark = self._watermarks.get(scope, 0)
        if token < mark:
            if applied:
                self._diagnostics.append(
                    Diagnostic(
                        code="AG301",
                        severity=Severity.ERROR,
                        message=(
                            f"{what} applied with stale fencing token {token} "
                            f"(scope {scope or 'global'!r} already saw token {mark})"
                        ),
                        subject=f"domain {scope}" if scope else "platform",
                        service=service,
                        details={
                            "seq": event.seq,
                            "time": event.record.get("time"),
                            "token": token,
                            "watermark": mark,
                        },
                    )
                )
        else:
            self._watermarks[scope] = token

    def feed(self, event: TraceEvent) -> None:
        record = event.record
        kind = record.get("type")
        token = record.get("fencing_token")
        if not isinstance(token, int):
            return
        if kind == "SupervisionEvent":
            if record.get("kind") == "leader-epoch":
                # the lease store granted a new epoch: every smaller token
                # is stale from this point in the stream onwards
                scope = str(record.get("domain") or "")
                mark = self._watermarks.get(scope, 0)
                self._watermarks[scope] = max(mark, token)
            return
        if kind == "ActionEvent":
            status = record.get("status")
            if status == "fenced":
                return  # the guard rejected it: the invariant held
            scope = str(record.get("domain") or "")
            self._check(
                scope,
                token,
                applied=status in _APPLIED_STATUSES,
                event=event,
                what=(
                    f"action {record.get('action')!r} "
                    f"({status}) on {record.get('service_name')!r}"
                ),
                service=record.get("service_name") or None,
            )
        elif kind == "EscrowEvent":
            phase = record.get("phase")
            if phase == "abort":
                return  # aborts are frequently the fence doing its job
            scope = str(record.get("source_domain") or "")
            self._check(
                scope,
                token,
                applied=True,
                event=event,
                what=(
                    f"escrow {record.get('escrow_id')} phase {phase} "
                    f"for {record.get('service_name')!r}"
                ),
                service=record.get("service_name") or None,
            )


@dataclass
class _EscrowState:
    """Per-escrow-id bookkeeping for the happens-before check."""

    phases: List[str] = field(default_factory=list)
    clocks: Dict[str, VectorClock] = field(default_factory=dict)
    last_clock: VectorClock = field(default_factory=dict)
    closed: bool = False
    attached: bool = False
    service_name: str = ""
    #: first observed phase was not ``prepare`` — on an *incomplete*
    #: trace the missing predecessors may simply have been evicted from
    #: the bounded ring, so their absence is not evidence of a race
    truncated_start: bool = False


class EscrowOrderChecker(InvariantChecker):
    """AG302: two-phase escrow ordering under the happens-before model.

    prepare must happen-before commit, commit must happen-before attach.
    Every domain-attributed event advances that domain's vector clock
    (program order); escrow phases additionally join with the previous
    phase's clock on the same escrow id — the only cross-domain
    synchronization edge.  The attach phase is attributed to the
    *target* domain, so its happens-after-commit relation exists purely
    through the escrow chain: an attach whose clock does not dominate
    the commit's clock is a real race, not a stream reordering.
    """

    codes = ("AG302",)

    def __init__(self) -> None:
        super().__init__()
        self._domain_clocks: Dict[str, VectorClock] = {}
        self._escrows: Dict[str, _EscrowState] = {}
        #: missing-predecessor findings on escrows whose start we never
        #: saw; only real when the trace is known complete
        self._suspect: List[Diagnostic] = []

    def _violation(
        self,
        event: TraceEvent,
        escrow_id: str,
        message: str,
        state: _EscrowState,
        missing_predecessor: bool = False,
    ) -> None:
        sink = (
            self._suspect
            if missing_predecessor and state.truncated_start
            else self._diagnostics
        )
        sink.append(
            Diagnostic(
                code="AG302",
                severity=Severity.ERROR,
                message=f"escrow {escrow_id}: {message}",
                subject=f"escrow {escrow_id}",
                service=state.service_name or None,
                details={
                    "seq": event.seq,
                    "time": event.record.get("time"),
                    "phases_seen": list(state.phases),
                    "clocks": {
                        phase: vc_format(clock)
                        for phase, clock in state.clocks.items()
                    },
                },
            )
        )

    def _advance(self, domain: str, join_with: Optional[VectorClock]) -> VectorClock:
        clock = dict(self._domain_clocks.get(domain, {}))
        if join_with:
            clock = vc_join(clock, join_with)
        clock[domain] = clock.get(domain, 0) + 1
        self._domain_clocks[domain] = clock
        return clock

    def feed(self, event: TraceEvent) -> None:
        record = event.record
        kind = record.get("type")
        if kind in ("ActionEvent", "SupervisionEvent", "FaultRecord"):
            self._advance(str(record.get("domain") or ""), None)
            return
        if kind != "EscrowEvent":
            return
        phase = str(record.get("phase"))
        escrow_id = str(record.get("escrow_id"))
        # attach happens in the importing domain; everything else in the
        # exporting one
        domain = str(
            (record.get("target_domain") if phase == "attach" else record.get("source_domain"))
            or ""
        )
        state = self._escrows.get(escrow_id)
        clock = self._advance(domain, state.last_clock if state else None)
        if state is None:
            state = self._escrows[escrow_id] = _EscrowState(
                service_name=str(record.get("service_name") or ""),
                truncated_start=phase != "prepare",
            )
        state.clocks[phase] = clock
        state.last_clock = clock
        if phase == "prepare":
            if state.phases:
                self._violation(
                    event, escrow_id,
                    f"duplicate prepare (after {', '.join(state.phases)})",
                    state,
                )
        elif phase == "commit":
            prepare_clock = state.clocks.get("prepare")
            if "prepare" not in state.phases:
                self._violation(
                    event, escrow_id, "commit without prepare", state,
                    missing_predecessor=True,
                )
            elif state.closed:
                self._violation(
                    event, escrow_id, "commit after the escrow was resolved", state
                )
            elif prepare_clock is not None and not vc_leq(prepare_clock, clock):
                self._violation(
                    event, escrow_id,
                    "commit does not happen-after its prepare "
                    f"({vc_format(prepare_clock)} vs {vc_format(clock)})",
                    state,
                )
        elif phase == "attach":
            commit_clock = state.clocks.get("commit")
            if state.closed and not state.attached:
                self._violation(event, escrow_id, "attach after abort", state)
            elif "commit" not in state.phases:
                self._violation(
                    event, escrow_id,
                    "attach without a commit in its causal past "
                    "(the commit barrier never ran)",
                    state,
                    missing_predecessor=True,
                )
            elif commit_clock is not None and not vc_leq(commit_clock, clock):
                self._violation(
                    event, escrow_id,
                    "attach does not happen-after the commit "
                    f"({vc_format(commit_clock)} vs {vc_format(clock)})",
                    state,
                )
            state.attached = True
            state.closed = True
        elif phase == "abort":
            if state.attached:
                self._violation(event, escrow_id, "abort after attach", state)
            state.closed = True
        state.phases.append(phase)

    def finish(self, context: VerificationContext) -> List[Diagnostic]:
        findings = list(self._diagnostics)
        if context.complete:
            findings.extend(self._suspect)
            for escrow_id in sorted(self._escrows):
                state = self._escrows[escrow_id]
                if not state.closed:
                    findings.append(
                        Diagnostic(
                            code="AG302",
                            severity=Severity.ERROR,
                            message=(
                                f"escrow {escrow_id}: left unresolved at end of a "
                                f"complete trace (phases: {', '.join(state.phases)})"
                            ),
                            subject=f"escrow {escrow_id}",
                            service=state.service_name or None,
                            details={"phases_seen": list(state.phases)},
                        )
                    )
        return findings


class ExactlyOnceChecker(InvariantChecker):
    """AG303: no successful action is applied twice.

    Two ``ok`` outcomes with the identical (time, action, service,
    instance, source, target) signature mean a journal replay or a
    failover double-apply: in one simulated minute an instance cannot
    legitimately undergo the same transition twice (the first transition
    changes the state the second would need).
    """

    codes = ("AG303",)

    def __init__(self) -> None:
        super().__init__()
        self._seen: Dict[Tuple[Any, ...], int] = {}

    def feed(self, event: TraceEvent) -> None:
        record = event.record
        if record.get("type") != "ActionEvent" or record.get("status") != "ok":
            return
        key = (
            record.get("time"),
            record.get("action"),
            record.get("service_name"),
            record.get("instance_id"),
            record.get("source_host"),
            record.get("target_host"),
        )
        first_seq = self._seen.get(key)
        if first_seq is None:
            self._seen[key] = event.seq
            return
        self._diagnostics.append(
            Diagnostic(
                code="AG303",
                severity=Severity.ERROR,
                message=(
                    f"action {record.get('action')!r} on "
                    f"{record.get('service_name')!r} at t={record.get('time')} "
                    f"applied twice (first seq {first_seq}, again seq {event.seq})"
                ),
                subject=f"instance {record.get('instance_id') or record.get('service_name')}",
                service=record.get("service_name") or None,
                details={
                    "first_seq": first_seq,
                    "duplicate_seq": event.seq,
                    "time": record.get("time"),
                    "action": record.get("action"),
                },
            )
        )


@dataclass
class _LostSource:
    time: int
    seq: int
    service_name: str
    instance_id: str


class CompensationChecker(InvariantChecker):
    """AG304: every aborted relocation restores or self-heals the source.

    A ``compensated`` outcome whose note records a *lost* source (the
    source host died while the instance was in flight) leaves the
    service one instance short.  Within a grace window the stream must
    show either a successful restoring action for that service (start /
    scale-out / move) or an administrator escalation; otherwise the
    self-healing promise was silently broken.
    """

    codes = ("AG304",)

    def __init__(self) -> None:
        super().__init__()
        self._losses: List[_LostSource] = []
        self._restored: Dict[str, List[int]] = {}
        self._escalations: List[int] = []

    def feed(self, event: TraceEvent) -> None:
        record = event.record
        kind = record.get("type")
        if kind == "ActionEvent":
            status = record.get("status")
            note = str(record.get("note") or "")
            service = str(record.get("service_name") or "")
            time = int(record.get("time") or 0)
            if status == "compensated" and "source lost" in note:
                self._losses.append(
                    _LostSource(
                        time=time,
                        seq=event.seq,
                        service_name=service,
                        instance_id=str(record.get("instance_id") or ""),
                    )
                )
            elif status == "ok" and record.get("action") in _RESTORING_ACTIONS:
                self._restored.setdefault(service, []).append(time)
        elif kind == "AlertEvent" and record.get("severity") == "escalation":
            self._escalations.append(int(record.get("time") or 0))

    def finish(self, context: VerificationContext) -> List[Diagnostic]:
        findings = list(self._diagnostics)
        for loss in self._losses:
            healed = any(
                time >= loss.time for time in self._restored.get(loss.service_name, [])
            )
            escalated = any(time >= loss.time for time in self._escalations)
            if healed or escalated:
                continue
            if context.end_time - loss.time <= COMPENSATION_GRACE_MINUTES:
                continue  # the run ended before self-healing had a chance
            findings.append(
                Diagnostic(
                    code="AG304",
                    severity=Severity.ERROR,
                    message=(
                        f"instance {loss.instance_id!r} of "
                        f"{loss.service_name!r} was lost during a relocation at "
                        f"t={loss.time} and never restored or escalated "
                        f"(trace ends at t={context.end_time})"
                    ),
                    subject=f"instance {loss.instance_id or loss.service_name}",
                    service=loss.service_name or None,
                    details={
                        "seq": loss.seq,
                        "time": loss.time,
                        "end_time": context.end_time,
                        "grace_minutes": COMPENSATION_GRACE_MINUTES,
                    },
                )
            )
        return findings


class AccountingChecker(InvariantChecker):
    """AG305: the run summary reconciles with the event stream.

    Counts every action outcome, fault record and escalation in the
    stream and compares against the corresponding ``summary.json`` keys.
    Only runs on *complete* traces with a summary at hand — a truncated
    ring export cannot be reconciled.  Summary keys that are absent are
    skipped, so older summaries stay verifiable.
    """

    codes = ("AG305",)

    def __init__(self) -> None:
        super().__init__()
        self._actions = 0
        self._by_status: Dict[str, int] = {}
        self._retried = 0
        self._faults = 0
        self._escalations = 0

    def feed(self, event: TraceEvent) -> None:
        record = event.record
        kind = record.get("type")
        if kind == "ActionEvent":
            self._actions += 1
            status = str(record.get("status"))
            self._by_status[status] = self._by_status.get(status, 0) + 1
            attempts = record.get("attempts")
            if status == "ok" and isinstance(attempts, int) and attempts > 1:
                self._retried += 1
        elif kind == "FaultRecord":
            self._faults += 1
        elif kind == "SupervisionEvent":
            if record.get("kind") in _FAULT_CREATING_KINDS:
                self._faults += 1
        elif kind == "AlertEvent":
            if record.get("severity") == "escalation":
                self._escalations += 1

    def _mismatch(self, key: str, stream: int, summary: Any) -> Diagnostic:
        return Diagnostic(
            code="AG305",
            severity=Severity.ERROR,
            message=(
                f"summary {key}={summary!r} but the event stream "
                f"accounts for {stream}"
            ),
            subject=f"summary.{key}",
            details={"key": key, "stream": stream, "summary": summary},
        )

    def finish(self, context: VerificationContext) -> List[Diagnostic]:
        findings = list(self._diagnostics)
        summary = context.summary
        if summary is None or not context.complete:
            return findings
        expectations = {
            "action_count": self._actions,
            "failed_action_count": self._by_status.get("failed", 0),
            "compensated_action_count": self._by_status.get("compensated", 0),
            "fenced_action_count": self._by_status.get("fenced", 0),
            "retried_action_count": self._retried,
            "injected_fault_count": self._faults,
            "escalation_count": self._escalations,
        }
        for key, stream_value in expectations.items():
            if key in summary and summary[key] != stream_value:
                findings.append(self._mismatch(key, stream_value, summary[key]))
        availability = summary.get("availability_by_service")
        if isinstance(availability, Mapping) and "total_down_minutes" in summary:
            down_sum = sum(
                int(entry.get("down_minutes", 0))
                for entry in availability.values()
                if isinstance(entry, Mapping)
            )
            if summary["total_down_minutes"] != down_sum:
                findings.append(
                    self._mismatch(
                        "total_down_minutes", down_sum, summary["total_down_minutes"]
                    )
                )
        return findings


def default_checkers() -> List[InvariantChecker]:
    """Fresh instances of every stream checker, in catalog order."""
    return [
        FencingChecker(),
        EscrowOrderChecker(),
        ExactlyOnceChecker(),
        CompensationChecker(),
        AccountingChecker(),
    ]
