"""Vector clocks: the verifier's happens-before model.

Clock components are control-domain names (the empty string stands for
the single-domain/global scope).  Each domain's events are totally
ordered by the bus's global sequence (program order within the domain);
cross-domain edges exist only where the system really synchronizes —
the phases of one escrowed relocation joining on its escrow id.  A
violation found under this model is therefore a genuine race, not an
artifact of how two domains' events happened to interleave in the
stream.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["VectorClock", "vc_join", "vc_leq", "vc_format"]

#: domain name -> number of events observed in that domain
VectorClock = Dict[str, int]


def vc_join(left: VectorClock, right: VectorClock) -> VectorClock:
    """Component-wise maximum: the merged knowledge of both clocks."""
    merged = dict(left)
    for key, value in right.items():
        if value > merged.get(key, 0):
            merged[key] = value
    return merged


def vc_leq(left: VectorClock, right: VectorClock) -> bool:
    """Whether ``left`` happened-before-or-equals ``right``."""
    return all(value <= right.get(key, 0) for key, value in left.items())


def vc_format(clock: VectorClock) -> str:
    """Compact rendering, e.g. ``{east:3, west:1}``."""
    inner = ", ".join(
        f"{key or 'global'}:{value}" for key, value in sorted(clock.items())
    )
    return "{" + inner + "}"
