"""Diagnostics framework for the AutoGlobe static analyzers.

Every finding is a :class:`Diagnostic` with a stable code (``AG1xx`` for
rule-base findings, ``AG2xx`` for landscape feasibility findings), a
severity, a human-readable message and enough source context (service,
trigger, rule label, line) to locate the offending declaration.  The
code is the contract: tests, suppressions (``lintIgnore`` in the XML)
and CI pipelines key on it, so codes are never renumbered or reused.

Two reporters are provided: a text renderer for humans and a JSON
renderer for CI integration (``autoglobe lint --format json``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "Diagnostic",
    "CODE_TABLE",
    "is_known_code",
    "render_text",
    "render_json",
    "exit_code",
    "EXIT_CLEAN",
    "EXIT_WARNINGS",
    "EXIT_ERRORS",
]

#: ``autoglobe lint`` exit codes, in increasing order of badness.
EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_ERRORS = 2


class Severity(enum.IntEnum):
    """Severity levels, ordered so that ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


#: Registry of all diagnostic codes with a one-line description.  The
#: default severity is informational; individual findings may up- or
#: downgrade (e.g. AG203 is a warning near the capacity limit and an
#: error beyond it).
CODE_TABLE: Dict[str, Tuple[Severity, str]] = {
    # -- rule-base linter (AG1xx) ------------------------------------------
    "AG101": (Severity.ERROR, "rule references an undeclared input variable"),
    "AG102": (Severity.ERROR, "rule references an undeclared term of an input variable"),
    "AG103": (Severity.ERROR, "rule asserts an undeclared output variable (unknown action)"),
    "AG104": (Severity.ERROR, "rule asserts an undeclared term of its output variable"),
    "AG105": (Severity.WARNING, "duplicate rule (identical antecedent and consequent)"),
    "AG106": (Severity.WARNING, "shadowed or conflicting rule (identical antecedent, same output)"),
    "AG107": (Severity.ERROR, "contradictory action couple reachable from overlapping antecedents"),
    "AG108": (Severity.ERROR, "rule text does not parse"),
    "AG109": (Severity.ERROR, "rule override names an unknown trigger"),
    "AG110": (Severity.WARNING, "coverage gap: no rule fires in part of the trigger region"),
    "AG111": (Severity.WARNING, "dead rule: weight below the controller's minApplicability"),
    # -- landscape feasibility analyzer (AG2xx) ----------------------------
    "AG201": (Severity.ERROR, "exclusive services cannot all be placed on distinct hosts"),
    "AG202": (Severity.ERROR, "minimum performance index unsatisfiable by any server"),
    "AG203": (Severity.WARNING, "aggregate peak CPU demand close to or beyond total capacity"),
    "AG204": (Severity.WARNING, "aggregate memory demand close to or beyond total memory"),
    "AG205": (Severity.WARNING, "minimum instances unenforceable: no start/scale-out allowed"),
    "AG206": (Severity.WARNING, "rule override asserts an action outside allowedActions"),
    "AG208": (Severity.ERROR, "workload references an unknown load profile"),
    # -- control-domain analyzer (AG21x) -----------------------------------
    "AG210": (Severity.ERROR, "control domain references an unknown server"),
    "AG211": (Severity.WARNING, "control domain administers no servers"),
    "AG212": (Severity.ERROR, "exclusive service's initial allocation spans foreign domains"),
    "AG213": (Severity.ERROR, "minimum instances unsatisfiable within any single control domain"),
    # -- temporal invariant verifier (AG3xx) -------------------------------
    "AG301": (Severity.ERROR, "fencing safety violated: action applied with a stale fencing token"),
    "AG302": (Severity.ERROR, "escrow ordering violated: phase without its happens-before predecessor"),
    "AG303": (Severity.ERROR, "exactly-once violated: identical action applied more than once"),
    "AG304": (Severity.ERROR, "compensation incomplete: lost relocation source never restored or escalated"),
    "AG305": (Severity.ERROR, "accounting inconsistent: summary does not reconcile with the event stream"),
    "AG306": (Severity.ERROR, "controller thrash: scale-out lands the load inside the idle trigger region"),
    "AG307": (Severity.WARNING, "limit-cycle-prone rule pair across overload and idle triggers"),
}

#: Codes that were assigned once and must never be reused for a new
#: meaning, mapped to the reason they are off limits.  They are *not* in
#: :data:`CODE_TABLE`: constructing a :class:`Diagnostic` with one fails,
#: exactly like a typo would.
RESERVED_CODES: Dict[str, str] = {
    "AG207": (
        "retired before release (was folded into AG206's allowedActions "
        "cross-check); renumbering or reusing it would silently change "
        "the meaning of existing lintIgnore suppressions"
    ),
}


def is_known_code(code: str) -> bool:
    return code in CODE_TABLE


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes
    ----------
    code:
        Stable identifier from :data:`CODE_TABLE` (e.g. ``"AG101"``).
    severity:
        ERROR findings make ``autoglobe lint`` exit 2, WARNING findings
        exit 1.
    message:
        Human-readable description of this specific finding.
    subject:
        What the finding is about, e.g. ``"rulebase serviceOverloaded"``
        or ``"service DB-ERP"``.
    service:
        Owning service, when the finding stems from a per-service
        declaration; per-service ``lintIgnore`` suppressions key on this.
    trigger:
        Trigger name for rule-base findings (``"serviceOverloaded"`` ...).
    rule_label:
        Label of the offending rule, when one rule is to blame.
    line:
        1-based line within the rule DSL text, when known.
    details:
        Machine-readable extras (witness points, demand figures, ...)
        surfaced verbatim in the JSON report.
    """

    code: str
    severity: Severity
    message: str
    subject: str = ""
    service: Optional[str] = None
    trigger: Optional[str] = None
    rule_label: Optional[str] = None
    line: Optional[int] = None
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not is_known_code(self.code):
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def location(self) -> str:
        """Compact source-location prefix, e.g. ``"DB-ERP/serviceOverloaded:3"``."""
        parts: List[str] = []
        if self.service:
            parts.append(self.service)
        if self.trigger:
            parts.append(self.trigger)
        location = "/".join(parts) if parts else (self.subject or "landscape")
        if self.line is not None:
            location += f":{self.line}"
        return location

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "subject": self.subject,
        }
        for key, value in (
            ("service", self.service),
            ("trigger", self.trigger),
            ("rule", self.rule_label),
            ("line", self.line),
        ):
            if value is not None:
                payload[key] = value
        if self.details:
            payload["details"] = dict(self.details)
        return payload

    def __str__(self) -> str:
        return f"{self.location()}: {self.severity.label}[{self.code}] {self.message}"


def _sort_key(diagnostic: Diagnostic) -> Tuple[int, str, str]:
    return (-int(diagnostic.severity), diagnostic.code, diagnostic.location())


def sorted_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Errors first, then by code and location, for stable reports."""
    return sorted(diagnostics, key=_sort_key)


def _counts(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    return {
        "errors": sum(1 for d in diagnostics if d.severity is Severity.ERROR),
        "warnings": sum(1 for d in diagnostics if d.severity is Severity.WARNING),
        "infos": sum(1 for d in diagnostics if d.severity is Severity.INFO),
    }


def exit_code(diagnostics: Iterable[Diagnostic], strict: bool = False) -> int:
    """0 for a clean report, 1 for warnings only, 2 for errors.

    With ``strict``, warnings are promoted to the error exit code.
    """
    worst = max((d.severity for d in diagnostics), default=None)
    if worst is None or worst is Severity.INFO:
        return EXIT_CLEAN
    if worst is Severity.ERROR:
        return EXIT_ERRORS
    return EXIT_ERRORS if strict else EXIT_WARNINGS


def render_text(diagnostics: Sequence[Diagnostic], landscape_name: str = "") -> str:
    """Human-readable report, one line per finding plus a summary line."""
    ordered = sorted_diagnostics(diagnostics)
    lines = [str(d) for d in ordered]
    counts = _counts(ordered)
    subject = f"landscape {landscape_name!r}: " if landscape_name else ""
    if not ordered:
        lines.append(f"{subject}clean (0 problems)")
    else:
        lines.append(
            f"{subject}{counts['errors']} error(s), {counts['warnings']} warning(s)"
        )
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], landscape_name: str = "") -> str:
    """Machine-readable report for CI: stable keys, sorted findings."""
    ordered = sorted_diagnostics(diagnostics)
    payload = {
        "landscape": landscape_name,
        "summary": _counts(ordered),
        "exit_code": exit_code(ordered),
        "diagnostics": [d.as_dict() for d in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
