"""Static analysis of fuzzy rule bases.

Checks every built-in rule base (action selection per trigger, server
selection per action) and every per-service override from the landscape
XML:

* **reference checks** (AG101-AG104): every ``variable IS term`` atom and
  every consequent must name declared linguistic variables and terms;
* **duplicate / shadowed rules** (AG105, AG106): identical antecedents
  asserting the same consequent are redundant, and identical antecedents
  asserting the same output with different weights (or different terms)
  shadow each other under max aggregation;
* **contradiction couples** (AG107): the paper's oscillation-prone
  action pairs — start/stop, scale-up/scale-down, scale-in/scale-out —
  must not both be strongly applicable from an overlapping antecedent
  region, or the controller ping-pongs between them;
* **coverage gaps** (AG110): within the trigger's firing region (e.g.
  CPU load above the overload threshold) some rule must clear the
  controller's ``minApplicability``, otherwise a confirmed situation is
  silently ignored;
* **dead rules** (AG111) whose weight can never clear ``minApplicability``;
* **cross checks** against the declarative constraints (AG206): an
  override that asserts an action outside the service's
  ``allowedActions`` can never be executed.

The dynamic checks (AG107, AG110) are sampled heuristics — see
:mod:`repro.analysis.sampling` — deterministic but not exhaustive; they
catch the gross misconfigurations the paper warns about, not arbitrarily
thin slivers of the input space.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.sampling import GradeCache, joint_samples
from repro.config.model import Action, LandscapeSpec, ServiceSpec
from repro.core import variables as core_variables
from repro.core.rulebases import default_action_rulebases, default_server_rulebases
from repro.fuzzy.expressions import And, Expression, Is, Not, Or, Somewhat, Very
from repro.fuzzy.parser import ParseError, parse_rules
from repro.fuzzy.rules import Rule, RuleBase
from repro.fuzzy.variables import LinguisticVariable
from repro.monitoring.lms import SituationKind

__all__ = [
    "ACTION_COUPLES",
    "CONTRADICTION_THRESHOLD",
    "RuleBaseLinter",
    "action_universe",
    "server_universe",
    "trigger_region",
    "analyze_rule_bases",
    "lint_override_text",
]

#: The oscillation-prone action couples called out in the paper: firing
#: both sides from the same situation undoes the controller's own work.
ACTION_COUPLES: Tuple[Tuple[Action, Action], ...] = (
    (Action.START, Action.STOP),
    (Action.SCALE_UP, Action.SCALE_DOWN),
    (Action.SCALE_IN, Action.SCALE_OUT),
)

#: Both couple actions reaching this firing strength at one sampled point
#: counts as a contradiction.  0.5 keeps weakly-overlapping built-in rules
#: (which the ranking disambiguates) out while catching rule pairs that
#: genuinely compete for the decision.
CONTRADICTION_THRESHOLD = 0.5


def action_universe() -> Tuple[Dict[str, LinguisticVariable], Dict[str, LinguisticVariable]]:
    """Declared inputs/outputs of the action-selection controller."""
    inputs = {v.name: v for v in core_variables.action_selection_inputs()}
    outputs = {
        action.value: core_variables.applicability_variable(action.value)
        for action in Action
    }
    return inputs, outputs


def server_universe() -> Tuple[Dict[str, LinguisticVariable], Dict[str, LinguisticVariable]]:
    """Declared inputs/outputs of the server-selection controller."""
    inputs = {v.name: v for v in core_variables.server_selection_inputs()}
    outputs = {"suitability": core_variables.applicability_variable("suitability")}
    return inputs, outputs


def _atoms(expression: Expression) -> List[Is]:
    """All ``variable IS term`` atoms of an antecedent, in evaluation order."""
    if isinstance(expression, Is):
        return [expression]
    if isinstance(expression, (And, Or)):
        atoms: List[Is] = []
        for operand in expression.operands:
            atoms.extend(_atoms(operand))
        return atoms
    if isinstance(expression, (Not, Very, Somewhat)):
        return _atoms(expression.operand)
    raise TypeError(f"unknown expression node {type(expression).__name__}")


def trigger_region(
    kind: SituationKind, landscape: LandscapeSpec
) -> Dict[str, Tuple[float, float]]:
    """The crisp input region in which a trigger's rule base runs.

    A ``serviceOverloaded`` base, for example, is only consulted once the
    watch-time mean CPU load exceeds the overload threshold — coverage
    below the threshold is irrelevant.  Idle triggers are confined to
    loads below the (performance-index-scaled) idle threshold of the
    weakest server.
    """
    settings = landscape.controller
    if kind in (SituationKind.SERVICE_OVERLOADED, SituationKind.SERVER_OVERLOADED):
        return {"cpuLoad": (settings.overload_threshold, 1.0)}
    min_index = min(
        (server.performance_index for server in landscape.servers), default=1.0
    )
    idle_hi = min(settings.idle_threshold(min_index), 1.0) if min_index > 0 else 1.0
    if kind is SituationKind.SERVICE_IDLE:
        return {"serviceLoad": (0.0, idle_hi)}
    if kind is SituationKind.SERVER_IDLE:
        return {"cpuLoad": (0.0, idle_hi)}
    return {}


class RuleBaseLinter:
    """Lints one family of rule bases against a declared universe."""

    def __init__(
        self,
        inputs: Mapping[str, LinguisticVariable],
        outputs: Mapping[str, LinguisticVariable],
        min_applicability: float = 0.10,
    ) -> None:
        self.inputs = dict(inputs)
        self.outputs = dict(outputs)
        self.min_applicability = min_applicability
        self._grades = GradeCache(self.inputs.values())

    # -- static checks -----------------------------------------------------

    def lint_static(
        self,
        rulebase: RuleBase,
        subject: str,
        service: Optional[str] = None,
        trigger: Optional[str] = None,
    ) -> List[Diagnostic]:
        """Reference, duplicate, shadowing and dead-rule checks."""
        diagnostics: List[Diagnostic] = []

        def emit(code: str, severity: Severity, message: str, rule: Optional[Rule]) -> None:
            diagnostics.append(
                Diagnostic(
                    code=code,
                    severity=severity,
                    message=message,
                    subject=subject,
                    service=service,
                    trigger=trigger,
                    rule_label=rule.label if rule is not None else None,
                )
            )

        for rule in rulebase:
            for atom in _atoms(rule.antecedent):
                variable = self.inputs.get(atom.variable)
                if variable is None:
                    emit(
                        "AG101",
                        Severity.ERROR,
                        f"undeclared input variable {atom.variable!r} "
                        f"(declared: {', '.join(sorted(self.inputs))})",
                        rule,
                    )
                elif atom.term not in variable:
                    emit(
                        "AG102",
                        Severity.ERROR,
                        f"variable {atom.variable!r} has no term {atom.term!r} "
                        f"(declared: {', '.join(variable.term_names)})",
                        rule,
                    )
            output = self.outputs.get(rule.output_variable)
            if output is None:
                emit(
                    "AG103",
                    Severity.ERROR,
                    f"undeclared output variable {rule.output_variable!r} "
                    f"(declared: {', '.join(sorted(self.outputs))})",
                    rule,
                )
            elif rule.output_term not in output:
                emit(
                    "AG104",
                    Severity.ERROR,
                    f"output variable {rule.output_variable!r} has no term "
                    f"{rule.output_term!r} (declared: {', '.join(output.term_names)})",
                    rule,
                )
            if rule.weight < self.min_applicability:
                emit(
                    "AG111",
                    Severity.WARNING,
                    f"weight {rule.weight:g} is below minApplicability "
                    f"{self.min_applicability:g}; the rule can never win a decision",
                    rule,
                )

        seen: Dict[Tuple[Expression, str, str, float], Rule] = {}
        by_antecedent_output: Dict[Tuple[Expression, str], Rule] = {}
        for rule in rulebase:
            exact_key = (rule.antecedent, rule.output_variable, rule.output_term, rule.weight)
            if exact_key in seen:
                emit(
                    "AG105",
                    Severity.WARNING,
                    f"duplicate of rule {seen[exact_key].label or str(seen[exact_key])!r}: "
                    f"identical antecedent and consequent",
                    rule,
                )
                continue
            seen[exact_key] = rule
            shadow_key = (rule.antecedent, rule.output_variable)
            earlier = by_antecedent_output.get(shadow_key)
            if earlier is not None:
                if earlier.output_term != rule.output_term:
                    detail = (
                        f"asserts term {rule.output_term!r} while "
                        f"{earlier.label or str(earlier)!r} asserts {earlier.output_term!r}"
                    )
                else:
                    detail = (
                        f"differs from {earlier.label or str(earlier)!r} only in weight "
                        f"({rule.weight:g} vs {earlier.weight:g}); "
                        f"max aggregation keeps only the stronger one"
                    )
                emit(
                    "AG106",
                    Severity.WARNING,
                    f"shadowed rule: identical antecedent for output "
                    f"{rule.output_variable!r}; {detail}",
                    rule,
                )
            else:
                by_antecedent_output[shadow_key] = rule
        return diagnostics

    # -- dynamic (sampled) checks ------------------------------------------

    def _resolvable(self, rule: Rule) -> bool:
        """Whether every atom of the rule references declared inputs."""
        try:
            atoms = _atoms(rule.antecedent)
        except TypeError:
            return False
        for atom in atoms:
            variable = self.inputs.get(atom.variable)
            if variable is None or atom.term not in variable:
                return False
        return True

    def _referenced(self, rules: Sequence[Rule]) -> List[LinguisticVariable]:
        names = sorted(set().union(*(r.variables() for r in rules)) if rules else set())
        return [self.inputs[name] for name in names]

    def find_contradictions(
        self,
        rulebase: RuleBase,
        subject: str,
        region: Optional[Mapping[str, Tuple[float, float]]] = None,
        service: Optional[str] = None,
        trigger: Optional[str] = None,
        threshold: float = CONTRADICTION_THRESHOLD,
    ) -> List[Diagnostic]:
        """AG107: oscillation couples reachable from one antecedent region."""
        diagnostics: List[Diagnostic] = []
        rules = [r for r in rulebase if self._resolvable(r)]
        by_action: Dict[str, List[Rule]] = {}
        for rule in rules:
            by_action.setdefault(rule.output_variable, []).append(rule)
        for first_action, second_action in ACTION_COUPLES:
            for first in by_action.get(first_action.value, ()):
                for second in by_action.get(second_action.value, ()):
                    witness = self._joint_overlap(first, second, region, threshold)
                    if witness is None:
                        continue
                    point, strength = witness
                    diagnostics.append(
                        Diagnostic(
                            code="AG107",
                            severity=Severity.ERROR,
                            message=(
                                f"rules {first.label or str(first)!r} and "
                                f"{second.label or str(second)!r} fire the "
                                f"oscillation couple {first_action.value}/"
                                f"{second_action.value} together with strength "
                                f"{strength:.2f} (threshold {threshold:g})"
                            ),
                            subject=subject,
                            service=service,
                            trigger=trigger,
                            rule_label=first.label,
                            details={
                                "couple": [first_action.value, second_action.value],
                                "strength": round(strength, 4),
                                "witness": {k: round(v, 4) for k, v in point.items()},
                            },
                        )
                    )
        return diagnostics

    def _joint_overlap(
        self,
        first: Rule,
        second: Rule,
        region: Optional[Mapping[str, Tuple[float, float]]],
        threshold: float,
    ) -> Optional[Tuple[Dict[str, float], float]]:
        """Best sampled point where both rules fire, if it clears the bar."""
        referenced = self._referenced([first, second])
        best_point: Optional[Dict[str, float]] = None
        best_strength = 0.0
        for sample in joint_samples(referenced, region):
            grades = self._grades.grades(sample)
            strength = min(first.firing_strength(grades), second.firing_strength(grades))
            if strength > best_strength:
                best_strength, best_point = strength, sample
        if best_point is not None and best_strength >= threshold:
            return best_point, best_strength
        return None

    def find_coverage_gaps(
        self,
        rulebase: RuleBase,
        subject: str,
        region: Optional[Mapping[str, Tuple[float, float]]] = None,
        service: Optional[str] = None,
        trigger: Optional[str] = None,
    ) -> List[Diagnostic]:
        """AG110: sampled points in the trigger region where nothing fires."""
        rules = [r for r in rulebase if self._resolvable(r)]
        if not rules:
            return [
                Diagnostic(
                    code="AG110",
                    severity=Severity.WARNING,
                    message="rule base has no evaluable rules; the trigger is a no-op",
                    subject=subject,
                    service=service,
                    trigger=trigger,
                )
            ]
        referenced = self._referenced(rules)
        worst_point: Optional[Dict[str, float]] = None
        worst_strength = float("inf")
        for sample in joint_samples(referenced, region):
            grades = self._grades.grades(sample)
            strength = max(rule.firing_strength(grades) for rule in rules)
            if strength < worst_strength:
                worst_strength, worst_point = strength, sample
        if worst_point is None or worst_strength >= self.min_applicability:
            return []
        return [
            Diagnostic(
                code="AG110",
                severity=Severity.WARNING,
                message=(
                    f"no rule reaches minApplicability "
                    f"{self.min_applicability:g} at sampled point "
                    f"{_format_point(worst_point)} (best strength "
                    f"{worst_strength:.3f}); the controller would silently "
                    f"ignore a confirmed situation there"
                ),
                subject=subject,
                service=service,
                trigger=trigger,
                details={
                    "witness": {k: round(v, 4) for k, v in worst_point.items()},
                    "best_strength": round(worst_strength, 4),
                    "min_applicability": self.min_applicability,
                },
            )
        ]


def _format_point(point: Mapping[str, float]) -> str:
    return "{" + ", ".join(f"{k}={v:g}" for k, v in sorted(point.items())) + "}"


def lint_override_text(
    service: ServiceSpec,
    trigger_name: str,
    text: str,
    linter: Optional[RuleBaseLinter] = None,
) -> Tuple[List[Diagnostic], Optional[RuleBase]]:
    """Parse + statically lint one per-service rule override.

    Returns the diagnostics plus the parsed rule base (``None`` when the
    trigger is unknown or the text does not parse).  Shared by the full
    analyzer and :func:`repro.config.validation.validate_landscape`.
    """
    diagnostics: List[Diagnostic] = []
    subject = f"service {service.name!r} rules for trigger {trigger_name!r}"
    try:
        SituationKind(trigger_name)
    except ValueError:
        diagnostics.append(
            Diagnostic(
                code="AG109",
                severity=Severity.ERROR,
                message=(
                    f"unknown trigger {trigger_name!r}; known triggers: "
                    f"{', '.join(k.value for k in SituationKind)}"
                ),
                subject=subject,
                service=service.name,
                trigger=trigger_name,
            )
        )
        return diagnostics, None
    try:
        rules = parse_rules(text, label_prefix=f"{service.name}-{trigger_name}")
    except ParseError as exc:
        diagnostics.append(
            Diagnostic(
                code="AG108",
                severity=Severity.ERROR,
                message=str(exc),
                subject=subject,
                service=service.name,
                trigger=trigger_name,
                line=getattr(exc, "line", None),
            )
        )
        return diagnostics, None
    override = RuleBase(f"{service.name}-{trigger_name}", list(rules))
    if linter is None:
        inputs, outputs = action_universe()
        linter = RuleBaseLinter(inputs, outputs)
    diagnostics.extend(
        linter.lint_static(
            override, subject, service=service.name, trigger=trigger_name
        )
    )
    allowed = service.constraints.allowed_actions
    if allowed:
        allowed_names = {action.value for action in allowed}
        for rule in override:
            if (
                rule.output_variable in {a.value for a in Action}
                and rule.output_variable not in allowed_names
            ):
                diagnostics.append(
                    Diagnostic(
                        code="AG206",
                        severity=Severity.WARNING,
                        message=(
                            f"rule asserts {rule.output_variable!r} but the "
                            f"service only allows "
                            f"{', '.join(sorted(allowed_names))}; the rule can "
                            f"never be executed"
                        ),
                        subject=subject,
                        service=service.name,
                        trigger=trigger_name,
                        rule_label=rule.label,
                    )
                )
    return diagnostics, override


def analyze_rule_bases(landscape: LandscapeSpec) -> List[Diagnostic]:
    """Lint every rule base relevant to a landscape.

    Covers the built-in action-selection bases (per trigger), the
    built-in server-selection bases (per action), and each service's
    overrides — the latter both standalone (reference checks) and merged
    with the defaults (contradictions, coverage), because that merged
    base is what the controller actually evaluates.
    """
    diagnostics: List[Diagnostic] = []
    inputs, outputs = action_universe()
    linter = RuleBaseLinter(
        inputs, outputs, min_applicability=landscape.controller.min_applicability
    )

    action_bases = default_action_rulebases()
    for kind, base in action_bases.items():
        subject = f"rulebase {kind.value} (defaults)"
        region = trigger_region(kind, landscape)
        diagnostics.extend(linter.lint_static(base, subject, trigger=kind.value))
        diagnostics.extend(
            linter.find_contradictions(base, subject, region, trigger=kind.value)
        )
        diagnostics.extend(
            linter.find_coverage_gaps(base, subject, region, trigger=kind.value)
        )

    server_inputs, server_outputs = server_universe()
    server_linter = RuleBaseLinter(
        server_inputs,
        server_outputs,
        min_applicability=landscape.controller.min_applicability,
    )
    for action, base in default_server_rulebases().items():
        subject = f"rulebase select-host-{action.value} (defaults)"
        diagnostics.extend(server_linter.lint_static(base, subject))

    for service in landscape.services:
        for trigger_name, text in sorted(service.rule_overrides.items()):
            override_diagnostics, override = lint_override_text(
                service, trigger_name, text, linter
            )
            diagnostics.extend(override_diagnostics)
            if override is None:
                continue
            kind = SituationKind(trigger_name)
            default = action_bases.get(kind)
            merged = (
                default.merged_with(override) if default is not None else override
            )
            subject = f"service {service.name!r} effective rulebase {trigger_name}"
            region = trigger_region(kind, landscape)
            diagnostics.extend(
                linter.find_contradictions(
                    merged, subject, region, service=service.name, trigger=trigger_name
                )
            )
            diagnostics.extend(
                linter.find_coverage_gaps(
                    merged, subject, region, service=service.name, trigger=trigger_name
                )
            )
    return diagnostics
