"""Orchestration of the AutoGlobe static analyzers.

:func:`analyze_landscape` runs the rule-base linter and the landscape
feasibility analyzer over one landscape and folds the findings into an
:class:`AnalysisReport`.  Per-service suppressions declared in the XML
(``<service lintIgnore="AG110 AG205">``) are honored here, so both the
CLI and the simulation runner see the same filtered view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    exit_code,
    render_json,
    render_text,
    sorted_diagnostics,
)
from repro.analysis.landscape import analyze_feasibility
from repro.analysis.rulebase import analyze_rule_bases
from repro.config.model import LandscapeSpec

__all__ = ["AnalysisReport", "LintError", "analyze_landscape"]


@dataclass(frozen=True)
class AnalysisReport:
    """All diagnostics for one landscape, pre-sorted (errors first)."""

    landscape_name: str
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def clean(self) -> bool:
        return not self.errors and not self.warnings

    def exit_code(self, strict: bool = False) -> int:
        """0 clean / 1 warnings / 2 errors (strict promotes warnings)."""
        return exit_code(self.diagnostics, strict=strict)

    def render(self, format: str = "text") -> str:
        if format == "json":
            return render_json(self.diagnostics, self.landscape_name)
        return render_text(self.diagnostics, self.landscape_name)

    def without_codes(self, codes: Iterable[str]) -> "AnalysisReport":
        """A copy with every diagnostic of the given codes dropped."""
        dropped = set(codes)
        return AnalysisReport(
            self.landscape_name,
            tuple(d for d in self.diagnostics if d.code not in dropped),
        )

    def raise_for_findings(self, strict: bool = False) -> None:
        """Raise :class:`LintError` on errors (and warnings when strict)."""
        offending = self.errors if not strict else self.errors + self.warnings
        if offending:
            raise LintError(self)


class LintError(Exception):
    """A landscape failed static analysis.

    Carries the full :class:`AnalysisReport`; the message is the text
    rendering, so the administrator sees every finding at once.
    """

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        super().__init__(report.render("text"))


def _suppressed(landscape: LandscapeSpec, diagnostic: Diagnostic) -> bool:
    if diagnostic.service is None:
        return False
    for service in landscape.services:
        if service.name == diagnostic.service:
            return diagnostic.code in service.lint_suppressions
    return False


def analyze_landscape(
    landscape: LandscapeSpec,
    include_rule_bases: bool = True,
    include_feasibility: bool = True,
    include_oscillation: bool = True,
    ignore: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Run all static analyzers over a landscape.

    Never raises on landscape *content* — every finding becomes a
    diagnostic.  ``ignore`` drops codes globally; per-service
    ``lintIgnore`` declarations from the XML are always honored.
    ``include_oscillation`` adds the AG306/AG307 controller-oscillation
    pass over the effective action rule bases.
    """
    # imported here: the oscillation pass builds a fuzzy controller, and
    # eagerly importing that stack would cost every lint-only caller
    from repro.analysis.verify.oscillation import analyze_oscillation

    diagnostics: List[Diagnostic] = []
    if include_rule_bases:
        diagnostics.extend(analyze_rule_bases(landscape))
    if include_feasibility:
        diagnostics.extend(analyze_feasibility(landscape))
    if include_oscillation:
        diagnostics.extend(analyze_oscillation(landscape))
    ignored: Set[str] = set(ignore or ())
    kept = [
        d
        for d in diagnostics
        if d.code not in ignored and not _suppressed(landscape, d)
    ]
    return AnalysisReport(landscape.name, tuple(sorted_diagnostics(kept)))
