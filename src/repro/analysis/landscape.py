"""Feasibility analysis of landscape descriptions.

Goes beyond :func:`repro.config.validation.validate_landscape` (which
checks the *initial* allocation): these checks ask whether the declared
constraint system can be satisfied — and kept satisfied by the
controller — at all:

* **AG201** exclusive services each need a dedicated host meeting their
  performance and memory requirements; a maximum bipartite matching
  decides whether enough distinct hosts exist (and warns when the
  exclusive placement necessarily crowds out non-exclusive services);
* **AG202** a minimum performance index no server reaches means the
  service can never run anywhere;
* **AG203** aggregate peak CPU demand (basic loads plus user demand at
  the profiles' peaks, including central-instance and database
  forwarding costs) against the total performance-index capacity;
* **AG204** aggregate memory demand of the minimum instance counts
  against total memory;
* **AG205** a positive ``minInstances`` with a non-empty allowed-action
  set lacking both ``start`` and ``scaleOut`` cannot be re-established
  by the controller once an instance stops;
* **AG208** workload profiles must be registered load curves;
* **AG210-AG213** declared control domains must reference known servers,
  administer at least one server, keep an exclusive service's initial
  allocation inside its home domain, and leave at least one domain whose
  eligible hosts can satisfy each service's ``minInstances`` (services
  are administered by exactly one domain, so capacity in *other* domains
  does not help).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.config.model import Action, LandscapeSpec, ServerSpec, ServiceSpec
from repro.sim.loadcurves import available_profiles, profile_value

__all__ = ["analyze_feasibility"]

#: Fraction of total memory above which AG204 warns even though the
#: demand still fits: no headroom is left for scale-out.
_MEMORY_HEADROOM = 0.90

#: Minutes between samples when locating a profile's daily peak.
_PEAK_SAMPLE_STEP = 15


def _eligible_hosts(service: ServiceSpec, servers: Sequence[ServerSpec]) -> List[str]:
    return [
        server.name
        for server in servers
        if server.performance_index >= service.constraints.min_performance_index
        and server.memory_mb >= service.workload.memory_per_instance_mb
    ]


def _max_matching(slots: List[List[str]], hosts: List[str]) -> Dict[int, str]:
    """Maximum bipartite matching of instance slots onto distinct hosts."""
    host_of_slot: Dict[int, str] = {}
    slot_of_host: Dict[str, int] = {}

    def augment(slot: int, visited: Set[str]) -> bool:
        for host in slots[slot]:
            if host in visited:
                continue
            visited.add(host)
            holder = slot_of_host.get(host)
            if holder is None or augment(holder, visited):
                slot_of_host[host] = slot
                host_of_slot[slot] = host
                return True
        return False

    for slot in range(len(slots)):
        augment(slot, set())
    return host_of_slot


def _profile_peak(name: str) -> float:
    return max(
        profile_value(name, minute) for minute in range(0, 24 * 60, _PEAK_SAMPLE_STEP)
    )


def _instances(landscape: LandscapeSpec, service: ServiceSpec) -> int:
    allocated = len(landscape.instances_of(service.name))
    return max(service.constraints.min_instances, allocated)


def _peak_demand(service: ServiceSpec, peak: float) -> float:
    """Peak CPU demand of one service in performance-index units."""
    workload = service.workload
    per_user = workload.load_per_user + workload.ci_cost_per_user + workload.db_cost_per_user
    return workload.users * per_user * peak


def analyze_feasibility(landscape: LandscapeSpec) -> List[Diagnostic]:
    """Run every feasibility check; returns diagnostics, raises nothing."""
    diagnostics: List[Diagnostic] = []
    servers = landscape.servers
    known_profiles = set(available_profiles())

    # -- AG208 + per-service profile peaks ---------------------------------
    peaks: Dict[str, float] = {}
    for service in landscape.services:
        profile = service.workload.profile
        if profile not in known_profiles:
            diagnostics.append(
                Diagnostic(
                    code="AG208",
                    severity=Severity.ERROR,
                    message=(
                        f"unknown load profile {profile!r}; registered profiles: "
                        f"{', '.join(sorted(known_profiles))}"
                    ),
                    subject=f"service {service.name!r}",
                    service=service.name,
                )
            )
            peaks[service.name] = 1.0
        else:
            peaks[service.name] = _profile_peak(profile)

    # -- AG202: minimum performance index unsatisfiable --------------------
    for service in landscape.services:
        if service.constraints.min_instances <= 0:
            continue
        if not _eligible_hosts(service, servers):
            diagnostics.append(
                Diagnostic(
                    code="AG202",
                    severity=Severity.ERROR,
                    message=(
                        f"no server satisfies performance index >= "
                        f"{service.constraints.min_performance_index:g} with "
                        f"{service.workload.memory_per_instance_mb} MB free "
                        f"memory; the service can never run"
                    ),
                    subject=f"service {service.name!r}",
                    service=service.name,
                )
            )

    # -- AG201: exclusive placement matching -------------------------------
    slot_services: List[ServiceSpec] = []
    slots: List[List[str]] = []
    for service in landscape.services:
        if not service.constraints.exclusive:
            continue
        eligible = _eligible_hosts(service, servers)
        for _ in range(max(service.constraints.min_instances, 0)):
            slot_services.append(service)
            slots.append(eligible)
    matching = _max_matching(slots, [s.name for s in servers])
    if len(matching) < len(slots):
        unplaced = sorted(
            {slot_services[i].name for i in range(len(slots)) if i not in matching}
        )
        diagnostics.append(
            Diagnostic(
                code="AG201",
                severity=Severity.ERROR,
                message=(
                    f"exclusive services need {len(slots)} dedicated host(s) but "
                    f"only {len(matching)} can be matched; unplaceable: "
                    f"{', '.join(unplaced)}"
                ),
                subject="exclusive services",
                details={"required": len(slots), "matched": len(matching)},
            )
        )
    else:
        consumed = set(matching.values())
        for service in landscape.services:
            if service.constraints.exclusive or service.constraints.min_instances <= 0:
                continue
            eligible = _eligible_hosts(service, servers)
            if eligible and all(host in consumed for host in eligible):
                diagnostics.append(
                    Diagnostic(
                        code="AG201",
                        severity=Severity.WARNING,
                        message=(
                            f"every eligible host "
                            f"({', '.join(sorted(eligible))}) is claimed by an "
                            f"exclusive service; placement may be impossible"
                        ),
                        subject=f"service {service.name!r}",
                        service=service.name,
                    )
                )

    # -- AG203: aggregate peak CPU demand vs capacity ----------------------
    supply = sum(server.performance_index for server in servers)
    basic = sum(
        service.workload.basic_load * _instances(landscape, service)
        for service in landscape.services
    )
    user_demand = sum(
        _peak_demand(service, peaks[service.name]) for service in landscape.services
    )
    demand = basic + user_demand
    threshold = landscape.controller.overload_threshold
    if demand > supply:
        diagnostics.append(
            Diagnostic(
                code="AG203",
                severity=Severity.ERROR,
                message=(
                    f"aggregate peak CPU demand {demand:.2f} exceeds total "
                    f"capacity {supply:.2f}; the landscape cannot sustain its "
                    f"declared peak workload"
                ),
                subject="capacity",
                details={"demand": round(demand, 3), "capacity": round(supply, 3)},
            )
        )
    elif supply > 0 and demand > threshold * supply:
        diagnostics.append(
            Diagnostic(
                code="AG203",
                severity=Severity.WARNING,
                message=(
                    f"aggregate peak CPU demand {demand:.2f} is "
                    f"{demand / supply:.0%} of total capacity {supply:.2f}, above "
                    f"the overload threshold {threshold:.0%}; expect sustained "
                    f"overload situations at peak hours"
                ),
                subject="capacity",
                details={"demand": round(demand, 3), "capacity": round(supply, 3)},
            )
        )

    # -- AG204: aggregate memory demand vs total memory --------------------
    total_memory = sum(server.memory_mb for server in servers)
    memory_demand = sum(
        service.workload.memory_per_instance_mb * _instances(landscape, service)
        for service in landscape.services
    )
    if memory_demand > total_memory:
        diagnostics.append(
            Diagnostic(
                code="AG204",
                severity=Severity.ERROR,
                message=(
                    f"minimum instance counts need {memory_demand} MB but the "
                    f"landscape only has {total_memory} MB of memory"
                ),
                subject="memory",
                details={"demand_mb": memory_demand, "total_mb": total_memory},
            )
        )
    elif total_memory > 0 and memory_demand > _MEMORY_HEADROOM * total_memory:
        diagnostics.append(
            Diagnostic(
                code="AG204",
                severity=Severity.WARNING,
                message=(
                    f"minimum instance counts use {memory_demand} MB of "
                    f"{total_memory} MB ({memory_demand / total_memory:.0%}); "
                    f"scale-out and move actions will struggle to find memory"
                ),
                subject="memory",
                details={"demand_mb": memory_demand, "total_mb": total_memory},
            )
        )

    # -- AG205: min-instances unenforceable under allowed actions ----------
    for service in landscape.services:
        constraints = service.constraints
        if not constraints.allowed_actions or constraints.min_instances <= 0:
            continue
        if (
            Action.START not in constraints.allowed_actions
            and Action.SCALE_OUT not in constraints.allowed_actions
        ):
            diagnostics.append(
                Diagnostic(
                    code="AG205",
                    severity=Severity.WARNING,
                    message=(
                        f"minInstances={constraints.min_instances} but neither "
                        f"{Action.START.value!r} nor {Action.SCALE_OUT.value!r} "
                        f"is allowed; the controller cannot restore the minimum "
                        f"after an instance stops"
                    ),
                    subject=f"service {service.name!r}",
                    service=service.name,
                )
            )

    # -- AG210-AG213: control-domain feasibility ---------------------------
    if landscape.domains:
        diagnostics.extend(_analyze_domains(landscape))
    return diagnostics


def _analyze_domains(landscape: LandscapeSpec) -> List[Diagnostic]:
    """Domain-specific checks, run only when domains are declared."""
    diagnostics: List[Diagnostic] = []
    server_names = {server.name for server in landscape.servers}
    servers_by_name = {server.name: server for server in landscape.servers}
    for domain in landscape.domains:
        for host_name in domain.servers:
            if host_name not in server_names:
                diagnostics.append(
                    Diagnostic(
                        code="AG210",
                        severity=Severity.ERROR,
                        message=(
                            f"control domain {domain.name!r} references "
                            f"unknown server {host_name!r}"
                        ),
                        subject=f"domain {domain.name!r}",
                        details={"server": host_name},
                    )
                )
        if not domain.servers:
            diagnostics.append(
                Diagnostic(
                    code="AG211",
                    severity=Severity.WARNING,
                    message=(
                        f"control domain {domain.name!r} administers no "
                        f"servers; its controller can never act"
                    ),
                    subject=f"domain {domain.name!r}",
                )
            )
    domain_of = {
        host: domain.name
        for domain in landscape.domains
        for host in domain.servers
    }

    # AG212: an exclusive service is administered by its home domain only;
    # initial instances in other domains escape its exclusivity enforcement
    for service in landscape.services:
        if not service.constraints.exclusive:
            continue
        homes = sorted(
            {
                domain_of[host]
                for host in landscape.instances_of(service.name)
                if host in domain_of
            }
        )
        if len(homes) > 1:
            diagnostics.append(
                Diagnostic(
                    code="AG212",
                    severity=Severity.ERROR,
                    message=(
                        f"exclusive service initially allocated across control "
                        f"domains {', '.join(homes)}; only its home domain "
                        f"({homes[0]}) would administer the foreign replicas"
                    ),
                    subject=f"service {service.name!r}",
                    service=service.name,
                    details={"domains": homes},
                )
            )

    # AG213: minInstances must fit inside at least one single domain
    for service in landscape.services:
        minimum = service.constraints.min_instances
        if minimum <= 0:
            continue
        eligible = set(_eligible_hosts(service, landscape.servers))
        if not eligible:
            continue  # AG202 already flags the hopeless case
        per_instance = max(service.workload.memory_per_instance_mb, 1)
        best = 0
        for domain in landscape.domains:
            slots = 0
            for host_name in domain.servers:
                if host_name not in eligible:
                    continue
                if service.constraints.exclusive:
                    slots += 1  # exclusive instances need distinct hosts
                else:
                    slots += servers_by_name[host_name].memory_mb // per_instance
            best = max(best, slots)
        if best < minimum:
            diagnostics.append(
                Diagnostic(
                    code="AG213",
                    severity=Severity.ERROR,
                    message=(
                        f"minInstances={minimum} cannot be satisfied within "
                        f"any single control domain (best domain fits {best} "
                        f"instance(s)); instances are administered by one "
                        f"domain and cannot be split across shards"
                    ),
                    subject=f"service {service.name!r}",
                    service=service.name,
                    details={"min_instances": minimum, "best_domain_slots": best},
                )
            )
    return diagnostics
