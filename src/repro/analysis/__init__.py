"""Static analysis ("``autoglobe lint``") for rule bases and landscapes.

AutoGlobe's safety story rests on its declarative configuration: the
fuzzy rule bases drive every controller decision, and the XML landscape
description constrains what the controller may do.  A contradictory or
unreachable rule silently degrades the controller; an infeasible
constraint set only surfaces at runtime as oscillation or a stuck
allocation.  This package catches those misconfigurations *before* a
simulation (or a production deployment) runs:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` model,
  stable ``AG1xx``/``AG2xx`` codes, text and JSON reporters;
* :mod:`repro.analysis.rulebase` — the rule-base linter (references,
  duplicates, oscillation couples, coverage gaps);
* :mod:`repro.analysis.landscape` — the feasibility analyzer
  (exclusive placement, performance indexes, capacity and memory
  headroom, unenforceable action sets);
* :mod:`repro.analysis.engine` — orchestration, suppressions and the
  :class:`AnalysisReport` consumed by the CLI and the simulation runner;
* :mod:`repro.analysis.verify` — the ``AG3xx`` temporal invariant
  verifier ("``autoglobe verify``"): fencing safety, escrow ordering
  under a happens-before model, exactly-once application, compensation
  completeness, accounting consistency, plus the static AG306/AG307
  controller-oscillation pass.
"""

from repro.analysis.diagnostics import (
    CODE_TABLE,
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    RESERVED_CODES,
    Diagnostic,
    Severity,
    render_json,
    render_text,
)
from repro.analysis.engine import AnalysisReport, LintError, analyze_landscape
from repro.analysis.landscape import analyze_feasibility
from repro.analysis.rulebase import (
    ACTION_COUPLES,
    RuleBaseLinter,
    analyze_rule_bases,
    lint_override_text,
)
from repro.analysis.verify import (
    TraceVerifier,
    analyze_oscillation,
    default_checkers,
    verify_trace,
    verify_traces,
)

__all__ = [
    "ACTION_COUPLES",
    "AnalysisReport",
    "CODE_TABLE",
    "Diagnostic",
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_WARNINGS",
    "LintError",
    "RESERVED_CODES",
    "RuleBaseLinter",
    "Severity",
    "TraceVerifier",
    "analyze_feasibility",
    "analyze_landscape",
    "analyze_oscillation",
    "analyze_rule_bases",
    "default_checkers",
    "lint_override_text",
    "render_json",
    "render_text",
    "verify_trace",
    "verify_traces",
]
