"""Input-space sampling for the rule-base analyzers.

The coverage and contradiction checks reason about *regions* of the
crisp input space.  Exhaustively enumerating a 7-dimensional space is
out of the question, so the analyzers sample it:

* per variable, a list of *critical points* — domain endpoints, term
  corners (trapezoid ``a``/``b``/``c``/``d``) and the midpoints between
  consecutive corners, where term crossings (the worst-covered spots of
  a partition) live;
* the full cartesian product of critical points when it is small enough,
  falling back to deterministic pseudo-random sampling otherwise.

Everything is deterministic: the fallback RNG is seeded from a constant,
so lint output is stable run over run.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.fuzzy.variables import LinguisticVariable

__all__ = [
    "critical_points",
    "joint_samples",
    "GradeCache",
]

#: Cap on the cartesian product of critical points; beyond this the
#: sampler switches to pseudo-random points.
_MAX_GRID = 20_000

#: Number of pseudo-random samples when the grid is too large.
_RANDOM_SAMPLES = 1_024

_SEED = 0xA610B  # stable across runs; "AutoGlobe" in leetspeak-ish hex


def _trapezoid_corners(membership: object) -> List[float]:
    corners = []
    for attribute in ("a", "b", "c", "d", "lo", "hi", "value"):
        value = getattr(membership, attribute, None)
        if isinstance(value, (int, float)):
            corners.append(float(value))
    return corners


def critical_points(
    variable: LinguisticVariable,
    restriction: Optional[Tuple[float, float]] = None,
) -> List[float]:
    """Distinct sample points of one variable, sorted ascending.

    ``restriction`` clamps sampling to a sub-range of the domain (used to
    confine coverage checks to a trigger's firing region).
    """
    lo, hi = variable.domain
    if restriction is not None:
        lo = max(lo, restriction[0])
        hi = min(hi, restriction[1])
    if lo > hi:
        return []
    raw: List[float] = [lo, hi]
    for term in variable.terms:
        support = term.membership.support
        raw.extend((support[0], support[1]))
        raw.extend(_trapezoid_corners(term.membership))
    in_range = sorted({p for p in raw if lo <= p <= hi})
    # midpoints catch term crossings, the worst-covered spots
    points = list(in_range)
    for left, right in zip(in_range, in_range[1:]):
        points.append((left + right) / 2.0)
    return sorted(set(points))


def joint_samples(
    variables: Sequence[LinguisticVariable],
    restrictions: Optional[Mapping[str, Tuple[float, float]]] = None,
    max_grid: int = _MAX_GRID,
    random_samples: int = _RANDOM_SAMPLES,
) -> Iterator[Dict[str, float]]:
    """Yield joint assignments (variable name -> crisp value).

    Uses the exact critical-point grid when its size stays below
    ``max_grid``; otherwise yields ``random_samples`` deterministic
    pseudo-random points (uniform per variable within its restricted
    range, occasionally snapped to a critical point so that plateau
    corners stay reachable in high dimensions).
    """
    restrictions = restrictions or {}
    per_variable: List[Tuple[str, List[float], Tuple[float, float]]] = []
    for variable in variables:
        restriction = restrictions.get(variable.name)
        points = critical_points(variable, restriction)
        if not points:
            return  # empty restricted region: nothing to sample
        lo, hi = variable.domain
        if restriction is not None:
            lo, hi = max(lo, restriction[0]), min(hi, restriction[1])
        per_variable.append((variable.name, points, (lo, hi)))

    grid_size = 1
    for _, points, _ in per_variable:
        grid_size *= len(points)
        if grid_size > max_grid:
            break
    if grid_size <= max_grid:
        names = [name for name, _, _ in per_variable]
        for combo in itertools.product(*(points for _, points, _ in per_variable)):
            yield dict(zip(names, combo))
        return

    rng = random.Random(_SEED)
    for _ in range(random_samples):
        sample: Dict[str, float] = {}
        for name, points, (lo, hi) in per_variable:
            if rng.random() < 0.5:
                sample[name] = rng.choice(points)
            else:
                sample[name] = rng.uniform(lo, hi)
        yield sample


class GradeCache:
    """Memoizes fuzzification of sampled points.

    The samplers revisit the same critical points across rules and rule
    pairs; caching the term grades keeps the linter fast enough to run
    on every simulation start.
    """

    def __init__(self, variables: Iterable[LinguisticVariable]) -> None:
        self._variables: Dict[str, LinguisticVariable] = {
            v.name: v for v in variables
        }
        self._cache: Dict[Tuple[str, float], Mapping[str, float]] = {}

    def variable(self, name: str) -> Optional[LinguisticVariable]:
        return self._variables.get(name)

    def grades(self, sample: Mapping[str, float]) -> Dict[str, Mapping[str, float]]:
        """Fuzzified measurements for one joint sample."""
        result: Dict[str, Mapping[str, float]] = {}
        for name, value in sample.items():
            key = (name, value)
            grades = self._cache.get(key)
            if grades is None:
                grades = self._variables[name].fuzzify(value)
                self._cache[key] = grades
            result[name] = grades
        return result
