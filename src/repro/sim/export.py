"""Export simulation results for external analysis and plotting.

Three formats cover what the paper's figures need:

* a JSON summary (scenario, horizon, overload accounting, per-action
  counts) — machine-readable EXPERIMENTS data;
* a CSV of per-host load series (one row per minute, one column per
  host, plus the system average) — Figures 12-14;
* a CSV of the controller action log — the annotations of Figures 16/17;
* a CSV of per-service availability (down-minutes, episode count, MTTR)
  — the chaos scenario's robustness comparison;
* a JSONL dump of the telemetry bus's retained history (one envelope per
  line) — the run's observable event stream, greppable and ``jq``-able.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.sim.clock import format_minute
from repro.sim.results import SimulationResult
from repro.telemetry.bus import EventBus
from repro.telemetry.records import record_to_dict
from repro.telemetry.trace import trace_event_line, trace_header_line

__all__ = [
    "summary_json_payload",
    "export_summary_json",
    "export_host_series_csv",
    "export_actions_csv",
    "export_availability_csv",
    "export_telemetry_jsonl",
    "export_all",
]

PathLike = Union[str, Path]


def summary_json_payload(result: SimulationResult) -> dict:
    """The JSON-able run summary dict (shared with the summary export).

    Multi-process agents ship this payload over the wire at deregister
    time; the federation server merges the per-domain payloads into one
    run summary, so the key set here is the de-facto summary schema.
    """
    return {
        "scenario": result.scenario_name,
        "user_factor": result.user_factor,
        "horizon_minutes": result.horizon,
        "start_minute": result.start_minute,
        "overload_minutes_per_day": result.overload_minutes_per_day,
        "total_overload_minutes": result.total_overload_minutes,
        "longest_episode_minutes": result.longest_episode,
        "episode_count": len(result.episodes),
        "action_count": len(result.actions),
        "action_counts": {
            action.value: count for action, count in result.action_counts().items()
        },
        "escalation_count": result.escalation_count,
        "overload_minutes_by_host": result.overload_minutes_by_host,
        "final_instance_counts": result.final_instance_counts,
        "violates_default_sla": result.violates(),
        "mean_availability": result.mean_availability,
        "mttr_minutes": result.mttr_minutes,
        "total_down_minutes": result.total_down_minutes,
        "availability_by_service": {
            name: {
                "availability": record.availability,
                "down_minutes": record.down_minutes,
                "episode_count": record.episode_count,
                "mttr_minutes": record.mttr_minutes,
            }
            for name, record in result.availability.items()
        },
        "host_down_minutes": result.host_down_minutes,
        "downtime_episode_count": len(result.downtime_episodes),
        "injected_fault_count": len(result.fault_records),
        "retried_action_count": result.retried_action_count,
        "compensated_action_count": result.compensated_action_count,
        "failed_action_count": result.failed_action_count,
        "fenced_action_count": result.fenced_action_count,
        "controller_down_minutes": result.controller_down_minutes,
        "controller_crash_count": result.controller_fault_count("controller-crash"),
        "leader_partition_count": result.controller_fault_count("leader-partition"),
        "expired_approval_count": result.expired_approval_count,
        "pending_approval_count": result.pending_approval_count,
        "expired_approvals_by_service": dict(
            sorted(result.expired_approvals_by_service.items())
        ),
    }


def export_summary_json(result: SimulationResult, path: PathLike) -> None:
    """Write a machine-readable run summary."""
    payload = summary_json_payload(result)
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def export_host_series_csv(result: SimulationResult, path: PathLike) -> None:
    """Write the per-minute host load series (Figures 12-14's data)."""
    if not result.host_series:
        raise ValueError("host series were not collected for this run")
    average = result.average_load_series()
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["minute", "time", *result.host_names, "average"])
        for index in range(result.horizon):
            minute = result.start_minute + index
            writer.writerow(
                [
                    minute,
                    format_minute(minute),
                    *(
                        f"{result.host_series[name][index]:.4f}"
                        for name in result.host_names
                    ),
                    f"{average[index]:.4f}",
                ]
            )


def export_actions_csv(result: SimulationResult, path: PathLike) -> None:
    """Write the controller action log (Figures 16/17's annotations)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "minute",
                "time",
                "action",
                "service",
                "instance",
                "source_host",
                "target_host",
                "applicability",
                "status",
                "attempts",
                "duration",
                "note",
            ]
        )
        for action in result.actions:
            writer.writerow(
                [
                    action.time,
                    format_minute(action.time),
                    action.action.value,
                    action.service_name,
                    action.instance_id or "",
                    action.source_host or "",
                    action.target_host or "",
                    "" if action.applicability is None else f"{action.applicability:.3f}",
                    action.status,
                    action.attempts,
                    f"{action.duration:.2f}",
                    action.note,
                ]
            )


def export_availability_csv(result: SimulationResult, path: PathLike) -> None:
    """Write per-service availability accounting (the chaos metrics)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "service",
                "availability",
                "observed_minutes",
                "down_minutes",
                "episode_count",
                "mttr_minutes",
            ]
        )
        for name in sorted(result.availability):
            record = result.availability[name]
            writer.writerow(
                [
                    name,
                    f"{record.availability:.6f}",
                    record.observed_minutes,
                    record.down_minutes,
                    record.episode_count,
                    f"{record.mttr_minutes:.2f}",
                ]
            )


def export_telemetry_jsonl(bus: EventBus, path: PathLike, limit: int = 0) -> int:
    """Dump the bus's retained envelopes as JSON lines; returns the count.

    The first line is a schema header (``schema_version``, ``complete``);
    each following line is ``{"seq": ..., "topic": ..., "record": {...}}``
    in global sequence order.  Only what the bounded per-topic rings
    still hold is exported (the full action history additionally lives
    in the audit log / actions CSV); the header's ``complete`` flag is
    set only when the rings still held every envelope ever published.
    ``limit`` caps the number of newest envelopes; 0 means everything
    retained.
    """
    envelopes = bus.tail(limit=limit if limit > 0 else bus.last_seq or 1)
    complete = len(envelopes) == bus.last_seq
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_header_line(complete))
        handle.write("\n")
        for envelope in envelopes:
            handle.write(
                trace_event_line(
                    envelope.seq, envelope.topic, record_to_dict(envelope.record)
                )
            )
            handle.write("\n")
    return len(envelopes)


def export_all(result: SimulationResult, directory: PathLike) -> Path:
    """Write summary + actions (+ host series when collected) to a directory.

    Returns the directory path.  File names are derived from the scenario
    and user factor, e.g. ``full-mobility_115/summary.json``.
    """
    base = Path(directory) / (
        f"{result.scenario_name}_{round(result.user_factor * 100)}"
    )
    base.mkdir(parents=True, exist_ok=True)
    export_summary_json(result, base / "summary.json")
    export_actions_csv(result, base / "actions.csv")
    export_availability_csv(result, base / "availability.csv")
    if result.host_series:
        export_host_series_csv(result, base / "host_loads.csv")
    return base
