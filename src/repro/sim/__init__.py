"""Simulation environment modelling a realistic SAP installation (Section 5).

The simulated installation comprises the ERP, CRM and BW subsystems with
their application servers, central instances and databases on the
Figure 11 hardware.  A varying number of users generates requests whose
load follows predetermined daily patterns (Figure 10); the course of a
request is modelled by forwarding demand from the application server to
the subsystem's central instance (lock management) and database.

Scenarios: ``STATIC`` (no controller actions), ``CONSTRAINED_MOBILITY``
(scale-in/scale-out for application servers, sticky users with slow
fluctuation) and ``FULL_MOBILITY`` (relocation actions everywhere,
dynamic user redistribution) — Tables 5 and 6.
"""

from repro.sim.capacity import CapacityResult, capacity_search
from repro.sim.clock import SimClock, format_minute
from repro.sim.export import export_all
from repro.sim.faults import FaultInjector, FaultRecord
from repro.sim.loadcurves import available_profiles, profile_value
from repro.sim.results import (
    DowntimeEpisode,
    OverloadEpisode,
    ServiceAvailability,
    SimulationResult,
    SlaPolicy,
)
from repro.sim.runner import SimulationRunner
from repro.sim.scenarios import ChaosProfile, Scenario, apply_scenario, default_chaos
from repro.sim.workload import WorkloadModel

__all__ = [
    "CapacityResult",
    "ChaosProfile",
    "DowntimeEpisode",
    "FaultInjector",
    "FaultRecord",
    "OverloadEpisode",
    "Scenario",
    "ServiceAvailability",
    "SimClock",
    "SimulationResult",
    "SimulationRunner",
    "SlaPolicy",
    "WorkloadModel",
    "apply_scenario",
    "available_profiles",
    "capacity_search",
    "default_chaos",
    "export_all",
    "format_minute",
    "profile_value",
]
