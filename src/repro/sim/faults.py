"""Failure injection.

"Failure situations like a program crash are remedied for example with
a restart" (Section 2) — this module generates those situations so the
self-healing path can be exercised under realistic churn:

* **instance crashes**: the instance dies instantly; surviving peers
  absorb its users, and the controller restarts it via
  :meth:`~repro.core.autoglobe.AutoGlobeController.report_failure`;
* **instance hangs**: the instance keeps holding its resources but stops
  responding; the heartbeat detector notices after its miss threshold
  and the controller kills and restarts it;
* **host crashes**: every resident instance dies and the host's capacity
  leaves the landscape until it reboots (a sampled number of minutes
  later) — the controller must restart the victims *elsewhere*;
* **monitoring outages**: a host keeps serving but its load reports stop
  arriving for a sampled number of minutes; the controller's staleness
  and coverage guards must ride out the gap instead of mistaking it for
  zero load.

Fault times are drawn per subject-minute with fixed probabilities
(a geometric approximation of exponential MTBF), deterministic under a
seed and independent of the workload model's RNG.  Subjects are rolled
in sorted order (hosts by name, instances by id), so fault sequences do
not depend on platform iteration order.

With the controller disabled (the chaos baseline) nothing heals: crashed
instances stay dead, which is exactly the availability gap the chaos
scenario measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.autoglobe import AutoGlobeController

# FaultRecord now lives with the other telemetry records; re-exported
# here so historic importers (`from repro.sim.faults import FaultRecord`)
# keep working.
from repro.telemetry.records import FaultRecord

__all__ = ["FaultRecord", "FaultInjector"]


@dataclass
class FaultInjector:
    """Randomly injures service instances, hosts and the monitoring plane.

    Parameters
    ----------
    controller:
        The controller whose platform is attacked; its failure detector
        is used for hangs and its self-healing path for crashes.  When
        the controller is disabled, faults are still injected but
        nothing heals — the measured baseline of the chaos scenario.
    crash_probability / hang_probability:
        Per instance-minute probabilities.  The defaults correspond to a
        mean time between failures of roughly two weeks per instance —
        rare, as in a real computing center.
    host_crash_probability:
        Per host-minute probability of a full host crash; off by
        default.  A crashed host reboots after a duration drawn
        uniformly from ``host_reboot_minutes``.
    monitor_outage_probability:
        Per host-minute probability that the host's load reports stop
        arriving for a duration drawn uniformly from
        ``monitor_outage_minutes``; off by default.
    seed:
        RNG seed; injections are deterministic given a seed.
    """

    controller: AutoGlobeController
    crash_probability: float = 1.0 / (14 * 24 * 60)
    hang_probability: float = 1.0 / (14 * 24 * 60)
    host_crash_probability: float = 0.0
    host_reboot_minutes: Tuple[int, int] = (30, 90)
    monitor_outage_probability: float = 0.0
    monitor_outage_minutes: Tuple[int, int] = (3, 15)
    #: per-minute probability the controller process dies (restarting
    #: after a duration drawn from ``controller_restart_minutes``) or its
    #: leader gets partitioned from the lease store for a duration drawn
    #: from ``leader_partition_minutes``; both require the controller to
    #: be a :class:`~repro.core.failover.ControllerSupervisor`
    controller_crash_probability: float = 0.0
    controller_restart_minutes: Tuple[int, int] = (5, 15)
    leader_partition_probability: float = 0.0
    leader_partition_minutes: Tuple[int, int] = (10, 20)
    seed: int = 99
    faults: List[FaultRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in (
            "crash_probability",
            "hang_probability",
            "host_crash_probability",
            "monitor_outage_probability",
            "controller_crash_probability",
            "leader_partition_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in (
            "host_reboot_minutes",
            "monitor_outage_minutes",
            "controller_restart_minutes",
            "leader_partition_minutes",
        ):
            low, high = getattr(self, name)
            if low < 1 or high < low:
                raise ValueError(f"{name} must be a (low, high) range with 1 <= low <= high")
        if (
            self.controller_crash_probability > 0.0
            or self.leader_partition_probability > 0.0
        ) and not hasattr(self.controller, "crash_active"):
            raise ValueError(
                "controller faults require a ControllerSupervisor "
                "(plain controllers cannot crash and recover)"
            )
        self._rng = np.random.default_rng(self.seed)
        #: host name -> minute its reboot completes
        self._reboot_at: Dict[str, int] = {}

    def _domain_of(self, host_name: str) -> str:
        """Control domain of a host for fault-record stamping.

        Empty in single-domain deployments so existing runs stay
        byte-identical; in federated ones the record names the shard the
        fault hit.
        """
        landscape = self.controller.platform.landscape
        if not host_name or not getattr(landscape, "is_federated", False):
            return ""
        try:
            return landscape.domain_of(host_name)
        except KeyError:
            return ""

    def _record_fault(
        self, record: FaultRecord, injected: List[FaultRecord]
    ) -> None:
        """Book one fault and publish it on the ``faults`` topic."""
        self.faults.append(record)
        injected.append(record)
        self.controller.platform.bus.publish(record)

    # -- the per-minute injection pass ---------------------------------------------------

    def tick(self, now: int) -> List[FaultRecord]:
        """Possibly injure subjects this minute; returns the new faults.

        Crashes are reported to the controller immediately (the platform
        notices a dead process right away); hangs only suppress
        heartbeats — detection is the heartbeat detector's job.  Host
        recoveries happen before new faults so a rebooted host can be
        injured again the same minute it returns.
        """
        injected: List[FaultRecord] = []
        if (
            self.controller_crash_probability > 0.0
            or self.leader_partition_probability > 0.0
        ):
            # rolled first: whether the controller is alive this minute
            # shapes how every other fault below plays out
            self._injure_controller(now, injected)
        self._recover_hosts(now, injected)
        if self.host_crash_probability > 0.0:
            self._crash_hosts(now, injected)
        if self.monitor_outage_probability > 0.0:
            self._degrade_monitoring(now, injected)
        self._injure_instances(now, injected)
        return injected

    def _injure_controller(self, now: int, injected: List[FaultRecord]) -> None:
        supervisor = self.controller
        if supervisor.fault_in_progress(now):
            return  # one controller fault at a time
        if self.controller_crash_probability > 0.0 and (
            float(self._rng.random()) < self.controller_crash_probability
        ):
            low, high = self.controller_restart_minutes
            minutes = int(self._rng.integers(low, high + 1))
            # a federated plane routes the crash to one shard and returns
            # its name; a plain supervisor returns None
            domain = supervisor.crash_active(now, minutes) or ""
            self._record_fault(
                FaultRecord(now, "", "", "", "controller-crash", domain),
                injected,
            )
            return
        if self.leader_partition_probability > 0.0 and (
            float(self._rng.random()) < self.leader_partition_probability
        ):
            low, high = self.leader_partition_minutes
            minutes = int(self._rng.integers(low, high + 1))
            domain = supervisor.partition_active(now, minutes) or ""
            self._record_fault(
                FaultRecord(now, "", "", "", "leader-partition", domain),
                injected,
            )

    def _recover_hosts(self, now: int, injected: List[FaultRecord]) -> None:
        platform = self.controller.platform
        for host_name in sorted(self._reboot_at):
            if self._reboot_at[host_name] <= now:
                del self._reboot_at[host_name]
                platform.recover_host(host_name)
                self._record_fault(
                    FaultRecord(
                        now, "", "", host_name, "host-recovery",
                        self._domain_of(host_name),
                    ),
                    injected,
                )

    def _crash_hosts(self, now: int, injected: List[FaultRecord]) -> None:
        platform = self.controller.platform
        for host_name in sorted(platform.hosts):
            if not platform.hosts[host_name].up:
                continue
            if float(self._rng.random()) >= self.host_crash_probability:
                continue
            victims = platform.crash_host(host_name)
            low, high = self.host_reboot_minutes
            self._reboot_at[host_name] = now + int(
                self._rng.integers(low, high + 1)
            )
            self._record_fault(
                FaultRecord(
                    now, "", "", host_name, "host-crash",
                    self._domain_of(host_name),
                ),
                injected,
            )
            for victim in victims:
                # the heartbeat detector must not later report an
                # instance the crash already swept away
                self.controller.failure_detector.forget(victim.instance_id)
                if self.controller.enabled:
                    self.controller.report_failure(victim.instance_id, now)

    def _degrade_monitoring(self, now: int, injected: List[FaultRecord]) -> None:
        platform = self.controller.platform
        for host_name in sorted(platform.hosts):
            if not platform.hosts[host_name].up:
                continue  # a down host has no reports to lose
            if float(self._rng.random()) >= self.monitor_outage_probability:
                continue
            low, high = self.monitor_outage_minutes
            until = now + int(self._rng.integers(low, high + 1)) - 1
            self.controller.degrade_monitoring(host_name, until)
            self._record_fault(
                FaultRecord(
                    now, "", "", host_name, "monitor-outage",
                    self._domain_of(host_name),
                ),
                injected,
            )

    def _injure_instances(self, now: int, injected: List[FaultRecord]) -> None:
        platform = self.controller.platform
        # sorted by instance id: fault sequences are deterministic under a
        # seed regardless of platform iteration order
        instances = sorted(
            platform.all_instances(), key=lambda i: i.instance_id
        )
        for instance in instances:
            if instance.instance_id in self.controller.failure_detector.suppressed:
                continue
            roll = float(self._rng.random())
            if roll < self.crash_probability:
                self._record_fault(
                    FaultRecord(
                        now, instance.instance_id, instance.service_name,
                        instance.host_name, "crash",
                        self._domain_of(instance.host_name),
                    ),
                    injected,
                )
                if self.controller.enabled:
                    self.controller.report_failure(instance.instance_id, now)
                else:
                    platform.crash_instance(instance.instance_id)
            elif roll < self.crash_probability + self.hang_probability:
                self._record_fault(
                    FaultRecord(
                        now, instance.instance_id, instance.service_name,
                        instance.host_name, "hang",
                        self._domain_of(instance.host_name),
                    ),
                    injected,
                )
                self.controller.failure_detector.suppress(instance.instance_id)

    # -- accounting -------------------------------------------------------------------

    def count(self, kind: str) -> int:
        return sum(1 for fault in self.faults if fault.kind == kind)

    @property
    def crash_count(self) -> int:
        return self.count("crash")

    @property
    def hang_count(self) -> int:
        return self.count("hang")

    @property
    def host_crash_count(self) -> int:
        return self.count("host-crash")

    @property
    def monitor_outage_count(self) -> int:
        return self.count("monitor-outage")

    @property
    def controller_crash_count(self) -> int:
        return self.count("controller-crash")

    @property
    def leader_partition_count(self) -> int:
        return self.count("leader-partition")

    def summary(self) -> str:
        parts = [
            f"crashes: {self.crash_count}",
            f"hangs: {self.hang_count}",
            f"host crashes: {self.host_crash_count}",
            f"monitor outages: {self.monitor_outage_count}",
        ]
        if self.controller_crash_count or self.leader_partition_count:
            parts.append(f"controller crashes: {self.controller_crash_count}")
            parts.append(f"leader partitions: {self.leader_partition_count}")
        return f"injected faults: {len(self.faults)} ({', '.join(parts)})"

    # -- durability (kill -9 and resume) -----------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-able injector state so a resumed run draws the same faults."""
        return {
            "rng": self._rng.bit_generator.state,
            "reboot_at": dict(self._reboot_at),
            "faults": [
                [f.time, f.instance_id, f.service_name, f.host_name, f.kind, f.domain]
                for f in self.faults
            ],
        }

    def restore_state(self, payload: Dict[str, object]) -> None:
        self._rng.bit_generator.state = payload["rng"]
        self._reboot_at = {
            host: int(minute)
            for host, minute in payload.get("reboot_at", {}).items()  # type: ignore[union-attr]
        }
        # pre-domain snapshots stored 5-element fault rows; tolerate both
        self.faults = [
            FaultRecord(
                int(row[0]), str(row[1]), str(row[2]), str(row[3]), str(row[4]),
                str(row[5]) if len(row) > 5 else "",
            )
            for row in payload.get("faults", [])  # type: ignore[union-attr]
        ]
