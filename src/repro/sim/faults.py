"""Failure injection.

"Failure situations like a program crash are remedied for example with
a restart" (Section 2) — this module generates those situations so the
self-healing path can be exercised under realistic churn:

* **crashes**: the instance dies instantly; surviving peers absorb its
  users, and the controller restarts it via
  :meth:`~repro.core.autoglobe.AutoGlobeController.report_failure`;
* **hangs**: the instance keeps holding its resources but stops
  responding; the heartbeat detector notices after its miss threshold
  and the controller kills and restarts it.

Fault times are drawn per instance-minute with a fixed probability
(a geometric approximation of exponential MTBF), deterministic under a
seed and independent of the workload model's RNG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.autoglobe import AutoGlobeController

__all__ = ["FaultRecord", "FaultInjector"]


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault."""

    time: int
    instance_id: str
    service_name: str
    host_name: str
    kind: str  # "crash" or "hang"


@dataclass
class FaultInjector:
    """Randomly crashes or hangs running service instances.

    Parameters
    ----------
    controller:
        The controller whose platform is attacked; its failure detector
        is used for hangs and its self-healing path for crashes.
    crash_probability / hang_probability:
        Per instance-minute probabilities.  The defaults correspond to a
        mean time between failures of roughly two weeks per instance —
        rare, as in a real computing center.
    seed:
        RNG seed; injections are deterministic given a seed.
    """

    controller: AutoGlobeController
    crash_probability: float = 1.0 / (14 * 24 * 60)
    hang_probability: float = 1.0 / (14 * 24 * 60)
    seed: int = 99
    faults: List[FaultRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ValueError("crash probability must be in [0, 1]")
        if not 0.0 <= self.hang_probability <= 1.0:
            raise ValueError("hang probability must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def tick(self, now: int) -> List[FaultRecord]:
        """Possibly injure instances this minute; returns the new faults.

        Crashes are reported to the controller immediately (the platform
        notices a dead process right away); hangs only suppress
        heartbeats — detection is the heartbeat detector's job.
        """
        platform = self.controller.platform
        injected: List[FaultRecord] = []
        for instance in list(platform.all_instances()):
            if instance.instance_id in self.controller.failure_detector.suppressed:
                continue
            roll = float(self._rng.random())
            if roll < self.crash_probability:
                record = FaultRecord(
                    now, instance.instance_id, instance.service_name,
                    instance.host_name, "crash",
                )
                self.faults.append(record)
                injected.append(record)
                self.controller.report_failure(instance.instance_id, now)
            elif roll < self.crash_probability + self.hang_probability:
                record = FaultRecord(
                    now, instance.instance_id, instance.service_name,
                    instance.host_name, "hang",
                )
                self.faults.append(record)
                injected.append(record)
                self.controller.failure_detector.suppress(instance.instance_id)
        return injected

    @property
    def crash_count(self) -> int:
        return sum(1 for fault in self.faults if fault.kind == "crash")

    @property
    def hang_count(self) -> int:
        return sum(1 for fault in self.faults if fault.kind == "hang")
