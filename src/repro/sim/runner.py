"""The simulation runner: platform + workload + controller, minute by minute.

"Every simulation starts with the same reasonable initial allocation of
the services shown in Figure 11" and runs for 80 simulated hours with
the Section 5.1 controller parameters (70% overload threshold, 10 minute
watch time, 30 minute protection, idle threshold 12.5% / performance
index, 20 minute idle watch).
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from pathlib import Path
from typing import Callable, Optional, Set, Tuple, Union

from repro.config.model import ControllerSettings, LandscapeSpec
from repro.core.autoglobe import AutoGlobeController
from repro.serviceglobe.executor import ActionExecutor, ExecutionFaults
from repro.serviceglobe.platform import Platform
from repro.sim.clock import PAPER_HORIZON_MINUTES
from repro.sim.faults import FaultInjector, FaultRecord
from repro.sim.results import (
    ResultCollector,
    SimulationResult,
    SlaPolicy,
    expired_approvals_by_service,
)
from repro.sim.scenarios import (
    ChaosProfile,
    Scenario,
    apply_scenario,
    controller_enabled_for,
    user_distribution_for,
)
from repro.sim.workload import NoiseParameters, WorkloadModel
from repro.telemetry.records import (
    TOPIC_SUPERVISION,
    SupervisionEvent,
    SupervisionEventKind,
)

__all__ = ["SimulationRunner"]


class SimulationRunner:
    """Configures and runs one simulation series entry.

    Parameters
    ----------
    scenario:
        STATIC, CONSTRAINED_MOBILITY or FULL_MOBILITY.
    user_factor:
        Relative user population (1.0 = the Table 4 reference; the
        paper's summary sweeps 1.00, 1.05, 1.10, ...).
    horizon:
        Simulated minutes; defaults to the paper's 80 hours.
    seed:
        Workload RNG seed; runs are deterministic given a seed.
    start_minute:
        Absolute minute of day the run starts at; the paper's plots
        begin at 12:00, so noon is the default.
    landscape:
        Base landscape; defaults to the built-in Section 5.1 landscape.
    collect_host_series:
        Keep the full per-host load series (Figures 12-14).
    collect_services:
        Service names whose per-instance load samples to keep
        (Figures 15-17 use FI).
    controller_settings:
        Override the landscape's controller parameters (used by the
        watch-time and protection ablation benchmarks).
    controller_factory:
        Alternative controller constructor ``(platform, settings,
        enabled) -> controller`` with a ``tick(now)`` method and an
        ``alerts`` channel; used to swap in the crisp baseline.
    archive:
        Load archive for the controller's monitors; pass a
        :class:`repro.monitoring.archive.SqliteLoadArchive` to persist
        the run's measurements and administration events.
    lint:
        Static-analysis gate run on the scenario landscape before the
        platform is built (see :mod:`repro.analysis`).  ``"warn"`` (the
        default) raises :class:`repro.analysis.LintError` on
        error-severity findings and keeps warnings in
        :attr:`lint_report`; ``"strict"`` raises on warnings too;
        ``"off"`` skips the analysis entirely.
    chaos:
        Optional :class:`~repro.sim.scenarios.ChaosProfile`.  When set,
        a :class:`~repro.sim.faults.FaultInjector` injures instances,
        hosts and the monitoring plane every minute, and controller
        actions run through a fault-injecting
        :class:`~repro.serviceglobe.executor.ActionExecutor` (flaky
        actions, latency, compensation).  The run stays deterministic
        under the profile's seed.  A profile with controller faults
        additionally requires the supervised controller (see below).
    state_dir:
        Directory for durable run state.  Enables the supervised
        controller with an on-disk
        :class:`~repro.core.state.DurableStateStore` (journal, snapshots,
        lease) and, unless an archive was passed explicitly, a
        :class:`~repro.monitoring.archive.SqliteLoadArchive` at
        ``state_dir/archive.db``.  Periodic full-run snapshots are
        written every ``snapshot_interval`` minutes so a killed run can
        be resumed.
    resume:
        Continue a previous run from the last full-run snapshot in
        ``state_dir`` instead of starting fresh.  The re-simulation is
        deterministic: platform, workload RNG, fault injector, collector
        and controller all restore their exact state.
    standby:
        Keep a hot-standby controller: crashes and leader partitions
        fail over at lease expiry instead of waiting out a restart.
        Implies the supervised controller (in-memory state store unless
        ``state_dir`` is also given).
    snapshot_interval:
        Minutes between full-run snapshots when ``state_dir`` is set.
    kill_at:
        Absolute minute at which the process kills itself with SIGKILL
        right after the tick completes — the crash-recovery smoke test's
        hook.  Requires ``state_dir``.
    verify:
        Attach the AG3xx temporal-invariant verifier
        (:class:`repro.analysis.verify.TraceVerifier`) to the telemetry
        bus as a sanitizer: every published event is checked live, and
        :meth:`verification_report` returns the findings after the run.
    scan_mode:
        Landscape scan strategy for every controller the runner builds.
        ``"columnar"`` (the default) reads measurements from the
        platform's :class:`~repro.serviceglobe.landscape_state.LandscapeState`
        columns and batches fuzzy inference across open situations;
        ``"object-graph"`` walks the host/instance objects per tick, the
        pre-columnar behaviour.  Both modes produce bit-identical runs;
        the flag exists for benchmarks and equivalence tests.  Ignored
        by ``controller_factory`` controllers, which construct
        themselves.
    store_path:
        Persist every telemetry envelope to a SQLite event store
        (:class:`repro.ops.store.TelemetryStore`) at this path; batches
        commit transactionally at tick boundaries.  ``autoglobe verify``
        and ``autoglobe tail`` read the store directly, and a resumed
        run (``resume=True``) truncates it back to the snapshot's
        sequence and continues it gaplessly.
    serve:
        ``(host, port)`` to expose the live ops API
        (:class:`repro.ops.api.OpsServer`) for the duration of the run:
        landscape/situation/approval snapshots over HTTP, an ``/events``
        WebSocket, and POST approve/reject verdicts routed into the
        controller's command queue at tick boundaries.  Port 0 binds an
        ephemeral port (see ``runner.ops_server.port``).  Serving is
        read-only with respect to the simulation — a served run is
        byte-identical to an unserved one unless verdicts are posted.
    pace:
        Real seconds to sleep after each simulated minute; gives humans
        (and the CI smoke job) time to interact with a served run.
        ``0.0`` (the default) runs as fast as possible.
    semi_automatic:
        Run the controller in the paper's semi-automatic mode: actions
        require administrator approval (over the ops API or the alert
        channel callback) before execution.  Shorthand for overriding
        ``controller_settings.mode``.
    """

    def __init__(
        self,
        scenario: Scenario,
        user_factor: float = 1.0,
        horizon: int = PAPER_HORIZON_MINUTES,
        seed: int = 7,
        landscape: Optional[LandscapeSpec] = None,
        sla: Optional[SlaPolicy] = None,
        noise: Optional[NoiseParameters] = None,
        collect_host_series: bool = True,
        collect_services: Optional[Set[str]] = None,
        controller_enabled: Optional[bool] = None,
        start_minute: int = 12 * 60,
        controller_settings: Optional[ControllerSettings] = None,
        controller_factory: Optional[Callable] = None,
        archive=None,
        lint: str = "warn",
        chaos: Optional[ChaosProfile] = None,
        state_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        standby: bool = False,
        snapshot_interval: int = 10,
        kill_at: Optional[int] = None,
        verify: bool = False,
        scan_mode: str = "columnar",
        store_path: Optional[Union[str, Path]] = None,
        serve: Optional[Tuple[str, int]] = None,
        pace: float = 0.0,
        semi_automatic: bool = False,
    ) -> None:
        if lint not in ("off", "warn", "strict"):
            raise ValueError(
                f"lint must be 'off', 'warn' or 'strict', got {lint!r}"
            )
        if scan_mode not in ("columnar", "object-graph"):
            raise ValueError(
                f"scan_mode must be 'columnar' or 'object-graph', got {scan_mode!r}"
            )
        self.scan_mode = scan_mode
        if snapshot_interval < 1:
            raise ValueError("snapshot interval must be at least one minute")
        if resume and state_dir is None:
            raise ValueError("resume requires a state directory")
        if kill_at is not None and state_dir is None:
            raise ValueError("kill_at without a state directory loses the run")
        if landscape is None:
            from repro.config.builtin import paper_landscape

            landscape = paper_landscape()
        self.scenario = scenario
        self.user_factor = user_factor
        self.horizon = horizon
        self.start_minute = start_minute
        scenario_landscape = apply_scenario(landscape, scenario).scaled_users(
            user_factor
        )
        if controller_settings is not None:
            scenario_landscape = dataclasses.replace(
                scenario_landscape, controller=controller_settings
            )
        if semi_automatic:
            from repro.config.model import ControllerMode

            scenario_landscape = dataclasses.replace(
                scenario_landscape,
                controller=dataclasses.replace(
                    scenario_landscape.controller,
                    mode=ControllerMode.SEMI_AUTOMATIC,
                ),
            )
        if pace < 0:
            raise ValueError("pace must be non-negative seconds per tick")
        self.pace = pace
        self.lint_report = None
        if lint != "off":
            from repro.analysis import analyze_landscape

            self.lint_report = analyze_landscape(scenario_landscape)
            self.lint_report.raise_for_findings(strict=(lint == "strict"))
        self.platform = Platform(
            scenario_landscape, user_distribution=user_distribution_for(scenario)
        )
        #: the live AG3xx sanitizer; attached before anything publishes
        #: so its view of the stream is complete
        self.verifier = None
        self._landscape_name = scenario_landscape.name
        if verify:
            from repro.analysis.verify import TraceVerifier

            self.verifier = TraceVerifier()
            self.verifier.attach(self.platform.bus)
        #: typed supervision events (crashes, recoveries, failovers)
        #: observed on the telemetry bus; merged into the run's fault
        #: records at finalize.  The subscription is typed end to end: an
        #: unknown event kind fails at the producer (ValueError in
        #: :class:`SupervisionEventKind`), never silently dropped here.
        self._supervision_events: list = []
        self.platform.bus.subscribe(
            TOPIC_SUPERVISION,
            lambda envelope: self._supervision_events.append(envelope.record),
        )
        enabled = (
            controller_enabled
            if controller_enabled is not None
            else controller_enabled_for(scenario)
        )
        self.chaos = chaos
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.resume = resume
        self.snapshot_interval = snapshot_interval
        self.kill_at = kill_at
        supervised = (
            self.state_dir is not None
            or standby
            or (chaos is not None and chaos.has_controller_faults)
        )
        federated = scenario_landscape.is_federated
        if supervised and controller_factory is not None:
            raise ValueError(
                "a custom controller_factory cannot be combined with "
                "state_dir/standby/controller-fault chaos (those require "
                "the supervised AutoGlobe controller)"
            )
        if federated and controller_factory is not None:
            raise ValueError(
                "a custom controller_factory cannot administer a landscape "
                "with control domains (the runner builds a "
                "FederatedControlPlane for those)"
            )
        if federated and archive is not None:
            raise ValueError(
                "a shared archive cannot serve a landscape with control "
                "domains; each domain keeps its own archive (pass "
                "state_dir for per-domain SQLite archives)"
            )
        if not federated and self.state_dir is not None and archive is None:
            from repro.monitoring.archive import SqliteLoadArchive

            self.state_dir.mkdir(parents=True, exist_ok=True)
            archive = SqliteLoadArchive(self.state_dir / "archive.db")
        self.archive = archive
        self._store = None
        executor = None
        if federated:
            from repro.core.federation import FederatedControlPlane

            if self.state_dir is not None:
                from repro.core.state import DurableStateStore

                self.state_dir.mkdir(parents=True, exist_ok=True)
                # the root store holds the runner's full-run snapshots;
                # each domain journals and leases under its own subdir
                self._store = DurableStateStore(self.state_dir)
            self.controller = FederatedControlPlane(
                self.platform,
                settings=scenario_landscape.controller,
                enabled=enabled,
                supervised=supervised,
                state_dir=self.state_dir,
                standby=standby,
                archive_factory=self._make_archive_factory(),
                execution_faults=(
                    self._execution_faults(chaos) if chaos is not None else None
                ),
                chaos_seed=chaos.seed if chaos is not None else None,
                scan_mode=scan_mode,
            )
        elif supervised:
            from repro.core.failover import ControllerSupervisor
            from repro.core.state import DurableStateStore

            self._store = DurableStateStore(self.state_dir)
            self.controller = ControllerSupervisor(
                self.platform,
                settings=scenario_landscape.controller,
                archive=archive,
                enabled=enabled,
                store=self._store,
                standby=standby,
                executor_factory=self._make_executor_factory(chaos),
                scan_mode=scan_mode,
            )
        elif controller_factory is not None:
            self.controller = controller_factory(
                self.platform, scenario_landscape.controller, enabled
            )
        else:
            if chaos is not None:
                executor = ActionExecutor(
                    self.platform,
                    faults=self._execution_faults(chaos),
                    seed=chaos.seed,
                )
            self.controller = AutoGlobeController(
                self.platform, enabled=enabled, archive=archive,
                executor=executor, scan_mode=scan_mode,
            )
        self.executor = executor
        self.injector: Optional[FaultInjector] = None
        if chaos is not None:
            self.injector = FaultInjector(
                self.controller,
                crash_probability=chaos.crash_probability,
                hang_probability=chaos.hang_probability,
                host_crash_probability=chaos.host_crash_probability,
                host_reboot_minutes=chaos.host_reboot_minutes,
                monitor_outage_probability=chaos.monitor_outage_probability,
                monitor_outage_minutes=chaos.monitor_outage_minutes,
                controller_crash_probability=chaos.controller_crash_probability,
                controller_restart_minutes=chaos.controller_restart_minutes,
                leader_partition_probability=chaos.leader_partition_probability,
                leader_partition_minutes=chaos.leader_partition_minutes,
                seed=chaos.seed + 1,
            )
        self.workload = WorkloadModel(self.platform, seed=seed, noise=noise)
        self.sla = sla if sla is not None else SlaPolicy()
        self.collector = ResultCollector(
            self.platform,
            scenario_name=scenario.value,
            user_factor=user_factor,
            sla=self.sla,
            collect_host_series=collect_host_series,
            collect_services=collect_services,
            start_minute=start_minute,
        )
        #: the persistent SQLite event store, when the run keeps one
        self.telemetry_store = None
        if store_path is not None:
            from repro.ops.store import TelemetryStore

            self.telemetry_store = TelemetryStore(store_path)
            if not resume:
                # a resumed run re-attaches in _resume_from_snapshot,
                # after truncating to the snapshot's bus sequence
                self.telemetry_store.attach(self.platform.bus)
        #: the live ops API (bridge + asyncio server), when serving
        self.ops_bridge = None
        self.ops_server = None
        if serve is not None:
            from repro.ops.api import OpsBridge, OpsServer

            host, port = serve
            self.ops_bridge = OpsBridge(
                self.platform,
                self.controller,
                run_info={
                    "scenario": scenario.value,
                    "user_factor": user_factor,
                    "horizon_minutes": horizon,
                    "seed": seed,
                    "start_minute": start_minute,
                },
            )
            self.ops_bridge.attach(self.platform.bus)
            self.ops_server = OpsServer(self.ops_bridge, host=host, port=port)
            self.ops_server.start()

    @staticmethod
    def _execution_faults(chaos: ChaosProfile) -> ExecutionFaults:
        return ExecutionFaults(
            failure_probability=chaos.action_failure_probability,
            commit_failure_probability=chaos.commit_failure_probability,
            latency_means=dict(chaos.action_latency_means),
            latency_jitter=chaos.action_latency_jitter,
        )

    def _make_archive_factory(self):
        """Per-domain archive builder for the federated control plane.

        SQLite archives under ``state_dir/<domain>/`` when the run is
        durable, in-memory archives otherwise — either way one archive
        per domain, so measurements never cross shards.
        """
        state_dir = self.state_dir

        def build(domain: str):
            if state_dir is not None:
                from repro.monitoring.archive import SqliteLoadArchive

                directory = state_dir / domain
                directory.mkdir(parents=True, exist_ok=True)
                return SqliteLoadArchive(directory / "archive.db")
            from repro.monitoring.archive import InMemoryLoadArchive

            return InMemoryLoadArchive()

        return build

    def _domain_archives(self):
        shards = getattr(self.controller, "shards", None)
        if shards is None:
            return [self.archive] if self.archive is not None else []
        return [shard.archive for shard in shards.values()]

    def _make_executor_factory(self, chaos: Optional[ChaosProfile]):
        """Per-replica executor builder for the supervised controller.

        Each controller replica gets its own executor — a shared one
        would carry the new leader's fencing token on behalf of a
        deposed leader, defeating fencing — with a seed derived from the
        replica number so fault draws stay deterministic across
        failovers.
        """
        platform = self.platform

        def build(name: str, replica_number: int) -> ActionExecutor:
            if chaos is None:
                return ActionExecutor(platform, name=name)
            return ActionExecutor(
                platform,
                faults=self._execution_faults(chaos),
                seed=chaos.seed + 1000 + replica_number,
                name=name,
            )

        return build

    # -- durability -------------------------------------------------------------------

    def _save_run_snapshot(self, now: int) -> None:
        assert self._store is not None
        for archive in self._domain_archives():
            if hasattr(archive, "commit"):
                archive.commit()
        if self.telemetry_store is not None:
            # the snapshot claims everything up to bus_seq is durable;
            # the store must not still hold any of it in its batch buffer
            self.telemetry_store.flush()
        payload = {
            "platform": self.platform.snapshot_state(),
            "workload": self.workload.snapshot_state(),
            "collector": self.collector.snapshot_state(),
            "supervisor": self.controller.snapshot_state(),
            "bus_seq": self.platform.bus.last_seq,
        }
        if self.injector is not None:
            payload["injector"] = self.injector.snapshot_state()
        self._store.snapshots.save(
            "run", now, self._store.journal.last_seq, payload
        )

    def _resume_from_snapshot(self) -> int:
        """Restore every component from the last run snapshot.

        Returns the snapshot's tick; the loop continues at tick + 1.
        """
        assert self._store is not None
        snapshot = self._store.snapshots.load("run")
        if snapshot is None:
            raise ValueError(
                f"cannot resume: no run snapshot in {self.state_dir}"
            )
        tick = int(snapshot["tick"])
        payload = snapshot["payload"]
        self.platform.restore_state(payload["platform"])
        for archive in self._domain_archives():
            # whatever the abandoned timeline recorded past the snapshot
            # must not leak into the replayed one
            if hasattr(archive, "truncate_after"):
                archive.truncate_after(tick)
        self.workload.restore_state(payload["workload"])
        self.collector.restore_state(payload["collector"])
        if self.injector is not None and "injector" in payload:
            self.injector.restore_state(payload["injector"])
        self.controller.restore_state(payload["supervisor"], tick)
        # bus subscriptions only observe live publishes: reseed the typed
        # event list from the supervisor's restored history, then let the
        # subscription pick up everything after the resume point
        events = getattr(self.controller, "events", None)
        if events is not None:
            self._supervision_events = [
                SupervisionEvent(time_, SupervisionEventKind(kind), detail)
                for time_, kind, detail in events
            ]
        # continue the telemetry sequence where the snapshot left it:
        # rows past bus_seq belong to the abandoned timeline
        bus_seq = int(payload.get("bus_seq", 0))
        if bus_seq:
            self.platform.bus.fast_forward(bus_seq)
        if self.telemetry_store is not None:
            self.telemetry_store.truncate_after(bus_seq)
            self.telemetry_store.attach_resumed(self.platform.bus)
        return tick

    def run(self) -> SimulationResult:
        """Execute the full horizon and return the collected result."""
        start = self.start_minute
        if self.resume:
            start = self._resume_from_snapshot() + 1
        else:
            self.workload.initialize()
        end = self.start_minute + self.horizon
        persistent = self._store is not None and self._store.persistent
        try:
            for now in range(start, end):
                self.workload.tick(now)
                if self.injector is not None:
                    self.injector.tick(now)
                self.controller.tick(now)
                self.collector.observe(now)
                if self.ops_bridge is not None:
                    if self.telemetry_store is not None:
                        # live consumers (tail --follow, the CI smoke
                        # job) want the batch durable every tick; bulk
                        # runs keep the store's wider flush interval
                        self.telemetry_store.flush()
                    self.ops_bridge.refresh(now)
                if persistent and (
                    (now - self.start_minute + 1) % self.snapshot_interval == 0
                    or now == end - 1
                ):
                    self._save_run_snapshot(now)
                if self.kill_at is not None and now == self.kill_at:
                    os.kill(os.getpid(), signal.SIGKILL)
                if self.pace:
                    time.sleep(self.pace)
        finally:
            self.close()
        return self.collector.finalize(
            final_minute=end - 1,
            escalation_count=len(self.controller.alerts.escalations()),
            fault_records=self._merged_fault_records(),
            controller_down_minutes=getattr(
                self.controller, "downtime_minutes", 0
            ),
            **self._approval_counts(),
        )

    def close(self) -> None:
        """Stop the ops API and close the event store (idempotent)."""
        if self.ops_server is not None:
            self.ops_server.stop()
            self.ops_server = None
        if self.ops_bridge is not None:
            self.ops_bridge.detach()
            self.ops_bridge = None
        if self.telemetry_store is not None:
            self.telemetry_store.close()

    def verification_report(self, result: Optional[SimulationResult] = None):
        """Finalize the live sanitizer and return its findings.

        Pass the :class:`SimulationResult` of the finished run to enable
        the AG305 accounting reconciliation; the report reuses the lint
        framework (``render``, ``exit_code``, ``--strict`` semantics).
        Only meaningful for single-process runs: a resumed run's result
        counts pre-crash actions the fresh process's stream never saw.
        """
        if self.verifier is None:
            raise RuntimeError("runner was not constructed with verify=True")
        from repro.sim.results import accounting_summary

        summary = accounting_summary(result) if result is not None else None
        return self.verifier.report(
            f"{self._landscape_name} ({self.scenario.value} run)",
            summary=summary,
        )

    def _merged_fault_records(self):
        records = list(self.injector.faults) if self.injector is not None else []
        if self._supervision_events:
            for event in self._supervision_events:
                # crash/partition records come from the injector itself;
                # the kind's own verdict decides what the merge adds
                if event.kind.creates_fault_record:
                    records.append(
                        FaultRecord(
                            event.time, "", "", "", event.kind.value,
                            getattr(event, "domain", ""),
                        )
                    )
            records.sort(key=lambda record: record.time)
        return records or None

    def _approval_counts(self):
        queue = getattr(self.controller.alerts, "approvals", None)
        if queue is None:
            return {"expired_approval_count": 0, "pending_approval_count": 0}
        return {
            "expired_approval_count": len(queue.expired()),
            "pending_approval_count": len(queue.pending()),
            "expired_approvals_by_service": expired_approvals_by_service(queue),
        }
