"""The simulation runner: platform + workload + controller, minute by minute.

"Every simulation starts with the same reasonable initial allocation of
the services shown in Figure 11" and runs for 80 simulated hours with
the Section 5.1 controller parameters (70% overload threshold, 10 minute
watch time, 30 minute protection, idle threshold 12.5% / performance
index, 20 minute idle watch).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Set

from repro.config.model import ControllerSettings, LandscapeSpec
from repro.core.autoglobe import AutoGlobeController
from repro.serviceglobe.executor import ActionExecutor, ExecutionFaults
from repro.serviceglobe.platform import Platform
from repro.sim.clock import PAPER_HORIZON_MINUTES
from repro.sim.faults import FaultInjector
from repro.sim.results import ResultCollector, SimulationResult, SlaPolicy
from repro.sim.scenarios import (
    ChaosProfile,
    Scenario,
    apply_scenario,
    controller_enabled_for,
    user_distribution_for,
)
from repro.sim.workload import NoiseParameters, WorkloadModel

__all__ = ["SimulationRunner"]


class SimulationRunner:
    """Configures and runs one simulation series entry.

    Parameters
    ----------
    scenario:
        STATIC, CONSTRAINED_MOBILITY or FULL_MOBILITY.
    user_factor:
        Relative user population (1.0 = the Table 4 reference; the
        paper's summary sweeps 1.00, 1.05, 1.10, ...).
    horizon:
        Simulated minutes; defaults to the paper's 80 hours.
    seed:
        Workload RNG seed; runs are deterministic given a seed.
    start_minute:
        Absolute minute of day the run starts at; the paper's plots
        begin at 12:00, so noon is the default.
    landscape:
        Base landscape; defaults to the built-in Section 5.1 landscape.
    collect_host_series:
        Keep the full per-host load series (Figures 12-14).
    collect_services:
        Service names whose per-instance load samples to keep
        (Figures 15-17 use FI).
    controller_settings:
        Override the landscape's controller parameters (used by the
        watch-time and protection ablation benchmarks).
    controller_factory:
        Alternative controller constructor ``(platform, settings,
        enabled) -> controller`` with a ``tick(now)`` method and an
        ``alerts`` channel; used to swap in the crisp baseline.
    archive:
        Load archive for the controller's monitors; pass a
        :class:`repro.monitoring.archive.SqliteLoadArchive` to persist
        the run's measurements and administration events.
    lint:
        Static-analysis gate run on the scenario landscape before the
        platform is built (see :mod:`repro.analysis`).  ``"warn"`` (the
        default) raises :class:`repro.analysis.LintError` on
        error-severity findings and keeps warnings in
        :attr:`lint_report`; ``"strict"`` raises on warnings too;
        ``"off"`` skips the analysis entirely.
    chaos:
        Optional :class:`~repro.sim.scenarios.ChaosProfile`.  When set,
        a :class:`~repro.sim.faults.FaultInjector` injures instances,
        hosts and the monitoring plane every minute, and controller
        actions run through a fault-injecting
        :class:`~repro.serviceglobe.executor.ActionExecutor` (flaky
        actions, latency, compensation).  The run stays deterministic
        under the profile's seed.
    """

    def __init__(
        self,
        scenario: Scenario,
        user_factor: float = 1.0,
        horizon: int = PAPER_HORIZON_MINUTES,
        seed: int = 7,
        landscape: Optional[LandscapeSpec] = None,
        sla: Optional[SlaPolicy] = None,
        noise: Optional[NoiseParameters] = None,
        collect_host_series: bool = True,
        collect_services: Optional[Set[str]] = None,
        controller_enabled: Optional[bool] = None,
        start_minute: int = 12 * 60,
        controller_settings: Optional[ControllerSettings] = None,
        controller_factory: Optional[Callable] = None,
        archive=None,
        lint: str = "warn",
        chaos: Optional[ChaosProfile] = None,
    ) -> None:
        if lint not in ("off", "warn", "strict"):
            raise ValueError(
                f"lint must be 'off', 'warn' or 'strict', got {lint!r}"
            )
        if landscape is None:
            from repro.config.builtin import paper_landscape

            landscape = paper_landscape()
        self.scenario = scenario
        self.user_factor = user_factor
        self.horizon = horizon
        self.start_minute = start_minute
        scenario_landscape = apply_scenario(landscape, scenario).scaled_users(
            user_factor
        )
        if controller_settings is not None:
            scenario_landscape = dataclasses.replace(
                scenario_landscape, controller=controller_settings
            )
        self.lint_report = None
        if lint != "off":
            from repro.analysis import analyze_landscape

            self.lint_report = analyze_landscape(scenario_landscape)
            self.lint_report.raise_for_findings(strict=(lint == "strict"))
        self.platform = Platform(
            scenario_landscape, user_distribution=user_distribution_for(scenario)
        )
        enabled = (
            controller_enabled
            if controller_enabled is not None
            else controller_enabled_for(scenario)
        )
        self.chaos = chaos
        executor = None
        if chaos is not None:
            executor = ActionExecutor(
                self.platform,
                faults=ExecutionFaults(
                    failure_probability=chaos.action_failure_probability,
                    commit_failure_probability=chaos.commit_failure_probability,
                    latency_means=dict(chaos.action_latency_means),
                    latency_jitter=chaos.action_latency_jitter,
                ),
                seed=chaos.seed,
            )
        self.executor = executor
        if controller_factory is not None:
            self.controller = controller_factory(
                self.platform, scenario_landscape.controller, enabled
            )
        else:
            self.controller = AutoGlobeController(
                self.platform, enabled=enabled, archive=archive,
                executor=executor,
            )
        self.injector: Optional[FaultInjector] = None
        if chaos is not None:
            self.injector = FaultInjector(
                self.controller,
                crash_probability=chaos.crash_probability,
                hang_probability=chaos.hang_probability,
                host_crash_probability=chaos.host_crash_probability,
                host_reboot_minutes=chaos.host_reboot_minutes,
                monitor_outage_probability=chaos.monitor_outage_probability,
                monitor_outage_minutes=chaos.monitor_outage_minutes,
                seed=chaos.seed + 1,
            )
        self.workload = WorkloadModel(self.platform, seed=seed, noise=noise)
        self.sla = sla if sla is not None else SlaPolicy()
        self.collector = ResultCollector(
            self.platform,
            scenario_name=scenario.value,
            user_factor=user_factor,
            sla=self.sla,
            collect_host_series=collect_host_series,
            collect_services=collect_services,
            start_minute=start_minute,
        )

    def run(self) -> SimulationResult:
        """Execute the full horizon and return the collected result."""
        self.workload.initialize()
        end = self.start_minute + self.horizon
        for now in range(self.start_minute, end):
            self.workload.tick(now)
            if self.injector is not None:
                self.injector.tick(now)
            self.controller.tick(now)
            self.collector.observe(now)
        return self.collector.finalize(
            final_minute=end - 1,
            escalation_count=len(self.controller.alerts.escalations()),
            fault_records=self.injector.faults if self.injector else None,
        )
