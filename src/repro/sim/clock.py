"""Simulated time.

One tick is one simulated minute.  All simulation runs of the paper
cover 80 hours (4800 minutes) "carried out in 40-fold acceleration"; the
acceleration is irrelevant for a discrete simulator, so we simply step
4800 ticks.  Minute 0 is midnight of day 0.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "MINUTES_PER_DAY",
    "PAPER_HORIZON_MINUTES",
    "SimClock",
    "format_minute",
    "parse_clock_time",
]

MINUTES_PER_DAY = 24 * 60

#: The paper's simulation horizon: 80 hours.
PAPER_HORIZON_MINUTES = 80 * 60


def format_minute(minute: int) -> str:
    """Render an absolute minute as ``d HH:MM`` (e.g. ``1 08:30``)."""
    day, minute_of_day = divmod(minute, MINUTES_PER_DAY)
    hour, minute_in_hour = divmod(minute_of_day, 60)
    return f"{day} {hour:02d}:{minute_in_hour:02d}"


def parse_clock_time(text: str) -> int:
    """Parse a wall-clock time of day (``HH:MM``) into a minute of day.

    Raises :class:`ValueError` with a precise message on anything that
    is not a valid 24-hour time — the CLI forwards these verbatim.
    """
    parts = text.strip().split(":")
    if len(parts) != 2 or not all(p.isdigit() for p in parts):
        raise ValueError(
            f"invalid clock time {text!r}: expected HH:MM (e.g. 12:00)"
        )
    hour, minute = int(parts[0]), int(parts[1])
    if hour > 23:
        raise ValueError(f"invalid clock time {text!r}: hour must be 0-23")
    if minute > 59:
        raise ValueError(f"invalid clock time {text!r}: minute must be 0-59")
    return hour * 60 + minute


class SimClock:
    """A simple advancing minute counter.

    ``horizon`` (optional) is the run's length in minutes: the clock
    refuses a start beyond it, which catches swapped or mis-scaled
    arguments before a simulation silently runs zero ticks.
    """

    def __init__(self, start: int = 0, horizon: Optional[int] = None) -> None:
        if start < 0:
            raise ValueError("clock cannot start before minute 0")
        if horizon is not None:
            if horizon < 0:
                raise ValueError("clock horizon cannot be negative")
            if start > horizon:
                raise ValueError(
                    f"clock start minute {start} lies beyond the "
                    f"{horizon}-minute horizon"
                )
        self.now = start
        self.horizon = horizon

    def advance(self) -> int:
        self.now += 1
        return self.now

    @property
    def minute_of_day(self) -> int:
        return self.now % MINUTES_PER_DAY

    @property
    def day(self) -> int:
        return self.now // MINUTES_PER_DAY

    @property
    def hour_of_day(self) -> float:
        return self.minute_of_day / 60.0

    def __str__(self) -> str:
        return format_minute(self.now)
