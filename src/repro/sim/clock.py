"""Simulated time.

One tick is one simulated minute.  All simulation runs of the paper
cover 80 hours (4800 minutes) "carried out in 40-fold acceleration"; the
acceleration is irrelevant for a discrete simulator, so we simply step
4800 ticks.  Minute 0 is midnight of day 0.
"""

from __future__ import annotations

__all__ = ["MINUTES_PER_DAY", "PAPER_HORIZON_MINUTES", "SimClock", "format_minute"]

MINUTES_PER_DAY = 24 * 60

#: The paper's simulation horizon: 80 hours.
PAPER_HORIZON_MINUTES = 80 * 60


def format_minute(minute: int) -> str:
    """Render an absolute minute as ``d HH:MM`` (e.g. ``1 08:30``)."""
    day, minute_of_day = divmod(minute, MINUTES_PER_DAY)
    hour, minute_in_hour = divmod(minute_of_day, 60)
    return f"{day} {hour:02d}:{minute_in_hour:02d}"


class SimClock:
    """A simple advancing minute counter."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before minute 0")
        self.now = start

    def advance(self) -> int:
        self.now += 1
        return self.now

    @property
    def minute_of_day(self) -> int:
        return self.now % MINUTES_PER_DAY

    @property
    def day(self) -> int:
        return self.now // MINUTES_PER_DAY

    @property
    def hour_of_day(self) -> float:
        return self.minute_of_day / 60.0

    def __str__(self) -> str:
        return format_minute(self.now)
