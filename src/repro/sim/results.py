"""Simulation results, overload accounting and the SLA check.

The paper calls a system state "overloaded" when servers "have a CPU
load of more than 80% for a long time, at regular intervals"; then
"batch jobs are not processed in time and the response time of
interactive requests increases [...] users cannot perform all their
requests in a given period".  :class:`SlaPolicy` operationalizes this:
a run fails when the per-day volume of degraded host-minutes (load above
80% on hosts that are actually serving instances) exceeds a budget, or
when any single overload episode lasts too long.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.config.model import Action
from repro.serviceglobe.actions import ActionOutcome
from repro.serviceglobe.platform import Platform
from repro.sim.clock import MINUTES_PER_DAY

__all__ = ["SlaPolicy", "OverloadEpisode", "SimulationResult", "ResultCollector"]


@dataclass(frozen=True)
class SlaPolicy:
    """Operational definition of "the system is overloaded"."""

    #: CPU load above this counts as degraded service (the paper's 80%).
    overload_level: float = 0.80
    #: Budget of degraded host-minutes per simulated day.  Calibrated so
    #: that the Table 7 sweep lands on the paper's numbers (static 100%,
    #: constrained mobility 115%, full mobility 135%) under the default
    #: seed; see EXPERIMENTS.md for the measured margins.
    max_overload_minutes_per_day: float = 110.0
    #: Longest tolerable single overload episode on one host, in minutes.
    max_episode_minutes: int = 180


@dataclass(frozen=True)
class OverloadEpisode:
    """A maximal run of consecutive overloaded minutes on one host."""

    host_name: str
    start: int
    end: int  # inclusive

    @property
    def duration(self) -> int:
        return self.end - self.start + 1


@dataclass
class SimulationResult:
    """Everything a benchmark needs to reproduce a paper figure/table."""

    scenario_name: str
    user_factor: float
    horizon: int
    host_names: List[str]
    #: absolute minute of the first sample (the paper's plots start at noon)
    start_minute: int = 0
    #: host name -> per-minute CPU load (only when series collection is on)
    host_series: Dict[str, np.ndarray] = field(default_factory=dict)
    #: service name -> [(minute, instance id, host name, host load)]
    service_samples: Dict[str, List[Tuple[int, str, str, float]]] = field(
        default_factory=dict
    )
    overload_minutes_by_host: Dict[str, int] = field(default_factory=dict)
    episodes: List[OverloadEpisode] = field(default_factory=list)
    actions: List[ActionOutcome] = field(default_factory=list)
    escalation_count: int = 0
    final_instance_counts: Dict[str, int] = field(default_factory=dict)

    # -- aggregates ------------------------------------------------------------------

    @property
    def days(self) -> float:
        return self.horizon / MINUTES_PER_DAY

    @property
    def total_overload_minutes(self) -> int:
        return sum(self.overload_minutes_by_host.values())

    @property
    def overload_minutes_per_day(self) -> float:
        return self.total_overload_minutes / self.days if self.days else 0.0

    @property
    def longest_episode(self) -> int:
        return max((e.duration for e in self.episodes), default=0)

    def average_load_series(self) -> np.ndarray:
        """The thick 'average load of the whole system' line of Figs. 12-14."""
        if not self.host_series:
            raise ValueError("host series were not collected for this run")
        stacked = np.vstack([self.host_series[name] for name in self.host_names])
        return stacked.mean(axis=0)

    def actions_of_service(self, service_name: str) -> List[ActionOutcome]:
        return [a for a in self.actions if a.service_name == service_name]

    def action_counts(self) -> Dict[Action, int]:
        counts: Dict[Action, int] = {}
        for action in self.actions:
            counts[action.action] = counts.get(action.action, 0) + 1
        return counts

    # -- the SLA verdict ---------------------------------------------------------------

    def violates(self, sla: Optional[SlaPolicy] = None) -> bool:
        sla = sla if sla is not None else SlaPolicy()
        if self.overload_minutes_per_day > sla.max_overload_minutes_per_day:
            return True
        return self.longest_episode > sla.max_episode_minutes

    def summary(self) -> str:
        lines = [
            f"scenario={self.scenario_name} users={self.user_factor:.0%} "
            f"horizon={self.horizon}min",
            f"  overload minutes/day: {self.overload_minutes_per_day:.1f} "
            f"(longest episode {self.longest_episode} min)",
            f"  controller actions: {len(self.actions)} "
            f"(escalations: {self.escalation_count})",
        ]
        return "\n".join(lines)


class ResultCollector:
    """Observes the platform each minute and builds a SimulationResult."""

    def __init__(
        self,
        platform: Platform,
        scenario_name: str,
        user_factor: float,
        sla: Optional[SlaPolicy] = None,
        collect_host_series: bool = True,
        collect_services: Optional[Set[str]] = None,
        start_minute: int = 0,
    ) -> None:
        self._platform = platform
        self._scenario_name = scenario_name
        self._user_factor = user_factor
        self._sla = sla if sla is not None else SlaPolicy()
        self._collect_host_series = collect_host_series
        self._collect_services = collect_services or set()
        self._start_minute = start_minute
        self._host_names = sorted(platform.hosts)
        self._series: Dict[str, List[float]] = {
            name: [] for name in self._host_names
        } if collect_host_series else {}
        self._service_samples: Dict[str, List[Tuple[int, str, str, float]]] = {
            name: [] for name in self._collect_services
        }
        self._overload_minutes: Dict[str, int] = {n: 0 for n in self._host_names}
        self._episodes: List[OverloadEpisode] = []
        self._open_episode_start: Dict[str, Optional[int]] = {
            n: None for n in self._host_names
        }
        self._ticks = 0

    def observe(self, now: int) -> None:
        self._ticks += 1
        for name in self._host_names:
            host = self._platform.hosts[name]
            load = host.cpu_load
            if self._collect_host_series:
                self._series[name].append(load)
            degraded = load > self._sla.overload_level and bool(
                host.running_instances
            )
            if degraded:
                self._overload_minutes[name] += 1
                if self._open_episode_start[name] is None:
                    self._open_episode_start[name] = now
            elif self._open_episode_start[name] is not None:
                start = self._open_episode_start[name]
                self._episodes.append(OverloadEpisode(name, start, now - 1))
                self._open_episode_start[name] = None
        for service_name in self._collect_services:
            for instance in self._platform.service(service_name).running_instances:
                self._service_samples[service_name].append(
                    (
                        now,
                        instance.instance_id,
                        instance.host_name,
                        self._platform.hosts[instance.host_name].cpu_load,
                    )
                )

    def finalize(self, final_minute: int, escalation_count: int = 0) -> SimulationResult:
        for name, start in self._open_episode_start.items():
            if start is not None:
                self._episodes.append(OverloadEpisode(name, start, final_minute))
        return SimulationResult(
            scenario_name=self._scenario_name,
            user_factor=self._user_factor,
            horizon=self._ticks,
            host_names=self._host_names,
            start_minute=self._start_minute,
            host_series={
                name: np.array(values) for name, values in self._series.items()
            },
            service_samples=self._service_samples,
            overload_minutes_by_host=dict(self._overload_minutes),
            episodes=sorted(self._episodes, key=lambda e: (e.start, e.host_name)),
            actions=list(self._platform.audit_log),
            escalation_count=escalation_count,
            final_instance_counts={
                name: len(self._platform.service(name).running_instances)
                for name in self._platform.services
            },
        )
