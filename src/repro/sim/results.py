"""Simulation results, overload accounting, availability and the SLA check.

The paper calls a system state "overloaded" when servers "have a CPU
load of more than 80% for a long time, at regular intervals"; then
"batch jobs are not processed in time and the response time of
interactive requests increases [...] users cannot perform all their
requests in a given period".  :class:`SlaPolicy` operationalizes this:
a run fails when the per-day volume of degraded host-minutes (load above
80% on hosts that are actually serving instances) exceeds a budget, or
when any single overload episode lasts too long.

Robustness is measured, not assumed: the collector additionally tracks
per-service *availability* (fraction of minutes with at least one
running instance), downtime episodes and their mean duration (MTTR),
plus host down-minutes — the quantities the chaos scenario compares
between a controller-enabled and a controller-disabled run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.config.model import Action
from repro.serviceglobe.actions import ActionOutcome
from repro.serviceglobe.platform import Platform
from repro.sim.clock import MINUTES_PER_DAY
from repro.telemetry.records import TOPIC_ACTIONS

__all__ = [
    "SlaPolicy",
    "OverloadEpisode",
    "DowntimeEpisode",
    "ServiceAvailability",
    "SimulationResult",
    "ResultCollector",
    "accounting_summary",
    "expired_approvals_by_service",
]


def expired_approvals_by_service(queue) -> Dict[str, int]:
    """Group a queue's expired approvals by the requesting service.

    Accepts any approvals view with an ``expired()`` method (the plain
    :class:`~repro.core.alerts.ApprovalQueue`, the supervisor's and the
    federation's aggregates); requests predating the service attribution
    land under ``""``.
    """
    counts: Dict[str, int] = {}
    for request in queue.expired():
        name = getattr(request, "service_name", "") or ""
        counts[name] = counts.get(name, 0) + 1
    return counts


def accounting_summary(result: "SimulationResult") -> Dict[str, Any]:
    """The reconciliation subset of the exported summary.

    Exactly the keys the AG305 accounting checker cross-checks against
    the event stream; a ``summary.json`` written by the exporter is a
    superset of this.
    """
    return {
        "action_count": len(result.actions),
        "escalation_count": result.escalation_count,
        "injected_fault_count": len(result.fault_records),
        "retried_action_count": result.retried_action_count,
        "compensated_action_count": result.compensated_action_count,
        "failed_action_count": result.failed_action_count,
        "fenced_action_count": result.fenced_action_count,
        "total_down_minutes": result.total_down_minutes,
        "availability_by_service": {
            name: {"down_minutes": record.down_minutes}
            for name, record in result.availability.items()
        },
    }


@dataclass(frozen=True)
class SlaPolicy:
    """Operational definition of "the system is overloaded"."""

    #: CPU load above this counts as degraded service (the paper's 80%).
    overload_level: float = 0.80
    #: Budget of degraded host-minutes per simulated day.  Calibrated so
    #: that the Table 7 sweep lands on the paper's numbers (static 100%,
    #: constrained mobility 115%, full mobility 135%) under the default
    #: seed; see EXPERIMENTS.md for the measured margins.
    max_overload_minutes_per_day: float = 110.0
    #: Longest tolerable single overload episode on one host, in minutes.
    max_episode_minutes: int = 180


@dataclass(frozen=True)
class OverloadEpisode:
    """A maximal run of consecutive overloaded minutes on one host."""

    host_name: str
    start: int
    end: int  # inclusive

    @property
    def duration(self) -> int:
        return self.end - self.start + 1


@dataclass(frozen=True)
class DowntimeEpisode:
    """A maximal run of consecutive minutes a service had no running instance."""

    service_name: str
    start: int
    end: int  # inclusive

    @property
    def duration(self) -> int:
        return self.end - self.start + 1


@dataclass(frozen=True)
class ServiceAvailability:
    """Availability accounting of one service over a run."""

    service_name: str
    observed_minutes: int
    down_minutes: int
    episode_count: int

    @property
    def availability(self) -> float:
        """Fraction of observed minutes with at least one running instance."""
        if self.observed_minutes == 0:
            return 1.0
        return 1.0 - self.down_minutes / self.observed_minutes

    @property
    def mttr_minutes(self) -> float:
        """Mean time to repair: average downtime-episode duration."""
        if self.episode_count == 0:
            return 0.0
        return self.down_minutes / self.episode_count

    def __str__(self) -> str:
        return (
            f"{self.service_name}: {self.availability:.2%} available "
            f"({self.down_minutes} down-minutes over {self.episode_count} "
            f"episodes, MTTR {self.mttr_minutes:.1f} min)"
        )


@dataclass
class SimulationResult:
    """Everything a benchmark needs to reproduce a paper figure/table."""

    scenario_name: str
    user_factor: float
    horizon: int
    host_names: List[str]
    #: absolute minute of the first sample (the paper's plots start at noon)
    start_minute: int = 0
    #: host name -> per-minute CPU load (only when series collection is on)
    host_series: Dict[str, np.ndarray] = field(default_factory=dict)
    #: service name -> [(minute, instance id, host name, host load)]
    service_samples: Dict[str, List[Tuple[int, str, str, float]]] = field(
        default_factory=dict
    )
    overload_minutes_by_host: Dict[str, int] = field(default_factory=dict)
    episodes: List[OverloadEpisode] = field(default_factory=list)
    actions: List[ActionOutcome] = field(default_factory=list)
    escalation_count: int = 0
    final_instance_counts: Dict[str, int] = field(default_factory=dict)
    #: service name -> availability accounting (always collected)
    availability: Dict[str, ServiceAvailability] = field(default_factory=dict)
    downtime_episodes: List[DowntimeEpisode] = field(default_factory=list)
    #: host name -> minutes the host was out of the landscape (crashed)
    host_down_minutes: Dict[str, int] = field(default_factory=dict)
    #: injected fault records when the run used a fault injector
    fault_records: List = field(default_factory=list)
    #: minutes the run spent with no live controller (crash recovery)
    controller_down_minutes: int = 0
    #: semi-automatic approvals that expired unanswered / are still open
    expired_approval_count: int = 0
    pending_approval_count: int = 0
    #: service name -> approvals that expired unanswered for that service
    #: (requests without a service attribution count under ``""``)
    expired_approvals_by_service: Dict[str, int] = field(default_factory=dict)

    # -- aggregates ------------------------------------------------------------------

    @property
    def days(self) -> float:
        return self.horizon / MINUTES_PER_DAY

    @property
    def total_overload_minutes(self) -> int:
        return sum(self.overload_minutes_by_host.values())

    @property
    def overload_minutes_per_day(self) -> float:
        return self.total_overload_minutes / self.days if self.days else 0.0

    @property
    def longest_episode(self) -> int:
        return max((e.duration for e in self.episodes), default=0)

    def average_load_series(self) -> np.ndarray:
        """The thick 'average load of the whole system' line of Figs. 12-14."""
        if not self.host_series:
            raise ValueError("host series were not collected for this run")
        stacked = np.vstack([self.host_series[name] for name in self.host_names])
        return stacked.mean(axis=0)

    def actions_of_service(self, service_name: str) -> List[ActionOutcome]:
        return [a for a in self.actions if a.service_name == service_name]

    def action_counts(self) -> Dict[Action, int]:
        counts: Dict[Action, int] = {}
        for action in self.actions:
            counts[action.action] = counts.get(action.action, 0) + 1
        return counts

    # -- availability aggregates -------------------------------------------------------

    @property
    def mean_availability(self) -> float:
        """Unweighted mean availability across services (1.0 when none)."""
        if not self.availability:
            return 1.0
        values = [a.availability for a in self.availability.values()]
        return sum(values) / len(values)

    @property
    def total_down_minutes(self) -> int:
        return sum(a.down_minutes for a in self.availability.values())

    @property
    def mttr_minutes(self) -> float:
        """Mean downtime-episode duration across all services."""
        episodes = sum(a.episode_count for a in self.availability.values())
        if episodes == 0:
            return 0.0
        return self.total_down_minutes / episodes

    @property
    def total_host_down_minutes(self) -> int:
        return sum(self.host_down_minutes.values())

    @property
    def failed_action_count(self) -> int:
        return sum(1 for a in self.actions if a.status == "failed")

    @property
    def compensated_action_count(self) -> int:
        return sum(1 for a in self.actions if a.status == "compensated")

    @property
    def retried_action_count(self) -> int:
        """Actions that eventually succeeded but needed more than one attempt."""
        return sum(1 for a in self.actions if a.succeeded and a.retried)

    @property
    def fenced_action_count(self) -> int:
        """Actions a deposed leader issued that the platform rejected."""
        return sum(1 for a in self.actions if a.status == "fenced")

    def controller_fault_count(self, kind: str) -> int:
        """Fault records of one controller-fault kind (e.g. ``"controller-crash"``)."""
        return sum(1 for f in self.fault_records if f.kind == kind)

    # -- the SLA verdict ---------------------------------------------------------------

    def violates(self, sla: Optional[SlaPolicy] = None) -> bool:
        sla = sla if sla is not None else SlaPolicy()
        if self.overload_minutes_per_day > sla.max_overload_minutes_per_day:
            return True
        return self.longest_episode > sla.max_episode_minutes

    def summary(self) -> str:
        lines = [
            f"scenario={self.scenario_name} users={self.user_factor:.0%} "
            f"horizon={self.horizon}min",
            f"  overload minutes/day: {self.overload_minutes_per_day:.1f} "
            f"(longest episode {self.longest_episode} min)",
            f"  controller actions: {len(self.actions)} "
            f"(escalations: {self.escalation_count})",
            f"  availability: {self.mean_availability:.2%} mean "
            f"({self.total_down_minutes} service down-minutes, "
            f"MTTR {self.mttr_minutes:.1f} min)",
        ]
        if self.failed_action_count or self.compensated_action_count or (
            self.retried_action_count
        ):
            lines.append(
                f"  action faults: {self.retried_action_count} retried, "
                f"{self.compensated_action_count} compensated, "
                f"{self.failed_action_count} failed"
            )
        if self.controller_down_minutes or self.fenced_action_count:
            lines.append(
                f"  controller faults: {self.controller_down_minutes} "
                f"down-minutes, {self.fenced_action_count} fenced actions"
            )
        if self.pending_approval_count or self.expired_approval_count:
            lines.append(
                f"  approvals: {self.pending_approval_count} pending, "
                f"{self.expired_approval_count} expired unanswered"
            )
            if self.expired_approvals_by_service:
                rendered = ", ".join(
                    f"{name or '(unattributed)'}: {count}"
                    for name, count in sorted(
                        self.expired_approvals_by_service.items()
                    )
                )
                lines.append(f"  expired by service: {rendered}")
        return "\n".join(lines)


class ResultCollector:
    """Observes the platform each minute and builds a SimulationResult."""

    def __init__(
        self,
        platform: Platform,
        scenario_name: str,
        user_factor: float,
        sla: Optional[SlaPolicy] = None,
        collect_host_series: bool = True,
        collect_services: Optional[Set[str]] = None,
        start_minute: int = 0,
    ) -> None:
        self._platform = platform
        self._scenario_name = scenario_name
        self._user_factor = user_factor
        self._sla = sla if sla is not None else SlaPolicy()
        self._collect_host_series = collect_host_series
        self._collect_services = collect_services or set()
        self._start_minute = start_minute
        self._host_names = sorted(platform.hosts)
        self._series: Dict[str, List[float]] = {
            name: [] for name in self._host_names
        } if collect_host_series else {}
        self._service_samples: Dict[str, List[Tuple[int, str, str, float]]] = {
            name: [] for name in self._collect_services
        }
        self._overload_minutes: Dict[str, int] = {n: 0 for n in self._host_names}
        self._episodes: List[OverloadEpisode] = []
        self._open_episode_start: Dict[str, Optional[int]] = {
            n: None for n in self._host_names
        }
        self._service_names = sorted(platform.services)
        self._down_minutes: Dict[str, int] = {n: 0 for n in self._service_names}
        self._downtime_episodes: List[DowntimeEpisode] = []
        self._open_down_since: Dict[str, Optional[int]] = {
            n: None for n in self._service_names
        }
        self._host_down_minutes: Dict[str, int] = {n: 0 for n in self._host_names}
        self._ticks = 0
        #: executed actions, fed live by the platform bus's ``actions``
        #: topic instead of re-reading the audit log at finalize.  Seeded
        #: from the audit log so a collector attached mid-run (or after a
        #: resume) starts complete.
        self._actions: List[ActionOutcome] = list(platform.audit_log)
        platform.bus.subscribe(TOPIC_ACTIONS, self._on_action)

    def _on_action(self, envelope) -> None:
        self._actions.append(envelope.record.outcome)

    def track_service(self, name: str) -> None:
        """Start availability accounting for a service adopted mid-run.

        Multi-process federation: a cross-domain escrow can hand this
        domain an instance of a service the platform was not built with;
        without registration its down-minutes would silently go
        unaccounted.  Minutes before adoption count as up — the service
        was running (in its home domain) the whole time.
        """
        if name not in self._down_minutes:
            self._service_names = sorted(self._service_names + [name])
            self._down_minutes[name] = 0
            self._open_down_since[name] = None

    def observe(self, now: int) -> None:
        self._ticks += 1
        for name in self._host_names:
            host = self._platform.hosts[name]
            if not host.up:
                self._host_down_minutes[name] += 1
            load = host.cpu_load
            if self._collect_host_series:
                self._series[name].append(load)
            degraded = load > self._sla.overload_level and bool(
                host.running_instances
            )
            if degraded:
                self._overload_minutes[name] += 1
                if self._open_episode_start[name] is None:
                    self._open_episode_start[name] = now
            elif self._open_episode_start[name] is not None:
                start = self._open_episode_start[name]
                self._episodes.append(OverloadEpisode(name, start, now - 1))
                self._open_episode_start[name] = None
        for name in self._service_names:
            down = not self._platform.service(name).running_instances
            if down:
                self._down_minutes[name] += 1
                if self._open_down_since[name] is None:
                    self._open_down_since[name] = now
            elif self._open_down_since[name] is not None:
                start = self._open_down_since[name]
                self._downtime_episodes.append(DowntimeEpisode(name, start, now - 1))
                self._open_down_since[name] = None
        for service_name in self._collect_services:
            for instance in self._platform.service(service_name).running_instances:
                self._service_samples[service_name].append(
                    (
                        now,
                        instance.instance_id,
                        instance.host_name,
                        self._platform.hosts[instance.host_name].cpu_load,
                    )
                )

    def finalize(
        self,
        final_minute: int,
        escalation_count: int = 0,
        fault_records: Optional[List] = None,
        controller_down_minutes: int = 0,
        expired_approval_count: int = 0,
        pending_approval_count: int = 0,
        expired_approvals_by_service: Optional[Dict[str, int]] = None,
    ) -> SimulationResult:
        for name, start in self._open_episode_start.items():
            if start is not None:
                self._episodes.append(OverloadEpisode(name, start, final_minute))
        for name, start in self._open_down_since.items():
            if start is not None:
                self._downtime_episodes.append(
                    DowntimeEpisode(name, start, final_minute)
                )
                self._open_down_since[name] = None
        downtime_episodes = sorted(
            self._downtime_episodes, key=lambda e: (e.start, e.service_name)
        )
        availability = {
            name: ServiceAvailability(
                service_name=name,
                observed_minutes=self._ticks,
                down_minutes=self._down_minutes[name],
                episode_count=sum(
                    1 for e in downtime_episodes if e.service_name == name
                ),
            )
            for name in self._service_names
        }
        return SimulationResult(
            scenario_name=self._scenario_name,
            user_factor=self._user_factor,
            horizon=self._ticks,
            host_names=self._host_names,
            start_minute=self._start_minute,
            host_series={
                name: np.array(values) for name, values in self._series.items()
            },
            service_samples=self._service_samples,
            overload_minutes_by_host=dict(self._overload_minutes),
            episodes=sorted(self._episodes, key=lambda e: (e.start, e.host_name)),
            actions=list(self._actions),
            escalation_count=escalation_count,
            final_instance_counts={
                name: len(self._platform.service(name).running_instances)
                for name in self._platform.services
            },
            availability=availability,
            downtime_episodes=downtime_episodes,
            host_down_minutes=dict(self._host_down_minutes),
            fault_records=list(fault_records) if fault_records else [],
            controller_down_minutes=controller_down_minutes,
            expired_approval_count=expired_approval_count,
            pending_approval_count=pending_approval_count,
            expired_approvals_by_service=dict(expired_approvals_by_service or {}),
        )

    # -- durability (kill -9 and resume) -----------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-able collector state for a full-run snapshot."""
        return {
            "series": {name: list(values) for name, values in self._series.items()},
            "service_samples": {
                name: [list(sample) for sample in samples]
                for name, samples in self._service_samples.items()
            },
            "overload_minutes": dict(self._overload_minutes),
            "episodes": [[e.host_name, e.start, e.end] for e in self._episodes],
            "open_episode_start": dict(self._open_episode_start),
            "down_minutes": dict(self._down_minutes),
            "downtime_episodes": [
                [e.service_name, e.start, e.end] for e in self._downtime_episodes
            ],
            "open_down_since": dict(self._open_down_since),
            "host_down_minutes": dict(self._host_down_minutes),
            "ticks": self._ticks,
        }

    def restore_state(self, payload: Dict[str, object]) -> None:
        series = payload.get("series", {})
        if self._collect_host_series and not series:
            raise ValueError(
                "cannot resume with host-series collection: the killed run "
                "did not collect host series (it was started without "
                "--export); rerun both with the same collection settings"
            )
        self._series = {
            name: [float(v) for v in values]
            for name, values in series.items()  # type: ignore[union-attr]
        }
        if not self._collect_host_series:
            # the killed run collected, this one does not: drop the series
            self._series = {}
        self._service_samples = {
            name: [
                (int(t), str(i), str(h), float(load))
                for t, i, h, load in samples
            ]
            for name, samples in payload.get("service_samples", {}).items()  # type: ignore[union-attr]
        }
        self._overload_minutes = {
            name: int(v)
            for name, v in payload.get("overload_minutes", {}).items()  # type: ignore[union-attr]
        }
        self._episodes = [
            OverloadEpisode(str(h), int(s), int(e))
            for h, s, e in payload.get("episodes", [])  # type: ignore[union-attr]
        ]
        self._open_episode_start = {
            name: (None if start is None else int(start))
            for name, start in payload.get("open_episode_start", {}).items()  # type: ignore[union-attr]
        }
        self._down_minutes = {
            name: int(v)
            for name, v in payload.get("down_minutes", {}).items()  # type: ignore[union-attr]
        }
        # the snapshot's keys are authoritative: they include services
        # adopted (cross-domain escrow) after this collector was built
        self._service_names = sorted(self._down_minutes)
        self._downtime_episodes = [
            DowntimeEpisode(str(n), int(s), int(e))
            for n, s, e in payload.get("downtime_episodes", [])  # type: ignore[union-attr]
        ]
        self._open_down_since = {
            name: (None if start is None else int(start))
            for name, start in payload.get("open_down_since", {}).items()  # type: ignore[union-attr]
        }
        self._host_down_minutes = {
            name: int(v)
            for name, v in payload.get("host_down_minutes", {}).items()  # type: ignore[union-attr]
        }
        self._ticks = int(payload.get("ticks", 0))  # type: ignore[arg-type]
        # actions ride in the platform snapshot (the durable source of
        # truth); the bus subscription resumes from there
        self._actions = list(self._platform.audit_log)
