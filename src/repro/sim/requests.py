"""Request-path load propagation.

"As observed in existing SAP installations, the course of a request is
simulated as follows.  First, a request increases the load of the
affected service host for a short period.  Before handling the request
in the database, the lock management of the central instance (CI) is
requested.  Finally, the database sends the answer back to the
application server.  Since the load caused by a single request depends
on the specific service [...] our simulation system uses
service-specific parameters to simulate the impact of requests."

At one-minute resolution, the per-request round trip aggregates into
demand flows: every served user of an application service contributes
service-specific demand to its own application server, to the
subsystem's central instance (``ci_cost_per_user``) and to the
subsystem's database (``db_cost_per_user``), all modulated by the
service's daily profile.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.model import ServiceKind, ServiceSpec
from repro.serviceglobe.platform import Platform
from repro.sim.loadcurves import profile_value

__all__ = ["RequestFlows"]


class RequestFlows:
    """Derives central-instance and database demand from user activity."""

    def __init__(self, platform: Platform) -> None:
        self._platform = platform
        self._apps: List[ServiceSpec] = []
        self._ci_of: Dict[str, str] = {}
        self._db_of: Dict[str, str] = {}
        for spec in platform.landscape.services:
            if spec.kind is ServiceKind.APPLICATION_SERVER:
                self._apps.append(spec)
            elif spec.kind is ServiceKind.CENTRAL_INSTANCE:
                self._register_unique(self._ci_of, spec, "central instance")
            elif spec.kind is ServiceKind.DATABASE:
                self._register_unique(self._db_of, spec, "database")

    @staticmethod
    def _register_unique(mapping: Dict[str, str], spec: ServiceSpec, role: str) -> None:
        if spec.subsystem in mapping:
            raise ValueError(
                f"subsystem {spec.subsystem!r} has more than one {role}"
            )
        mapping[spec.subsystem] = spec.name

    def adopt(self, spec: ServiceSpec) -> None:
        """Track a dynamically adopted application service.

        If the service's subsystem has no central instance or database
        in this platform — the usual case for a cross-domain adoption,
        where the subsystem's CI/DB stay home — its request flow simply
        has no local target and contributes nothing here.
        """
        if spec.kind is ServiceKind.APPLICATION_SERVER and not any(
            existing.name == spec.name for existing in self._apps
        ):
            self._apps.append(spec)

    def ci_service_of(self, subsystem: str) -> str:
        return self._ci_of[subsystem]

    def db_service_of(self, subsystem: str) -> str:
        return self._db_of[subsystem]

    def derived_demands(self, now: int) -> Dict[str, float]:
        """Total demand forwarded to each CI and DB service this minute.

        Returns service name -> demand in performance index units
        (excluding the targets' own basic load).
        """
        ci_demand: Dict[str, float] = {name: 0.0 for name in self._ci_of.values()}
        db_demand: Dict[str, float] = {name: 0.0 for name in self._db_of.values()}
        for spec in self._apps:
            served_users = self._platform.service(spec.name).total_users
            if served_users == 0:
                continue
            activity = profile_value(spec.workload.profile, now)
            if activity <= 0.0:
                continue
            ci_name = self._ci_of.get(spec.subsystem)
            db_name = self._db_of.get(spec.subsystem)
            if ci_name is not None:
                ci_demand[ci_name] += (
                    served_users * spec.workload.ci_cost_per_user * activity
                )
            if db_name is not None:
                db_demand[db_name] += (
                    served_users * spec.workload.db_cost_per_user * activity
                )
        combined = dict(ci_demand)
        combined.update(db_demand)
        return combined
