"""The capacity sweep behind Table 7.

"We ran simulation series for the three scenarios and each time
increased the number of users by 5% until the system became overloaded."
The capacity of a scenario is the largest user factor whose run still
satisfies the SLA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.clock import PAPER_HORIZON_MINUTES
from repro.sim.results import SimulationResult, SlaPolicy
from repro.sim.runner import SimulationRunner
from repro.sim.scenarios import Scenario
from repro.sim.workload import NoiseParameters

__all__ = ["CapacityResult", "capacity_search"]


@dataclass
class CapacityResult:
    """Outcome of one scenario's 5%-step sweep."""

    scenario: Scenario
    #: Largest passing user factor (0.0 if even the reference load fails).
    max_factor: float
    #: (factor, passed, result) per step, in sweep order.
    steps: List[Tuple[float, bool, SimulationResult]] = field(default_factory=list)

    @property
    def max_users_percent(self) -> int:
        return round(self.max_factor * 100)

    def summary(self) -> str:
        lines = [f"{self.scenario.value}: {self.max_users_percent}% users"]
        for factor, passed, result in self.steps:
            verdict = "ok" if passed else "OVERLOADED"
            lines.append(
                f"  {factor:.0%}: {verdict} "
                f"({result.overload_minutes_per_day:.1f} overload min/day, "
                f"longest episode {result.longest_episode} min, "
                f"{len(result.actions)} actions)"
            )
        return "\n".join(lines)


def capacity_search(
    scenario: Scenario,
    step: float = 0.05,
    start_factor: float = 1.0,
    max_factor: float = 2.0,
    horizon: int = PAPER_HORIZON_MINUTES,
    seed: int = 7,
    sla: Optional[SlaPolicy] = None,
    noise: Optional[NoiseParameters] = None,
) -> CapacityResult:
    """Increase users in 5% steps until the system becomes overloaded.

    Runs are cheap to keep (`collect_host_series=False`), so every step's
    result is retained for reporting.
    """
    sla = sla if sla is not None else SlaPolicy()
    result = CapacityResult(scenario=scenario, max_factor=0.0)
    factor = start_factor
    while factor <= max_factor + 1e-9:
        runner = SimulationRunner(
            scenario,
            user_factor=factor,
            horizon=horizon,
            seed=seed,
            sla=sla,
            noise=noise,
            collect_host_series=False,
        )
        run_result = runner.run()
        passed = not run_result.violates(sla)
        result.steps.append((round(factor, 4), passed, run_result))
        if not passed:
            break
        result.max_factor = round(factor, 4)
        factor = round(factor + step, 4)
    return result
