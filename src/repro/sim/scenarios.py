"""The three evaluation scenarios (Section 5.1, Tables 5 and 6).

* **STATIC** — "a computing environment with all services being static
  [...] the standard environment used in most computing centers";
  no controller actions at all.
* **CONSTRAINED_MOBILITY** — databases and central instances are static;
  application servers support scale-in and scale-out; user sessions are
  sticky and rebalance only through slow fluctuation.
* **FULL_MOBILITY** — the BW database can be distributed across several
  servers (scale-in/scale-out); central instances and application
  servers can be moved (application servers additionally scale in all
  four directions); users are equally redistributed across all instances
  after every change.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping, Tuple

from repro.config.model import Action, LandscapeSpec, ServiceKind
from repro.serviceglobe.dispatcher import UserDistribution

__all__ = [
    "Scenario",
    "apply_scenario",
    "user_distribution_for",
    "controller_enabled_for",
    "ChaosProfile",
    "default_chaos",
    "controller_chaos",
]


class Scenario(enum.Enum):
    STATIC = "static"
    CONSTRAINED_MOBILITY = "constrained-mobility"
    FULL_MOBILITY = "full-mobility"


#: Table 5 — actions per service kind in the constrained-mobility scenario.
_CM_ACTIONS = {
    ServiceKind.APPLICATION_SERVER: frozenset({Action.SCALE_IN, Action.SCALE_OUT}),
    ServiceKind.CENTRAL_INSTANCE: frozenset(),
    ServiceKind.DATABASE: frozenset(),
}

#: Table 6 — actions per service kind in the full-mobility scenario.
_FM_ACTIONS = {
    ServiceKind.APPLICATION_SERVER: frozenset(
        {
            Action.SCALE_IN,
            Action.SCALE_OUT,
            Action.SCALE_UP,
            Action.SCALE_DOWN,
            Action.MOVE,
        }
    ),
    ServiceKind.CENTRAL_INSTANCE: frozenset(
        {Action.SCALE_UP, Action.SCALE_DOWN, Action.MOVE}
    ),
    ServiceKind.DATABASE: frozenset(),
}

#: Table 6 singles out the BW database: it "can be distributed across
#: several servers" via scale-in / scale-out.
_FM_BW_DATABASE_ACTIONS = frozenset({Action.SCALE_IN, Action.SCALE_OUT})
_FM_BW_DATABASE_MAX_INSTANCES = 3


def apply_scenario(landscape: LandscapeSpec, scenario: Scenario) -> LandscapeSpec:
    """A copy of the landscape with the scenario's allowed actions."""
    services = []
    for service in landscape.services:
        if scenario is Scenario.STATIC:
            allowed = frozenset()
            max_instances = service.constraints.max_instances
        elif scenario is Scenario.CONSTRAINED_MOBILITY:
            allowed = _CM_ACTIONS[service.kind]
            max_instances = service.constraints.max_instances
        else:
            allowed = _FM_ACTIONS[service.kind]
            max_instances = service.constraints.max_instances
            if service.kind is ServiceKind.DATABASE and service.subsystem == "BW":
                allowed = _FM_BW_DATABASE_ACTIONS
                max_instances = _FM_BW_DATABASE_MAX_INSTANCES
        services.append(
            dataclasses.replace(
                service,
                constraints=dataclasses.replace(
                    service.constraints,
                    allowed_actions=allowed,
                    max_instances=max_instances,
                ),
            )
        )
    return LandscapeSpec(
        name=f"{landscape.name}-{scenario.value}",
        servers=list(landscape.servers),
        services=services,
        initial_allocation=list(landscape.initial_allocation),
        controller=landscape.controller,
        domains=list(landscape.domains),
    )


def user_distribution_for(scenario: Scenario) -> UserDistribution:
    """Session policy of the scenario.

    Sticky everywhere except full mobility, where "the users are equally
    redistributed across all instances" after changes.
    """
    if scenario is Scenario.FULL_MOBILITY:
        return UserDistribution.REDISTRIBUTE
    return UserDistribution.STICKY


def controller_enabled_for(scenario: Scenario) -> bool:
    """The static scenario runs without the controller."""
    return scenario is not Scenario.STATIC


@dataclasses.dataclass(frozen=True)
class ChaosProfile:
    """Fault-injection knobs of a chaos run (the ``--chaos`` CLI flag).

    Groups the hostile-environment parameters in one place: instance
    and host fault rates for the :class:`~repro.sim.faults.FaultInjector`,
    monitoring-outage rates for the controller's staleness guards, and
    execution faults for the :class:`~repro.serviceglobe.executor.ActionExecutor`
    (flaky actions that need retries, commit failures that trigger move
    compensation).  One ``seed`` derives both the injector's and the
    executor's RNG streams so a chaos run is fully deterministic.
    """

    #: per instance-minute probabilities (mean time between failures of
    #: roughly half a simulated day / a full day — a hostile environment,
    #: far above the defaults used by plain fault tests)
    crash_probability: float = 1.0 / (12 * 60)
    hang_probability: float = 1.0 / (24 * 60)
    #: per host-minute probability of a full host crash
    host_crash_probability: float = 1.0 / (24 * 60)
    host_reboot_minutes: Tuple[int, int] = (30, 90)
    #: per host-minute probability that load reports stop arriving
    monitor_outage_probability: float = 1.0 / (8 * 60)
    monitor_outage_minutes: Tuple[int, int] = (3, 15)
    #: per-attempt probability that an issued action fails transiently
    action_failure_probability: float = 0.15
    #: probability that a relocation fails *after* the source was stopped
    #: (exercises the executor's compensation path)
    commit_failure_probability: float = 0.05
    #: mean action latencies in simulated minutes (empty = instantaneous)
    action_latency_means: Mapping[Action, float] = dataclasses.field(
        default_factory=dict
    )
    action_latency_jitter: bool = True
    #: per-minute probability the controller process itself dies (off by
    #: default; turning it on makes the runner manage the controller
    #: through a :class:`~repro.core.failover.ControllerSupervisor`)
    controller_crash_probability: float = 0.0
    controller_restart_minutes: Tuple[int, int] = (5, 15)
    #: per-minute probability the leader is partitioned from the lease
    #: store (with a hot standby this forces a fenced failover)
    leader_partition_probability: float = 0.0
    leader_partition_minutes: Tuple[int, int] = (10, 20)
    seed: int = 115

    @property
    def has_controller_faults(self) -> bool:
        return (
            self.controller_crash_probability > 0.0
            or self.leader_partition_probability > 0.0
        )


_DEFAULT_LATENCIES = {
    Action.START: 1.0,
    Action.STOP: 0.5,
    Action.SCALE_OUT: 1.5,
    Action.SCALE_IN: 0.5,
    Action.SCALE_UP: 2.0,
    Action.SCALE_DOWN: 2.0,
    Action.MOVE: 2.0,
}


def default_chaos(seed: int = 115) -> ChaosProfile:
    """The stock chaos profile used by ``autoglobe run --chaos`` and CI."""
    return ChaosProfile(seed=seed, action_latency_means=dict(_DEFAULT_LATENCIES))


def controller_chaos(seed: int = 115) -> ChaosProfile:
    """The stock profile plus controller crashes and leader partitions.

    A controller fault roughly every four hours (crash) / six hours
    (partition) — frequent enough that a half-day run exercises several
    recoveries and at least one fenced failover, rare enough that the
    landscape sees a normal fault mix in between.
    """
    return ChaosProfile(
        seed=seed,
        action_latency_means=dict(_DEFAULT_LATENCIES),
        controller_crash_probability=1.0 / (4 * 60),
        controller_restart_minutes=(5, 15),
        leader_partition_probability=1.0 / (6 * 60),
        leader_partition_minutes=(10, 20),
    )
