"""The workload model driving instance demands minute by minute.

Per tick the model:

1. applies user fluctuation for sticky sessions ("users infrequently log
   themselves off [...] and reconnect to the currently least-loaded
   server"),
2. writes the demand of every application-server instance: basic load
   plus per-user demand following the service's daily profile, with
   stochastic measurement noise and occasional load bursts
   ("unpredictable load bursts" that the watch-time filtering exists
   for), and
3. derives central-instance and database demand from the served user
   activity via :class:`repro.sim.requests.RequestFlows`.

Batch services (BW) are driven identically, with jobs taking the role of
users; capacity sweeps scale the per-job load instead of the job count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config.model import ServiceKind, ServiceSpec
from repro.serviceglobe.platform import Platform
from repro.serviceglobe.service import ServiceInstance
from repro.sim.loadcurves import profile_value
from repro.sim.requests import RequestFlows

__all__ = ["NoiseParameters", "WorkloadModel"]


@dataclass(frozen=True)
class NoiseParameters:
    """Stochastic components of the demand model.

    ``sigma`` is the per-minute multiplicative measurement noise;
    ``burst_probability`` starts a load burst per instance-minute, with a
    duration and relative amplitude drawn uniformly from the given
    ranges.  ``derived_sigma`` is the (smaller) noise on CI/DB demand.
    """

    sigma: float = 0.03
    burst_probability: float = 0.002
    burst_minutes: tuple = (3, 9)
    burst_amplitude: tuple = (0.15, 0.35)
    derived_sigma: float = 0.02


class _BurstState:
    """Per-instance burst bookkeeping."""

    __slots__ = ("remaining", "amplitude")

    def __init__(self) -> None:
        self.remaining = 0
        self.amplitude = 0.0


class WorkloadModel:
    """Drives one platform's demand; deterministic under a fixed seed."""

    def __init__(
        self,
        platform: Platform,
        seed: int = 7,
        noise: Optional[NoiseParameters] = None,
    ) -> None:
        self.platform = platform
        self.noise = noise if noise is not None else NoiseParameters()
        self._rng = np.random.default_rng(seed)
        self._flows = RequestFlows(platform)
        self._bursts: Dict[str, _BurstState] = {}
        self._app_specs: Dict[str, ServiceSpec] = {}
        self._derived_specs: Dict[str, ServiceSpec] = {}
        for spec in platform.landscape.services:
            if spec.kind is ServiceKind.APPLICATION_SERVER:
                self._app_specs[spec.name] = spec
            else:
                self._derived_specs[spec.name] = spec

    # -- setup -----------------------------------------------------------------------

    def initialize(self) -> None:
        """Place the reference user population onto the initial instances."""
        for spec in self._app_specs.values():
            definition = self.platform.service(spec.name)
            if spec.workload.users and definition.running_instances:
                self.platform.dispatcher.place_users(
                    definition.running_instances, spec.workload.users
                )

    # -- dynamic services (cross-domain adoption) --------------------------------------

    def adopt(self, spec: ServiceSpec) -> None:
        """Start driving demand for a service adopted after construction.

        Multi-process federation: an escrowed instance arriving from
        another domain brings its service spec along; registering it
        here makes the demand model treat its users exactly like those
        of a landscape-declared service.  Only application servers are
        escrowed.  Idempotent for retried attaches.
        """
        if spec.kind is not ServiceKind.APPLICATION_SERVER:
            raise ValueError(
                f"only application-server services can be adopted, "
                f"got {spec.kind.value!r} for {spec.name!r}"
            )
        if spec.name not in self._app_specs:
            self._app_specs[spec.name] = spec
            self._flows.adopt(spec)

    # -- noise ------------------------------------------------------------------------

    def _noise_factor(self, instance: ServiceInstance) -> float:
        noise = self.noise
        factor = 1.0 + float(self._rng.normal(0.0, noise.sigma))
        factor = min(max(factor, 1.0 - 3 * noise.sigma), 1.0 + 3 * noise.sigma)
        state = self._bursts.get(instance.instance_id)
        if state is None:
            state = _BurstState()
            self._bursts[instance.instance_id] = state
        if state.remaining > 0:
            state.remaining -= 1
            factor *= 1.0 + state.amplitude
        elif float(self._rng.random()) < noise.burst_probability:
            low, high = noise.burst_minutes
            state.remaining = int(self._rng.integers(low, high + 1))
            state.amplitude = float(self._rng.uniform(*noise.burst_amplitude))
        return factor

    def _derived_noise(self) -> float:
        sigma = self.noise.derived_sigma
        factor = 1.0 + float(self._rng.normal(0.0, sigma))
        return min(max(factor, 1.0 - 3 * sigma), 1.0 + 3 * sigma)

    # -- the per-minute update ------------------------------------------------------------

    def tick(self, now: int) -> None:
        self._fluctuate()
        self._update_application_demands(now)
        self._update_derived_demands(now)

    def _fluctuate(self) -> None:
        for spec in self._app_specs.values():
            rate = spec.workload.fluctuation_rate
            if rate <= 0.0:
                continue
            instances = self.platform.service(spec.name).running_instances
            self.platform.dispatcher.fluctuate(instances, rate, self._rng)

    def _update_application_demands(self, now: int) -> None:
        for spec in self._app_specs.values():
            workload = spec.workload
            activity = profile_value(workload.profile, now)
            for instance in self.platform.service(spec.name).running_instances:
                base = workload.basic_load
                user_demand = instance.users * workload.load_per_user * activity
                instance.demand = base + user_demand * self._noise_factor(instance)

    def _update_derived_demands(self, now: int) -> None:
        derived = self._flows.derived_demands(now)
        for service_name, demand in derived.items():
            spec = self._derived_specs[service_name]
            instances = self.platform.service(service_name).running_instances
            if not instances:
                continue
            share = demand / len(instances)
            for instance in instances:
                instance.demand = (
                    spec.workload.basic_load + share * self._derived_noise()
                )

    # -- durability (kill -9 and resume) -----------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-able model state: the RNG stream position and open bursts.

        Everything else the model reads lives on the platform (users,
        instances), which snapshots itself; restoring both makes a
        resumed run draw byte-identical demands.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "bursts": {
                instance_id: [state.remaining, state.amplitude]
                for instance_id, state in self._bursts.items()
            },
        }

    def restore_state(self, payload: Dict[str, object]) -> None:
        self._rng.bit_generator.state = payload["rng"]
        self._bursts = {}
        for instance_id, (remaining, amplitude) in payload.get(
            "bursts", {}
        ).items():  # type: ignore[union-attr]
            state = _BurstState()
            state.remaining = int(remaining)
            state.amplitude = float(amplitude)
            self._bursts[instance_id] = state

    # -- introspection ----------------------------------------------------------------------

    @property
    def flows(self) -> RequestFlows:
        return self._flows

    def total_users(self) -> int:
        return sum(
            self.platform.service(name).total_users for name in self._app_specs
        )
