"""The live management API: asyncio HTTP + WebSocket, stdlib only.

Two halves, meeting at a thread boundary:

* :class:`OpsBridge` lives on the *simulation* side.  The runner calls
  :meth:`OpsBridge.refresh` at every tick boundary, which rebuilds
  lock-protected JSON snapshots of the landscape (read off the columnar
  :class:`~repro.serviceglobe.landscape_state.LandscapeState`), open
  situations, approvals and the running summary.  The bridge also
  subscribes wildcard on the telemetry bus and forwards every envelope
  to registered listeners — still on the simulation thread, so the
  fan-out into the server's event loop is a single
  ``call_soon_threadsafe`` per envelope.
* :class:`OpsServer` runs an asyncio event loop on a background thread.
  GET endpoints serve the bridge's snapshots; ``/events`` upgrades to a
  WebSocket whose per-client bounded queues implement drop-counting
  backpressure (a stalled client loses events and is told how many, but
  can never block the simulation tick or starve other clients); the
  approve/reject POST endpoints validate against the approvals snapshot
  and post an :class:`~repro.core.alerts.ApprovalCommand` into the
  controller's thread-safe command queue, drained at the next tick.

The server never touches simulation state directly: snapshots flow
sim-thread -> bridge -> server, verdicts flow server -> command queue ->
tick.  With no verdicts posted, a served run is byte-identical to an
unserved one.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.alerts import ApprovalCommand
from repro.telemetry.bus import Envelope, EventBus, WILDCARD
from repro.telemetry.records import record_to_dict

__all__ = ["OpsBridge", "OpsServer"]

#: RFC 6455 handshake GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Events a slow WebSocket client may have in flight before drops begin.
CLIENT_QUEUE_LIMIT = 256

Listener = Callable[[Dict[str, Any]], None]


class OpsBridge:
    """Thread-safe snapshot mirror and command router for one run.

    ``control_plane`` is anything with the controller surface the runner
    drives: a plain :class:`~repro.core.autoglobe.AutoGlobeController`,
    a :class:`~repro.core.failover.ControllerSupervisor` or a
    :class:`~repro.core.federation.FederatedControlPlane` — all expose
    ``alerts.approvals`` and a thread-safe ``commands`` queue.
    """

    def __init__(
        self,
        platform: Any,
        control_plane: Any,
        run_info: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.platform = platform
        self.control_plane = control_plane
        self.run_info = dict(run_info or {})
        self._lock = threading.Lock()
        self._snapshots: Dict[str, Any] = {
            "landscape": {"time": None, "hosts": [], "services": []},
            "situations": {"time": None, "open": [], "handled": 0, "recent": []},
            "approvals": {"time": None, "requests": []},
            "summary": dict(self.run_info, time=None),
        }
        self._listeners: List[Listener] = []
        self._bus: Optional[EventBus] = None
        self.events_seen = 0
        self.commands_posted = 0

    # -- event fan-out (simulation thread) ------------------------------------------

    def attach(self, bus: EventBus) -> None:
        if self._bus is not None:
            raise RuntimeError("ops bridge is already attached")
        bus.subscribe(WILDCARD, self._on_envelope)
        self._bus = bus

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(WILDCARD, self._on_envelope)
            self._bus = None

    def add_listener(self, listener: Listener) -> None:
        with self._lock:
            self._listeners = self._listeners + [listener]

    def remove_listener(self, listener: Listener) -> None:
        with self._lock:
            self._listeners = [l for l in self._listeners if l is not listener]

    def _on_envelope(self, envelope: Envelope) -> None:
        self.events_seen += 1
        listeners = self._listeners
        if not listeners:
            return
        payload = {
            "seq": envelope.seq,
            "topic": envelope.topic,
            "record": record_to_dict(envelope.record),
        }
        for listener in listeners:
            listener(payload)

    # -- snapshots (rebuilt on the simulation thread) --------------------------------

    def _leaf_controllers(self) -> List[Any]:
        plane = self.control_plane
        shards = getattr(plane, "shards", None)
        planes = (
            [shard.controller for shard in shards.values()] if shards else [plane]
        )
        leaves = []
        for candidate in planes:
            if hasattr(candidate, "replicas"):  # a ControllerSupervisor
                active = candidate.active
                if active is not None:
                    leaves.append(active)
            else:
                leaves.append(candidate)
        return leaves

    def _landscape_snapshot(self, now: int) -> Dict[str, Any]:
        platform = self.platform
        state = platform.landscape_state
        hosts = []
        columnar = bool(getattr(state, "cache_enabled", False))
        if columnar:
            state.flush()
        host_ids = state.host_index.ids if columnar else {}
        for name, host in platform.hosts.items():
            if columnar:
                hid = host_ids[name]
                cpu = state.host_cpu_load(hid)
                mem = state.host_mem_load(hid)
            else:
                cpu = host.cpu_load
                mem = platform.host_mem_load(name)
            hosts.append(
                {
                    "name": name,
                    "up": bool(host.up),
                    "cpu_load": round(float(cpu), 6),
                    "mem_load": round(float(mem), 6),
                    "instances": [
                        instance.instance_id
                        for instance in host.running_instances
                    ],
                }
            )
        services = []
        service_ids = state.service_index.ids if columnar else {}
        for name in sorted(platform.services):
            service = platform.service(name)
            if columnar:
                sid = service_ids[name]
                running = state.service_running_count(sid)
                demand = state.service_demand(sid)
                load = state.service_load(sid)
            else:
                running = len(service.running_instances)
                demand = platform.service_demand(name)
                load = platform.service_load(name)
            services.append(
                {
                    "name": name,
                    "running_instances": int(running),
                    "demand": round(float(demand), 6),
                    "load": round(float(load), 6),
                }
            )
        return {"time": now, "hosts": hosts, "services": services}

    def _situations_snapshot(self, now: int) -> Dict[str, Any]:
        open_observations: List[Dict[str, Any]] = []
        handled = 0
        recent: List[str] = []
        for controller in self._leaf_controllers():
            lms = getattr(controller, "lms", None)
            if lms is not None:
                open_observations.extend(lms.snapshot_state())
            handled_list = getattr(controller, "situations_handled", [])
            handled += len(handled_list)
            recent.extend(str(situation) for situation in handled_list[-10:])
        return {
            "time": now,
            "open": open_observations,
            "handled": handled,
            "recent": recent[-20:],
        }

    def _approvals_snapshot(self, now: int) -> Dict[str, Any]:
        queue = self.control_plane.alerts.approvals
        requests = [
            {
                "request_id": request.request_id,
                "time": request.time,
                "description": request.description,
                "status": request.status,
                "answered_at": request.answered_at,
                "service_name": request.service_name,
                "executed": request.executed,
                "action": request.action,
            }
            for request in queue.requests
        ]
        return {"time": now, "requests": requests}

    def _summary_snapshot(self, now: int) -> Dict[str, Any]:
        queue = self.control_plane.alerts.approvals
        summary = dict(self.run_info)
        summary.update(
            time=now,
            events_seen=self.events_seen,
            actions=len(self.platform.audit_log),
            pending_approvals=len(queue.pending()),
            expired_approvals=len(queue.expired()),
            commands_posted=self.commands_posted,
        )
        return summary

    def refresh(self, now: int) -> None:
        """Rebuild every snapshot; called at tick boundaries."""
        landscape = self._landscape_snapshot(now)
        situations = self._situations_snapshot(now)
        approvals = self._approvals_snapshot(now)
        summary = self._summary_snapshot(now)
        with self._lock:
            self._snapshots["landscape"] = landscape
            self._snapshots["situations"] = situations
            self._snapshots["approvals"] = approvals
            self._snapshots["summary"] = summary

    def snapshot(self, name: str) -> Any:
        with self._lock:
            return self._snapshots[name]

    # -- verdicts (any thread) --------------------------------------------------------

    def post_verdict(self, request_id: str, approve: bool) -> Tuple[bool, str]:
        """Validate a verdict against the approvals snapshot and post it.

        Validation races the simulation by design (the snapshot is one
        tick old at worst); the controller's own drain re-checks and
        ignores verdicts for answered or expired requests.
        """
        with self._lock:
            requests = self._snapshots["approvals"]["requests"]
        known = {entry["request_id"]: entry for entry in requests}
        entry = known.get(request_id)
        if entry is None:
            return False, f"unknown approval request: {request_id}"
        if entry["status"] != "pending":
            return False, f"request {request_id} is already {entry['status']}"
        self.control_plane.commands.post(ApprovalCommand(request_id, approve))
        self.commands_posted += 1
        verdict = "approve" if approve else "reject"
        return True, f"{verdict} {request_id} queued for the next tick"


class _WSClient:
    """One connected ``/events`` subscriber."""

    _ids = 0

    def __init__(self) -> None:
        _WSClient._ids += 1
        self.id = _WSClient._ids
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=CLIENT_QUEUE_LIMIT)
        #: drops not yet surfaced in-band (reset when the notice sends)
        self.dropped = 0
        #: lifetime drops, for ``/stats`` — never reset
        self.dropped_total = 0
        self.delivered = 0
        self.closed = False


class OpsServer:
    """The asyncio HTTP/WebSocket server on its background thread.

    Endpoints::

        GET  /                    endpoint index
        GET  /state               landscape snapshot (columnar read)
        GET  /situations          open observations + recently handled
        GET  /approvals           every approval request and its status
        GET  /summary             run summary counters
        GET  /stats               server + per-client backpressure stats
        POST /approvals/<id>/approve
        POST /approvals/<id>/reject
        GET  /events              WebSocket: live envelope stream

    ``port=0`` binds an ephemeral port; :attr:`port` holds the real one
    after :meth:`start` returns.
    """

    def __init__(
        self, bridge: OpsBridge, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.bridge = bridge
        self.host = host
        self.port = port
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._clients: List[_WSClient] = []
        self.events_forwarded = 0

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> "OpsServer":
        if self._thread is not None:
            raise RuntimeError("ops server already started")
        self._thread = threading.Thread(
            target=self._run, name="ops-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("ops server failed to start within 10s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"ops server failed to start: {self._startup_error}"
            )
        return self

    def stop(self) -> None:
        self.bridge.remove_listener(self._on_event)
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - startup races
            self._startup_error = error
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self.bridge.add_listener(self._on_event)
        self._started.set()
        async with server:
            await self._stop_event.wait()
        for client in list(self._clients):
            client.closed = True

    # -- event fan-out ----------------------------------------------------------------

    def _on_event(self, payload: Dict[str, Any]) -> None:
        """Called on the simulation thread for every published envelope."""
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._fan_out, payload)
        except RuntimeError:
            pass  # server shutting down

    def _fan_out(self, payload: Dict[str, Any]) -> None:
        self.events_forwarded += 1
        for client in self._clients:
            if client.closed:
                continue
            try:
                client.queue.put_nowait(payload)
            except asyncio.QueueFull:
                # backpressure: the stalled client loses this event and
                # is told how many it lost once it drains again
                client.dropped += 1
                client.dropped_total += 1

    def stats(self) -> Dict[str, Any]:
        return {
            "events_forwarded": self.events_forwarded,
            "clients": [
                {
                    "id": client.id,
                    "queued": client.queue.qsize(),
                    "delivered": client.delivered,
                    "dropped": client.dropped_total,
                }
                for client in self._clients
            ],
        }

    # -- HTTP -------------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            try:
                method, path, _ = request_line.decode("latin-1").split(" ", 2)
            except ValueError:
                await self._respond(writer, 400, {"error": "malformed request"})
                return
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.decode("latin-1").partition(":")
                headers[key.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length:
                await reader.readexactly(length)
            if (
                path == "/events"
                and "websocket" in headers.get("upgrade", "").lower()
            ):
                await self._websocket(reader, writer, headers)
                return
            await self._route(writer, method.upper(), path)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, path: str
    ) -> None:
        if method == "GET":
            if path == "/":
                await self._respond(
                    writer,
                    200,
                    {
                        "endpoints": [
                            "/state",
                            "/situations",
                            "/approvals",
                            "/summary",
                            "/stats",
                            "/events (websocket)",
                            "POST /approvals/<id>/approve",
                            "POST /approvals/<id>/reject",
                        ]
                    },
                )
                return
            if path == "/state":
                await self._respond(writer, 200, self.bridge.snapshot("landscape"))
                return
            if path == "/situations":
                await self._respond(writer, 200, self.bridge.snapshot("situations"))
                return
            if path == "/approvals":
                await self._respond(writer, 200, self.bridge.snapshot("approvals"))
                return
            if path == "/summary":
                await self._respond(writer, 200, self.bridge.snapshot("summary"))
                return
            if path == "/stats":
                await self._respond(writer, 200, self.stats())
                return
        elif method == "POST":
            parts = path.strip("/").split("/")
            if (
                len(parts) == 3
                and parts[0] == "approvals"
                and parts[2] in ("approve", "reject")
            ):
                ok, message = self.bridge.post_verdict(
                    parts[1], parts[2] == "approve"
                )
                await self._respond(
                    writer, 200 if ok else 409, {"ok": ok, "message": message}
                )
                return
        await self._respond(writer, 404, {"error": f"no such endpoint: {path}"})

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: Any
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict"}
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- WebSocket --------------------------------------------------------------------

    async def _websocket(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
    ) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            await self._respond(writer, 400, {"error": "missing websocket key"})
            return
        accept = base64.b64encode(
            hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
        ).decode("latin-1")
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        client = _WSClient()
        self._clients.append(client)
        sender = asyncio.ensure_future(self._ws_sender(client, writer))
        try:
            await self._ws_receiver(client, reader, writer)
        finally:
            client.closed = True
            sender.cancel()
            try:
                await sender
            except (asyncio.CancelledError, ConnectionError):
                pass
            self._clients.remove(client)

    async def _ws_sender(
        self, client: _WSClient, writer: asyncio.StreamWriter
    ) -> None:
        hello = {"type": "hello", "endpoint": "/events"}
        await self._ws_send_text(writer, json.dumps(hello))
        while not client.closed:
            payload = await client.queue.get()
            if client.dropped:
                # surface the loss in-band before resuming the stream
                notice = {"type": "dropped", "count": client.dropped}
                client.dropped = 0
                await self._ws_send_text(writer, json.dumps(notice))
            await self._ws_send_text(writer, json.dumps(payload))
            client.delivered += 1

    @staticmethod
    async def _ws_send_text(writer: asyncio.StreamWriter, text: str) -> None:
        data = text.encode("utf-8")
        length = len(data)
        if length < 126:
            header = struct.pack("!BB", 0x81, length)
        elif length < 1 << 16:
            header = struct.pack("!BBH", 0x81, 126, length)
        else:
            header = struct.pack("!BBQ", 0x81, 127, length)
        writer.write(header + data)
        await writer.drain()

    async def _ws_receiver(
        self,
        client: _WSClient,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        while not client.closed:
            try:
                first = await reader.readexactly(2)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            opcode = first[0] & 0x0F
            masked = bool(first[1] & 0x80)
            length = first[1] & 0x7F
            if length == 126:
                length = struct.unpack("!H", await reader.readexactly(2))[0]
            elif length == 127:
                length = struct.unpack("!Q", await reader.readexactly(8))[0]
            mask = await reader.readexactly(4) if masked else b""
            payload = await reader.readexactly(length) if length else b""
            if masked:
                payload = bytes(
                    byte ^ mask[i % 4] for i, byte in enumerate(payload)
                )
            if opcode == 0x8:  # close
                writer.write(struct.pack("!BB", 0x88, 0))
                await writer.drain()
                return
            if opcode == 0x9:  # ping -> pong
                header = struct.pack("!BB", 0x8A, len(payload))
                writer.write(header + payload)
                await writer.drain()
            # text/binary/pong frames from clients are ignored: the
            # stream is one-way, verdicts go over POST
