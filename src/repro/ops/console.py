"""The live operator console: a stdlib client for the ops API.

:class:`OpsClient` wraps the HTTP endpoints and the ``/events``
WebSocket (client side of the RFC 6455 handshake, masked frames as the
spec requires); :func:`run_console` renders the landscape, open
situations and pending approvals, then tails the event stream — the
human half of the paper's semi-automatic mode, pointed at a live run::

    autoglobe run scenario.json --serve 127.0.0.1:8642 &
    autoglobe console --connect 127.0.0.1:8642
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import socket
import struct
from typing import Any, Dict, Iterator, Optional, TextIO, Tuple

__all__ = ["OpsClient", "render_snapshot", "run_console"]

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


class OpsClient:
    """Minimal HTTP + WebSocket client for one ops API endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- HTTP -------------------------------------------------------------------------

    def request(
        self, method: str, path: str
    ) -> Tuple[int, Any]:
        """One HTTP exchange; returns (status, decoded JSON body)."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(
                (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    "Connection: close\r\n"
                    "Content-Length: 0\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        status = int(status_line.split(" ")[1])
        return status, json.loads(body.decode("utf-8")) if body else None

    def get(self, path: str) -> Any:
        status, payload = self.request("GET", path)
        if status != 200:
            raise RuntimeError(f"GET {path} -> {status}: {payload}")
        return payload

    def state(self) -> Dict[str, Any]:
        return self.get("/state")

    def situations(self) -> Dict[str, Any]:
        return self.get("/situations")

    def approvals(self) -> Dict[str, Any]:
        return self.get("/approvals")

    def summary(self) -> Dict[str, Any]:
        return self.get("/summary")

    def approve(self, request_id: str) -> Tuple[bool, str]:
        status, payload = self.request(
            "POST", f"/approvals/{request_id}/approve"
        )
        return status == 200, str((payload or {}).get("message", ""))

    def reject(self, request_id: str) -> Tuple[bool, str]:
        status, payload = self.request(
            "POST", f"/approvals/{request_id}/reject"
        )
        return status == 200, str((payload or {}).get("message", ""))

    # -- WebSocket --------------------------------------------------------------------

    def events(
        self, max_events: Optional[int] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield decoded ``/events`` messages until the peer closes.

        ``max_events`` bounds the tail (tests and ``--once`` runs);
        ``None`` streams until the server goes away or the caller stops
        iterating (closing the generator sends a clean close frame).
        """
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        try:
            sock.sendall(
                (
                    "GET /events HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n"
                    "Upgrade: websocket\r\n"
                    "Connection: Upgrade\r\n"
                    f"Sec-WebSocket-Key: {key}\r\n"
                    "Sec-WebSocket-Version: 13\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            handshake = b""
            while b"\r\n\r\n" not in handshake:
                chunk = sock.recv(4096)
                if not chunk:
                    raise ConnectionError("server closed during handshake")
                handshake += chunk
            head, _, buffered = handshake.partition(b"\r\n\r\n")
            if b"101" not in head.split(b"\r\n", 1)[0]:
                raise ConnectionError(
                    f"websocket upgrade refused: {head.decode('latin-1')!r}"
                )
            expected = base64.b64encode(
                hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
            ).decode("latin-1")
            if f"sec-websocket-accept: {expected}".lower() not in (
                head.decode("latin-1").lower()
            ):
                raise ConnectionError("websocket accept key mismatch")
            count = 0
            buffer = bytearray(buffered)

            def read_exact(n: int) -> bytes:
                while len(buffer) < n:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise ConnectionError("server closed the stream")
                    buffer.extend(chunk)
                out = bytes(buffer[:n])
                del buffer[:n]
                return out

            while max_events is None or count < max_events:
                first = read_exact(2)
                opcode = first[0] & 0x0F
                length = first[1] & 0x7F
                if length == 126:
                    length = struct.unpack("!H", read_exact(2))[0]
                elif length == 127:
                    length = struct.unpack("!Q", read_exact(8))[0]
                payload = read_exact(length) if length else b""
                if opcode == 0x8:  # server close
                    return
                if opcode != 0x1:  # ignore ping/pong/continuation
                    continue
                message = json.loads(payload.decode("utf-8"))
                yield message
                count += 1
        finally:
            try:
                # masked close frame, as RFC 6455 requires of clients
                mask = os.urandom(4)
                sock.sendall(struct.pack("!BB", 0x88, 0x80) + mask)
                sock.close()
            except OSError:
                pass


def render_snapshot(
    state: Dict[str, Any],
    situations: Dict[str, Any],
    approvals: Dict[str, Any],
) -> str:
    """One text frame of the console view."""
    lines = [f"== landscape @ t={state.get('time')} =="]
    for host in state.get("hosts", []):
        status = "up" if host.get("up") else "DOWN"
        lines.append(
            f"  {host['name']:<12} {status:<4} "
            f"cpu={host['cpu_load']:.2f} mem={host['mem_load']:.2f} "
            f"instances={len(host.get('instances', []))}"
        )
    for service in state.get("services", []):
        lines.append(
            f"  service {service['name']:<12} "
            f"running={service['running_instances']} "
            f"load={service['load']:.2f}"
        )
    lines.append(
        f"== situations: {len(situations.get('open', []))} open, "
        f"{situations.get('handled', 0)} handled =="
    )
    for descriptor in situations.get("open", []):
        lines.append(
            f"  watching {descriptor.get('subject')} "
            f"({descriptor.get('kind')}) since t={descriptor.get('started_at')}"
        )
    pending = [
        request
        for request in approvals.get("requests", [])
        if request.get("status") == "pending"
    ]
    lines.append(f"== approvals: {len(pending)} pending ==")
    for request in pending:
        lines.append(
            f"  {request['request_id']}  {request['description']}"
        )
    return "\n".join(lines)


def run_console(
    host: str,
    port: int,
    once: bool = False,
    max_events: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Snapshot view, then (unless ``once``) tail the live event stream."""
    import sys

    out = stream if stream is not None else sys.stdout
    client = OpsClient(host, port)
    try:
        snapshot = render_snapshot(
            client.state(), client.situations(), client.approvals()
        )
    except (OSError, RuntimeError) as error:
        print(f"cannot reach ops API at {host}:{port}: {error}", file=out)
        return 1
    print(snapshot, file=out)
    if once:
        return 0
    print("== live events (ctrl-c to stop) ==", file=out)
    try:
        for message in client.events(max_events=max_events):
            kind = message.get("type")
            if kind == "hello":
                continue
            if kind == "dropped":
                print(f"  ... {message['count']} events dropped ...", file=out)
                continue
            record = message.get("record", {})
            print(
                f"  #{message.get('seq', '?'):<7}[{message.get('topic')}] "
                f"{record.get('type')} t={record.get('time')}",
                file=out,
            )
    except KeyboardInterrupt:
        pass
    except ConnectionError:
        print("  (stream closed by server)", file=out)
    return 0
