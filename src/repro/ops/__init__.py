"""The operations plane: persistent telemetry and the live management API.

``repro.ops`` is the layer every external surface plugs into:

* :mod:`repro.ops.store` — a batched, crash-tolerant SQLite event store
  subscribed wildcard on the telemetry bus; ``autoglobe verify``,
  ``autoglobe tail`` and multi-run comparison replay straight from it.
* :mod:`repro.ops.api` — a stdlib-only asyncio HTTP/WebSocket API
  serving landscape snapshots, open situations, pending approvals and a
  live ``/events`` stream; approve/reject verdicts are routed back into
  the controller through its thread-safe command queue.
* :mod:`repro.ops.console` — the terminal client tailing the WebSocket.

The package depends on :mod:`repro.telemetry` and :mod:`repro.core`
types only; nothing in :mod:`repro.analysis` or :mod:`repro.sim` is
imported here, so the verifier can read stores without a cycle.
"""

from repro.ops.store import STORE_MAGIC, TelemetryStore, is_store_file, read_store
from repro.ops.api import OpsBridge, OpsServer

__all__ = [
    "TelemetryStore",
    "read_store",
    "is_store_file",
    "STORE_MAGIC",
    "OpsBridge",
    "OpsServer",
]
