"""Persistent telemetry: a batched, crash-tolerant SQLite event store.

The store subscribes wildcard on the run's :class:`~repro.telemetry.bus.
EventBus` and persists every envelope with its global sequence number.
Durability follows the journal's discipline (PR 3) adapted to SQLite:

* **Batched transactional flushes.**  Envelopes buffer in memory and
  commit in tick-aligned transactions: the buffer flushes when the
  record time advances past the flush interval (``flush_ticks``
  simulated minutes, so a batch never splits a tick), at a size cap, or
  whenever a caller needs durability now (:meth:`flush` — the runner
  flushes every tick while serving the live ops API, and before every
  run snapshot).  A SIGKILL mid-flush loses at most the uncommitted
  batch — SQLite's WAL guarantees every committed batch survives
  intact, never torn.
* **Torn-batch-tolerant reopen.**  Reopening a killed store needs no
  repair step: whatever committed is there, gapless and in order;
  :func:`read_store` verifies gaplessness before calling a stream
  complete.
* **Resumable cursors.**  ``last_seq``/``truncate_after`` let a resumed
  run (snapshot + journal replay) drop the abandoned timeline past the
  snapshot and append seamlessly, exactly like the trace writer's
  resume path.

One store file can hold several *sources* (multi-process federation:
the server forwards every agent's clocked events into the same store);
:func:`read_store` merges multi-source stores with the same Lamport
ordering as :func:`repro.telemetry.trace.merge_traces`.
"""

from __future__ import annotations

import dataclasses
import enum
import io
import json
import pickle
import sqlite3
import threading
import time as _time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.telemetry.bus import Envelope, EventBus, WILDCARD
from repro.telemetry.records import ActionEvent, record_to_dict
from repro.telemetry.trace import TraceEvent, TraceHeader, merge_traces

__all__ = [
    "STORE_MAGIC",
    "STORE_SCHEMA_VERSION",
    "TelemetryStore",
    "read_store",
    "is_store_file",
    "tail_store",
]

PathLike = Union[str, Path]

#: Every SQLite database file starts with these 16 bytes; the verifier
#: sniffs them to route a path to :func:`read_store` instead of the
#: JSONL trace reader.
STORE_MAGIC = b"SQLite format 3\x00"

#: Bump on any incompatible change to the tables below.
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    source TEXT NOT NULL DEFAULT '',
    seq    INTEGER NOT NULL,
    topic  TEXT NOT NULL,
    time   INTEGER,
    clock  INTEGER,
    record BLOB NOT NULL,
    PRIMARY KEY (source, seq)
);
CREATE INDEX IF NOT EXISTS events_topic ON events (topic, source, seq);
"""


def is_store_file(path: PathLike) -> bool:
    """True when the file starts with SQLite's magic header."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(STORE_MAGIC)) == STORE_MAGIC
    except OSError:
        return False


#: record class -> its dataclass field names, resolved once per type
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}


def _payload_of(record: Any) -> Dict[str, Any]:
    """The ingest hot path's :func:`record_to_dict`.

    Parses to the exact same dict (the byte-identity tests pin this):
    the field list is cached per record class instead of re-resolved per
    event, and tuples are left for the JSON encoder, which writes them
    as arrays anyway.  Action events keep the slow path — their outcome
    flattening is bespoke and they are rare.
    """
    if isinstance(record, ActionEvent):
        return record_to_dict(record)
    cls = type(record)
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(field.name for field in dataclasses.fields(record))
        _FIELD_NAMES[cls] = names
    payload: Dict[str, Any] = {"type": cls.__name__}
    for name in names:
        value = getattr(record, name)
        if isinstance(value, enum.Enum):
            value = value.value
        payload[name] = value
    return payload


def _encode_record(payload: Dict[str, Any]) -> bytes:
    """Serialize one record payload for the ``record`` column.

    Pickle protocol 5 instead of JSON text: the stream is dominated by
    full-precision load-report floats, whose decimal rendering is ~4x
    the ingest cost and ~16x the replay cost of the binary form.  The
    payloads are plain data (dicts, sequences, scalars), which pickle
    round-trips exactly and :class:`_DataUnpickler` reads back without
    ever resolving a class.
    """
    return pickle.dumps(payload, 5)


class _DataUnpickler(pickle.Unpickler):
    """Unpickler for data-only payloads: any class lookup is refused.

    Plain containers and scalars deserialize without ``find_class``, so
    a well-formed store never trips this; a crafted record blob cannot
    smuggle in a constructor.
    """

    def find_class(self, module: str, name: str):  # pragma: no cover
        raise pickle.UnpicklingError(
            f"store record blobs hold plain data only "
            f"(refusing {module}.{name})"
        )


def _json_shape(value: Any) -> Any:
    """Rebuild the JSON value shape (tuples become lists, recursively).

    Replayed store events must compare equal to the JSONL trace reader's
    output, where every sequence comes back as a list.
    """
    if isinstance(value, (list, tuple)):
        return [_json_shape(item) for item in value]
    if isinstance(value, dict):
        return {key: _json_shape(item) for key, item in value.items()}
    return value


def _decode_record(blob: Any) -> Dict[str, Any]:
    if isinstance(blob, bytes):
        return _json_shape(_DataUnpickler(io.BytesIO(blob)).load())
    return json.loads(blob)


class TelemetryStore:
    """Wildcard bus subscriber persisting every envelope to SQLite.

    Single-process runs attach the store to the platform bus (exactly
    like :class:`~repro.telemetry.trace.TraceWriter`); the federation
    server instead calls :meth:`insert_events` with each agent's
    forwarded, Lamport-stamped rows (first write per ``(source, seq)``
    wins, mirroring the wire dedup).

    ``cross_thread`` relaxes SQLite's same-thread check for callers that
    serialize access themselves; all mutating paths here additionally
    hold one lock, so the federation server's reader threads can share a
    store.
    """

    #: flush regardless of tick boundaries once this many rows buffered
    MAX_BATCH = 1024
    BUSY_TIMEOUT_MS = 5_000
    #: simulated minutes a batch spans before it commits (tick-aligned)
    FLUSH_TICKS = 16

    def __init__(
        self,
        path: PathLike,
        cross_thread: bool = False,
        flush_ticks: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            str(self.path), check_same_thread=not cross_thread
        )
        self._connection.execute(f"PRAGMA busy_timeout = {self.BUSY_TIMEOUT_MS}")
        self._connection.execute("PRAGMA journal_mode = WAL")
        self._connection.execute("PRAGMA synchronous = NORMAL")
        # no mid-run checkpoints: they stall a flush to copy the WAL
        # back into the main file while readers may hold it open; the
        # WAL stays valid for read-only consumers and close() truncates
        self._connection.execute("PRAGMA wal_autocheckpoint = 0")
        # autocommit mode; batch transactions are opened explicitly
        self._connection.isolation_level = None
        self._connection.executescript(_SCHEMA)
        self._set_meta("schema_version", str(STORE_SCHEMA_VERSION))
        self._bus: Optional[EventBus] = None
        #: (source, seq, topic, time, clock, record-blob) rows awaiting commit
        self._buffer: List[Tuple[str, int, str, Optional[int], Optional[int], bytes]] = []
        self._buffer_tick: Optional[int] = None
        self.flush_ticks = (
            int(flush_ticks) if flush_ticks is not None else self.FLUSH_TICKS
        )
        if self.flush_ticks < 1:
            raise ValueError("flush_ticks must be at least one tick")
        self.inserted = 0
        self._closed = False

    # -- meta -------------------------------------------------------------------------

    def _set_meta(self, key: str, value: str) -> None:
        self._connection.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def _get_meta(self, key: str) -> Optional[str]:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    # -- bus attachment ---------------------------------------------------------------

    def attach(self, bus: EventBus) -> None:
        """Subscribe wildcard; record whether the stream is complete.

        Completeness mirrors the trace writer: attached before the first
        publish means the store will hold *every* envelope the bus ever
        publishes.
        """
        if self._bus is not None:
            raise RuntimeError("telemetry store is already attached")
        with self._lock:
            self._set_meta("complete", "1" if bus.last_seq == 0 else "0")
        bus.subscribe(WILDCARD, self._on_envelope)
        self._bus = bus

    def attach_resumed(self, bus: EventBus) -> None:
        """Re-attach after a crash-resume without touching completeness.

        The resume path truncates the store past the snapshot's sequence
        and fast-forwards the bus to it first, so appended rows continue
        the sequence gaplessly.
        """
        if self._bus is not None:
            raise RuntimeError("telemetry store is already attached")
        bus.subscribe(WILDCARD, self._on_envelope)
        self._bus = bus

    def _on_envelope(self, envelope: Envelope) -> None:
        record = _payload_of(envelope.record)
        tick = record.get("time")
        tick = int(tick) if isinstance(tick, int) else None
        if self._buffer and (
            len(self._buffer) >= self.MAX_BATCH
            or (
                tick is not None
                and self._buffer_tick is not None
                and tick - self._buffer_tick >= self.flush_ticks
            )
        ):
            # the new tick's first event triggers the flush, so batches
            # never split a tick
            self.flush()
        if self._buffer_tick is None and tick is not None:
            self._buffer_tick = tick
        self._buffer.append(
            (
                "",
                envelope.seq,
                envelope.topic,
                tick,
                None,
                _encode_record(record),
            )
        )

    # -- writes -----------------------------------------------------------------------

    def flush(self) -> int:
        """Commit the buffered batch in one transaction; rows committed."""
        if not self._buffer:
            return 0
        rows, self._buffer = self._buffer, []
        self._buffer_tick = None
        return self._commit_rows(rows)

    def _commit_rows(
        self,
        rows: List[Tuple[str, int, str, Optional[int], Optional[int], str]],
    ) -> int:
        with self._lock:
            connection = self._connection
            connection.execute("BEGIN IMMEDIATE")
            try:
                before = connection.total_changes
                connection.executemany(
                    "INSERT OR IGNORE INTO events "
                    "(source, seq, topic, time, clock, record) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    rows,
                )
                inserted = connection.total_changes - before
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
        self.inserted += inserted
        return inserted

    def insert_events(
        self,
        source: str,
        rows: List[Tuple[int, str, Dict[str, Any], Optional[int]]],
    ) -> int:
        """Persist forwarded ``(seq, topic, record, clock)`` rows.

        First write per ``(source, seq)`` wins — retransmitted wire
        batches deduplicate exactly as the federation server's in-memory
        collector does.
        """
        encoded = []
        for seq, topic, record, clock in rows:
            tick = record.get("time")
            encoded.append(
                (
                    source,
                    int(seq),
                    str(topic),
                    int(tick) if isinstance(tick, int) else None,
                    int(clock) if clock is not None else None,
                    _encode_record(record),
                )
            )
        if not encoded:
            return 0
        return self._commit_rows(encoded)

    # -- cursors ----------------------------------------------------------------------

    def last_seq(self, source: str = "") -> int:
        with self._lock:
            row = self._connection.execute(
                "SELECT MAX(seq) FROM events WHERE source = ?", (source,)
            ).fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    def truncate_after(self, seq: int, source: str = "") -> int:
        """Drop rows past ``seq`` (a resumed run abandons that timeline)."""
        with self._lock:
            connection = self._connection
            connection.execute("BEGIN IMMEDIATE")
            try:
                cursor = connection.execute(
                    "DELETE FROM events WHERE source = ? AND seq > ?",
                    (source, seq),
                )
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
        return cursor.rowcount

    def mark_complete(self, complete: bool) -> None:
        with self._lock:
            self._set_meta("complete", "1" if complete else "0")

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Flush the tail batch, detach from the bus and close the file."""
        if self._closed:
            return
        if self._bus is not None:
            self._bus.unsubscribe(WILDCARD, self._on_envelope)
            self._bus = None
        self.flush()
        with self._lock:
            self._closed = True
            try:
                # fold the run's whole WAL back into the main file so a
                # closed store is one self-contained .db; best-effort —
                # a concurrent reader just leaves the WAL for later
                self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass
            self._connection.close()

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- reading ------------------------------------------------------------------------


def _open_readonly(path: PathLike) -> sqlite3.Connection:
    connection = sqlite3.connect(
        f"file:{Path(path)}?mode=ro", uri=True
    )
    connection.execute(f"PRAGMA busy_timeout = {TelemetryStore.BUSY_TIMEOUT_MS}")
    return connection


def _gapless(seqs: List[int]) -> bool:
    return not seqs or (seqs[0] == 1 and seqs[-1] == len(seqs))


def read_store(path: PathLike) -> Tuple[TraceHeader, List[TraceEvent]]:
    """Replay a store as (header, events) — the trace reader's contract.

    Single-source stores come back in global sequence order; multi-source
    stores are merged by ``(clock, source, seq)`` and renumbered, exactly
    like :func:`~repro.telemetry.trace.merge_traces` does for per-domain
    trace files.  The header's ``complete`` flag requires both the
    writer's attach-time claim and per-source gapless sequences — a
    truncated or torn store can pass for partial, never for complete.
    """
    connection = _open_readonly(path)
    try:
        meta = {
            str(key): str(value)
            for key, value in connection.execute("SELECT key, value FROM meta")
        }
        version = int(meta.get("schema_version", "0"))
        if version > STORE_SCHEMA_VERSION:
            raise ValueError(
                f"store schema version {version} is newer than the "
                f"supported version {STORE_SCHEMA_VERSION}"
            )
        by_source: Dict[str, List[TraceEvent]] = {}
        for source, seq, topic, clock, record in connection.execute(
            "SELECT source, seq, topic, clock, record FROM events "
            "ORDER BY source, seq"
        ):
            by_source.setdefault(str(source), []).append(
                TraceEvent(
                    seq=int(seq),
                    topic=str(topic),
                    record=_decode_record(record),
                    clock=int(clock) if clock is not None else None,
                )
            )
    finally:
        connection.close()
    complete = meta.get("complete") == "1" and all(
        _gapless([event.seq for event in events])
        for events in by_source.values()
    )
    header = TraceHeader(schema_version=1, complete=complete)
    if not by_source:
        return header, []
    if len(by_source) == 1:
        (events,) = by_source.values()
        return header, events
    merged = merge_traces(sorted(by_source.items()))
    return header, merged


def tail_store(
    path: PathLike,
    topic: Optional[str] = None,
    since_seq: int = 0,
    follow: bool = False,
    poll_interval: float = 0.5,
    stop: Optional[threading.Event] = None,
) -> Iterator[Tuple[str, TraceEvent]]:
    """Yield ``(source, event)`` pairs past a cursor, optionally live.

    The offline mode yields whatever the store holds and returns; with
    ``follow`` the cursor polls for freshly committed batches until
    ``stop`` is set (or forever — the CLI wires SIGINT to it).  The
    cursor is per source, so interleaved multi-source stores tail in
    commit order per source without missing rows.
    """
    cursors: Dict[str, int] = {}
    query = (
        "SELECT source, seq, topic, clock, record FROM events "
        "WHERE source = ? AND seq > ? "
    )
    args_extra: Tuple[Any, ...] = ()
    if topic is not None:
        query += "AND topic = ? "
        args_extra = (topic,)
    query += "ORDER BY seq"
    while True:
        connection = _open_readonly(path)
        try:
            sources = [
                str(row[0])
                for row in connection.execute(
                    "SELECT DISTINCT source FROM events ORDER BY source"
                )
            ]
            for source in sources:
                cursor = cursors.get(source, since_seq)
                for row in connection.execute(
                    query, (source, cursor) + args_extra
                ):
                    event = TraceEvent(
                        seq=int(row[1]),
                        topic=str(row[2]),
                        record=_decode_record(row[4]),
                        clock=int(row[3]) if row[3] is not None else None,
                    )
                    yield str(row[0]), event
                # advance past everything seen for this source, filtered
                # or not, so a topic filter does not re-scan old rows
                tail_row = connection.execute(
                    "SELECT MAX(seq) FROM events WHERE source = ?", (source,)
                ).fetchone()
                if tail_row and tail_row[0] is not None:
                    cursors[source] = max(cursor, int(tail_row[0]))
        finally:
            connection.close()
        if not follow or (stop is not None and stop.is_set()):
            return
        _time.sleep(poll_interval)
