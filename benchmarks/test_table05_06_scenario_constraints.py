"""Tables 5 and 6: services and their possible actions per scenario.

Regenerates both constraint tables from the scenario application logic
and checks them against the paper's rows.
"""

import pytest

from repro.config.builtin import paper_landscape
from repro.config.model import Action
from repro.sim.scenarios import Scenario, apply_scenario


def render_scenario_table(scenario):
    landscape = apply_scenario(paper_landscape(), scenario)
    rows = []
    for service in landscape.services:
        constraints = service.constraints
        conditions = []
        if constraints.exclusive:
            conditions.append("exclusive")
        if constraints.min_performance_index:
            conditions.append(f"min. perf. index {constraints.min_performance_index:g}")
        if constraints.min_instances > 1:
            conditions.append(f"min. {constraints.min_instances} instances")
        actions = sorted(a.value for a in constraints.allowed_actions)
        rows.append((service.name, "; ".join(conditions) or "-",
                     ", ".join(actions) or "-"))
    return landscape, rows


def print_table(title, rows):
    print(f"\n{title}")
    print(f"{'Service':<10} {'Conditions':<40} {'Possible actions'}")
    for name, conditions, actions in rows:
        print(f"{name:<10} {conditions:<40} {actions}")


@pytest.mark.benchmark(group="table05")
def test_table05_constrained_mobility(benchmark):
    landscape, rows = benchmark(
        lambda: render_scenario_table(Scenario.CONSTRAINED_MOBILITY)
    )
    print_table("Table 5 — services in the CM scenario", rows)

    by_name = {name: actions for name, __, actions in rows}
    # database ERP: exclusive, min perf index 5, no actions
    db_erp = next(r for r in rows if r[0] == "DB-ERP")
    assert "exclusive" in db_erp[1] and "min. perf. index 5" in db_erp[1]
    assert by_name["DB-ERP"] == "-"
    # databases BW, CRM: min perf index 5, no actions
    for name in ("DB-BW", "DB-CRM"):
        assert by_name[name] == "-"
    # central instances: no actions
    for name in ("CI-ERP", "CI-CRM", "CI-BW"):
        assert by_name[name] == "-"
    # application servers: scale-in, scale-out; min 2 FI / min 2 LES
    for name in ("FI", "LES", "PP", "HR", "CRM", "BW"):
        assert by_name[name] == "scaleIn, scaleOut"
    assert landscape.service("FI").constraints.min_instances == 2
    assert landscape.service("LES").constraints.min_instances == 2


@pytest.mark.benchmark(group="table06")
def test_table06_full_mobility(benchmark):
    landscape, rows = benchmark(
        lambda: render_scenario_table(Scenario.FULL_MOBILITY)
    )
    print_table("Table 6 — services in the FM scenario", rows)

    by_name = {name: actions for name, __, actions in rows}
    # the ERP and CRM databases stay pinned
    assert by_name["DB-ERP"] == "-"
    assert by_name["DB-CRM"] == "-"
    # the BW database can be distributed across several servers
    assert by_name["DB-BW"] == "scaleIn, scaleOut"
    assert landscape.service("DB-BW").constraints.max_instances > 1
    # central instances can be relocated
    for name in ("CI-ERP", "CI-CRM", "CI-BW"):
        assert by_name[name] == "move, scaleDown, scaleUp"
    # application servers are fully mobile
    for name in ("FI", "LES", "PP", "HR", "CRM", "BW"):
        assert by_name[name] == "move, scaleDown, scaleIn, scaleOut, scaleUp"
