"""Ablation: fuzzy controller vs. a crisp threshold-rule controller.

The paper positions AutoGlobe against vendor infrastructures whose
"automatic administration [...] is mostly rule-based and not as flexible
as our fuzzy controller".  The crisp baseline
(:class:`repro.core.crisp.CrispThresholdController`) shares thresholds,
watch times and protection with AutoGlobe but always reacts the same way
(scale-out to the least-loaded host; scale-in when idle), with no graded
applicability and no fuzzy host scoring.
"""

import pytest

from repro.core.crisp import CrispThresholdController
from repro.sim.clock import MINUTES_PER_DAY
from repro.sim.runner import SimulationRunner
from repro.sim.scenarios import Scenario


def run_controller(crisp: bool):
    factory = None
    if crisp:
        factory = lambda platform, settings, enabled: CrispThresholdController(
            platform, settings, enabled
        )
    runner = SimulationRunner(
        Scenario.CONSTRAINED_MOBILITY,
        user_factor=1.15,
        horizon=2 * MINUTES_PER_DAY,
        seed=7,
        collect_host_series=False,
        controller_factory=factory,
    )
    return runner.run()


@pytest.mark.benchmark(group="ablation")
def test_ablation_crisp_vs_fuzzy(benchmark):
    def experiment():
        return run_controller(crisp=False), run_controller(crisp=True)

    fuzzy, crisp = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\nAblation — fuzzy vs. crisp controller (CM @ 115%, two days)")
    for label, result in (("fuzzy", fuzzy), ("crisp", crisp)):
        print(
            f"  {label}: {result.overload_minutes_per_day:6.0f} degraded min/day, "
            f"{len(result.actions):>3} actions, "
            f"longest episode {result.longest_episode} min"
        )

    # the fuzzy controller's graded action/host choice handles the same
    # workload with clearly less degraded service
    assert fuzzy.overload_minutes_per_day < 0.7 * crisp.overload_minutes_per_day
