"""Figure 5 / Section 3: max-min inference and leftmost-max defuzzification.

The worked example: with cpuLoad grades (0, 0, 0.8) and performance
index grades (0, 0.6, 0.3), the scale-up rule fires at
min(0.8, max(0, 0.6)) = 0.6, the scale-out rule at min(0.8, 0.3) = 0.3;
after clipping the ``applicable`` ramp and taking the leftmost maximum,
"the controller will favor the scale-up action for execution".
"""

import pytest

from repro.core.action_selection import ActionSelector
from repro.fuzzy import (
    FuzzyController,
    LinguisticTerm,
    LinguisticVariable,
    RampUp,
    RuleBase,
    Trapezoid,
    parse_rules,
)

PAPER_RULES = """
IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium)
THEN scaleUp IS applicable
IF cpuLoad IS high AND performanceIndex IS high
THEN scaleOut IS applicable
"""


def build_paper_controller():
    """Variables calibrated so the example's grades come out exactly."""
    cpu = LinguisticVariable(
        "cpuLoad",
        [
            LinguisticTerm("low", Trapezoid(0.0, 0.0, 0.2, 0.4)),
            LinguisticTerm("medium", Trapezoid(0.2, 0.35, 0.5, 0.7)),
            LinguisticTerm("high", Trapezoid(0.5, 1.0, 1.0, 1.0)),
        ],
        domain=(0.0, 1.0),
    )
    pi = LinguisticVariable(
        "performanceIndex",
        [
            LinguisticTerm("low", Trapezoid(0.0, 0.0, 1.0, 3.0)),
            LinguisticTerm("medium", Trapezoid(1.0, 3.0, 5.0, 10.0)),
            LinguisticTerm("high", Trapezoid(5.5, 10.5, 10.5, 10.5)),
        ],
        domain=(0.0, 10.0),
    )
    outputs = [
        LinguisticVariable(
            name, [LinguisticTerm("applicable", RampUp(0.0, 1.0))], domain=(0.0, 1.0)
        )
        for name in ("scaleUp", "scaleOut")
    ]
    return FuzzyController(
        [cpu, pi], outputs, RuleBase("paper", list(parse_rules(PAPER_RULES)))
    )


@pytest.mark.benchmark(group="fig05")
def test_fig05_worked_example(benchmark):
    controller = build_paper_controller()
    result = benchmark(
        lambda: controller.evaluate({"cpuLoad": 0.9, "performanceIndex": 7.0})
    )

    print("\nFigure 5 — max-min inference worked example")
    print("  measurements: cpuLoad=0.9, performanceIndex grades (0, 0.6, 0.3)")
    for name, strength in [(f.rule.output_variable, f.strength) for f in result.fired]:
        print(f"  rule for {name}: firing strength {strength:.2f}")
    for action, value in result.ranked():
        print(f"  defuzzified {action}: {value:.2f}")
    print(f"  favored action: {result.best()}")

    assert result.outputs["scaleUp"] == pytest.approx(0.6, abs=1e-3)
    assert result.outputs["scaleOut"] == pytest.approx(0.3, abs=1e-3)
    assert result.best() == "scaleUp"


@pytest.mark.benchmark(group="fig05")
def test_fig05_full_action_selector_agrees(benchmark):
    """The production ActionSelector reproduces the same preference for
    a heavily loaded weak host."""
    selector = ActionSelector()
    from repro.core.action_selection import ActionContext
    from repro.monitoring.lms import SituationKind

    context = ActionContext(
        "FI",
        "FI#1",
        {
            "cpuLoad": 0.9,
            "memLoad": 0.3,
            "performanceIndex": 2.0,
            "instanceLoad": 0.85,
            "serviceLoad": 0.5,
            "instancesOnServer": 1.0,
            "instancesOfService": 3.0,
        },
    )
    ranked = benchmark(
        lambda: selector.rank(SituationKind.SERVICE_OVERLOADED, context)
    )
    print("\nproduction selector ranking (weak overloaded host):")
    for entry in ranked[:4]:
        print(f"  {entry}")
    assert ranked[0].action.value == "scaleUp"
