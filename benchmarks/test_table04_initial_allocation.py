"""Table 4 and Figure 11: reference users and the initial allocation.

Regenerates Table 4 (users and instances per service) from the built-in
landscape and verifies that booting the platform reproduces Figure 11's
service-to-server allocation on the 19 servers.
"""

import pytest

from repro.config.builtin import INITIAL_ALLOCATION, paper_landscape
from repro.serviceglobe.platform import Platform

EXPECTED_TABLE_4 = [
    ("FI", 600, 3),
    ("LES", 900, 4),
    ("PP", 450, 2),
    ("HR", 300, 1),
    ("CRM", 300, 1),
    ("BW", 60, 2),
]


@pytest.mark.benchmark(group="table04")
def test_table04_and_fig11_boot(benchmark):
    platform = benchmark(lambda: Platform(paper_landscape()))

    landscape = platform.landscape
    print("\nTable 4 — initial number of users")
    print(f"{'Service':<8} {'Users':>6} {'Instances':>10}")
    rows = []
    for name, users, instances in EXPECTED_TABLE_4:
        actual_users = landscape.service(name).workload.users
        actual_instances = len(platform.service(name).running_instances)
        rows.append((name, actual_users, actual_instances))
        print(f"{name:<8} {actual_users:>6} {actual_instances:>10}")

    assert rows == EXPECTED_TABLE_4

    print("\nFigure 11 — initial allocation")
    for host_name in sorted(platform.hosts):
        host = platform.hosts[host_name]
        services = ", ".join(i.service_name for i in host.running_instances)
        print(f"  {host_name:<10} (PI {host.performance_index:g}): {services}")

    # every Figure 11 entry materialized on the right host
    placed = [
        (instance.service_name, instance.host_name)
        for instance in platform.all_instances()
    ]
    assert sorted(placed) == sorted(INITIAL_ALLOCATION)
    assert len(platform.hosts) == 19
    assert sum(h.spec.performance_index for h in platform.hosts.values()) == 51.0
