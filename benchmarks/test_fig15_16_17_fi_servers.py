"""Figures 15-17: the FI application servers' load curves in detail.

The paper zooms into the FI service for the same three 115% runs:

* Figure 15 (static): three fixed instances on Blade3, Blade5, Blade11;
  the instances on the less powerful blades "become overloaded
  periodically" and nothing can be done.
* Figure 16 (CM): the controller starts and stops FI instances
  (scale-out / scale-in annotations), recruiting additional hosts such
  as the day-idle database server; most imminent overloads are averted
  and "the remaining overload situation periods are short".
* Figure 17 (FM): additionally move/scale-up; overload situations on FI
  hosts are averted almost completely.
"""

from collections import defaultdict

import pytest

from benchmarks.conftest import paper_run
from repro.config.builtin import INITIAL_ALLOCATION
from repro.config.model import Action
from repro.sim.clock import format_minute
from repro.sim.scenarios import Scenario

FI_INITIAL_HOSTS = {h for s, h in INITIAL_ALLOCATION if s == "FI"}


def fi_statistics(result):
    """Per-host overload minutes and instance presence for FI samples."""
    overload_minutes = defaultdict(int)
    minutes_present = defaultdict(int)
    hosts_used = set()
    for __, __, host, load in result.service_samples["FI"]:
        hosts_used.add(host)
        minutes_present[host] += 1
        if load > 0.80:
            overload_minutes[host] += 1
    return hosts_used, dict(overload_minutes), dict(minutes_present)


def print_fi(result, hosts_used, overload_minutes):
    print(f"\nFI detail — {result.scenario_name} @ {result.user_factor:.0%}")
    print(f"  hosts that ran FI: {', '.join(sorted(hosts_used))}")
    total = sum(overload_minutes.values())
    print(f"  FI instance-minutes above 80%: {total}")
    fi_actions = result.actions_of_service("FI")
    print(f"  controller actions on FI: {len(fi_actions)}")
    for action in fi_actions[:12]:
        print(f"    {format_minute(action.time)}  {action}")
    if len(fi_actions) > 12:
        print(f"    ... and {len(fi_actions) - 12} more")


@pytest.mark.benchmark(group="fig15-17")
def test_fig15_fi_static(benchmark):
    result = paper_run(Scenario.STATIC)
    hosts_used, overload_minutes, __ = benchmark.pedantic(
        lambda: fi_statistics(result), rounds=1, iterations=1
    )
    print_fi(result, hosts_used, overload_minutes)

    # exactly the three Figure 11 instances, forever
    assert hosts_used == FI_INITIAL_HOSTS
    assert result.actions_of_service("FI") == []
    # the instances become overloaded periodically (every working day)
    assert sum(overload_minutes.values()) > 0
    overloaded_days = {
        minute // (24 * 60)
        for minute, __, __, load in result.service_samples["FI"]
        if load > 0.80
    }
    assert len(overloaded_days) >= 3


@pytest.mark.benchmark(group="fig15-17")
def test_fig16_fi_constrained_mobility(benchmark):
    result = paper_run(Scenario.CONSTRAINED_MOBILITY)
    hosts_used, overload_minutes, __ = benchmark.pedantic(
        lambda: fi_statistics(result), rounds=1, iterations=1
    )
    print_fi(result, hosts_used, overload_minutes)

    fi_actions = result.actions_of_service("FI")
    kinds = {a.action for a in fi_actions}
    # the controller starts and stops instances, nothing else (Table 5)
    assert kinds
    assert kinds <= {Action.SCALE_OUT, Action.SCALE_IN}
    # additional hosts beyond the static allocation were recruited
    assert hosts_used > FI_INITIAL_HOSTS
    # overload pressure on FI hosts drops against static
    static_overload = sum(fi_statistics(paper_run(Scenario.STATIC))[1].values())
    assert sum(overload_minutes.values()) < static_overload


@pytest.mark.benchmark(group="fig15-17")
def test_fig17_fi_full_mobility(benchmark):
    result = paper_run(Scenario.FULL_MOBILITY)
    hosts_used, overload_minutes, minutes_present = benchmark.pedantic(
        lambda: fi_statistics(result), rounds=1, iterations=1
    )
    print_fi(result, hosts_used, overload_minutes)

    # relocation actions appear alongside scale-out/in (Figure 17's
    # Move/Up annotations)
    all_kinds = {a.action for a in result.actions}
    assert all_kinds & {Action.MOVE, Action.SCALE_UP, Action.SCALE_DOWN}
    # overloads on FI hosts are averted almost completely: under 1% of
    # FI instance-minutes
    total_minutes = sum(minutes_present.values())
    overload_total = sum(overload_minutes.values())
    assert overload_total < 0.01 * total_minutes
    # and strictly better than constrained mobility
    cm_overload = sum(
        fi_statistics(paper_run(Scenario.CONSTRAINED_MOBILITY))[1].values()
    )
    assert overload_total < cm_overload
