"""Robustness benchmark: self-healing under fault injection.

Not a paper figure — the paper states the mechanism ("failure situations
like a program crash are remedied for example with a restart") without
evaluating it.  This benchmark subjects the constrained-mobility SAP
landscape at 115% users to an aggressive fault storm (instance MTBF of
about six hours, crashes and hangs) for one simulated day and checks
that the self-healing path keeps the installation serviceable.
"""

import pytest

from repro.config.builtin import paper_landscape
from repro.core.autoglobe import AutoGlobeController
from repro.serviceglobe.platform import Platform
from repro.sim.clock import MINUTES_PER_DAY
from repro.sim.faults import FaultInjector
from repro.sim.results import ResultCollector
from repro.sim.scenarios import Scenario, apply_scenario, user_distribution_for
from repro.sim.workload import WorkloadModel

USERS = 1.15


def run_day(with_faults: bool):
    landscape = apply_scenario(
        paper_landscape(), Scenario.CONSTRAINED_MOBILITY
    ).scaled_users(USERS)
    platform = Platform(
        landscape,
        user_distribution=user_distribution_for(Scenario.CONSTRAINED_MOBILITY),
    )
    controller = AutoGlobeController(platform)
    workload = WorkloadModel(platform, seed=7)
    workload.initialize()
    injector = None
    if with_faults:
        injector = FaultInjector(
            controller,
            crash_probability=1.0 / 360,
            hang_probability=1.0 / 360,
            seed=23,
        )
    collector = ResultCollector(
        platform, "cm-faults" if with_faults else "cm", USERS,
        collect_host_series=False, start_minute=12 * 60,
    )
    start = 12 * 60
    for now in range(start, start + MINUTES_PER_DAY):
        workload.tick(now)
        controller.tick(now)
        if injector is not None:
            injector.tick(now)
        collector.observe(now)
    result = collector.finalize(start + MINUTES_PER_DAY - 1)
    return platform, workload, result, injector


@pytest.mark.benchmark(group="ablation")
def test_self_healing_under_fault_storm(benchmark):
    def experiment():
        return run_day(with_faults=False), run_day(with_faults=True)

    (__, __, clean, __), (platform, workload, stormy, injector) = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )

    restarts = [a for a in platform.audit_log if "restart" in a.note]
    print("\nRobustness — self-healing under a fault storm (CM @ 115%, one day)")
    print(f"  faults injected: {injector.crash_count} crashes, "
          f"{injector.hang_count} hangs; restarts executed: {len(restarts)}")
    print(f"  degraded min/day: clean {clean.overload_minutes_per_day:.0f} vs "
          f"stormy {stormy.overload_minutes_per_day:.0f}")

    assert injector.faults, "the storm must inject faults"
    assert restarts, "the controller must restart failed instances"
    # the installation stays serviceable: every service alive with its
    # minimum instance count, and no user session permanently lost
    for definition in platform.services.values():
        assert len(definition.running_instances) >= max(
            definition.spec.constraints.min_instances, 1
        )
    expected_users = sum(
        spec.workload.users
        for spec in platform.landscape.services
        if spec.kind.value == "application-server"
    )
    assert workload.total_users() == expected_users
    # degraded service under the storm stays the same order of magnitude
    assert stormy.overload_minutes_per_day < max(
        4 * clean.overload_minutes_per_day, 300
    )
