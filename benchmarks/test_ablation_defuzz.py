"""Ablation: leftmost-maximum vs. centroid defuzzification.

The paper uses a maximum method ("the leftmost of all values at which
the maximum truth value occurs").  This ablation evaluates the
action-selection controller over a grid of load situations under both
defuzzifiers and reports how the crisp applicabilities differ.

With the unit-ramp ``applicable`` output sets, leftmost-max returns the
strongest firing strength exactly, giving sharp 0-applicability for
non-firing actions; the centroid blends in the set's shape, floors every
value and compresses the ranking range — which is why the paper's
maximum method suits an action *ranking* better.
"""

import numpy as np
import pytest

from repro.core.action_selection import ActionContext, ActionSelector
from repro.core.rulebases import default_action_rulebases
from repro.core.variables import action_selection_inputs, applicability_variable
from repro.config.model import Action
from repro.fuzzy.controller import FuzzyController
from repro.fuzzy.defuzzify import Centroid, LeftmostMax
from repro.fuzzy.rules import RuleBase
from repro.monitoring.lms import SituationKind


def build(defuzzifier):
    return FuzzyController(
        action_selection_inputs(),
        [applicability_variable(a.value) for a in Action],
        RuleBase("empty"),
        defuzzifier,
    )


def measurement_grid():
    contexts = []
    for cpu in (0.2, 0.5, 0.75, 0.95):
        for pi in (1.0, 2.0, 9.0):
            for instances in (1.0, 3.0, 6.0):
                contexts.append(
                    {
                        "cpuLoad": cpu,
                        "memLoad": 0.3,
                        "performanceIndex": pi,
                        "instanceLoad": cpu * 0.9,
                        "serviceLoad": cpu * 0.8,
                        "instancesOnServer": 1.0,
                        "instancesOfService": instances,
                    }
                )
    return contexts


@pytest.mark.benchmark(group="ablation")
def test_ablation_defuzzification(benchmark):
    rulebase = default_action_rulebases()[SituationKind.SERVICE_OVERLOADED]
    leftmost = build(LeftmostMax())
    centroid = build(Centroid())
    grid = measurement_grid()

    def experiment():
        rows = []
        for measurements in grid:
            left = leftmost.evaluate(measurements, rulebase).outputs
            center = centroid.evaluate(measurements, rulebase).outputs
            rows.append((measurements, left, center))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    zero_floor_left = []
    zero_floor_center = []
    spreads_left, spreads_center = [], []
    flips = 0
    for measurements, left, center in rows:
        zero_floor_left.extend(v for v in left.values() if v < 1e-3)
        zero_floor_center.extend(v for v in center.values() if v < 1e-3)
        spreads_left.append(max(left.values()) - min(left.values()))
        spreads_center.append(max(center.values()) - min(center.values()))
        best_left = max(left, key=left.get)
        best_center = max(center, key=center.get)
        if best_left != best_center:
            flips += 1

    print("\nAblation — defuzzification method (serviceOverloaded rule base)")
    print(f"  grid situations: {len(rows)}")
    print(f"  leftmost-max: mean ranking spread "
          f"{np.mean(spreads_left):.2f}, exact zeros for non-firing actions: "
          f"{len(zero_floor_left)}")
    print(f"  centroid:     mean ranking spread "
          f"{np.mean(spreads_center):.2f}, exact zeros: {len(zero_floor_center)}")
    print(f"  situations where the two methods favor different actions: {flips}")

    # leftmost-max separates actions more sharply than the centroid
    assert np.mean(spreads_left) > np.mean(spreads_center)
    # the centroid never returns a crisp zero (the ramp's shape bleeds in)
    assert len(zero_floor_center) == 0
    assert len(zero_floor_left) > 0
