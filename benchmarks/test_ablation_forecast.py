"""Ablation: feed-forward (forecast-assisted) control.

The paper's future work reports "first encouraging simulation studies"
on predicting service load from the load archive.  This controlled
experiment isolates the mechanism's benefit — shaving off the reactive
path's detection latency (watchTime) — on a strongly periodic workload:

a service whose users surge every morning is supervised for three days;
the reactive controller pays the 10-minute watch time (plus ramp-up
drift) in degraded service every single day, while the forecast-assisted
controller has learned the pattern after one day and scales out *before*
the surge.

(The full SAP landscape is deliberately not used here: once the reactive
controller keeps loads below the threshold, the archived patterns no
longer show breaches — anticipation is self-negating in closed loop, so
a capacity claim would be dishonest.  The latency win below is what the
mechanism reliably delivers.)
"""

import pytest

from repro.config.model import (
    Action,
    ControllerSettings,
    LandscapeSpec,
    ServerSpec,
    ServiceConstraints,
    ServiceSpec,
    WorkloadSpec,
)
from repro.core.autoglobe import AutoGlobeController
from repro.forecasting.forecast import ProactiveScaler
from repro.serviceglobe.dispatcher import UserDistribution
from repro.serviceglobe.platform import Platform
from repro.sim.clock import MINUTES_PER_DAY

DAYS = 3
SURGE_START = 8 * 60
SURGE_END = 11 * 60
LOAD_PER_USER = 0.0065


def surge_landscape():
    return LandscapeSpec(
        name="surge",
        # equal blades: scale-out is the only effective remedy, so the
        # surge must re-trigger an action every morning after the nightly
        # consolidation — the repeating situation the forecast learns
        servers=[
            ServerSpec("blade1", performance_index=1.0, memory_mb=2048),
            ServerSpec("blade2", performance_index=1.0, memory_mb=2048),
            ServerSpec("blade3", performance_index=1.0, memory_mb=2048),
        ],
        services=[
            ServiceSpec(
                "portal",
                constraints=ServiceConstraints(
                    min_instances=1,
                    allowed_actions=frozenset(
                        {Action.SCALE_OUT, Action.SCALE_IN, Action.SCALE_UP,
                         Action.SCALE_DOWN, Action.MOVE}
                    ),
                ),
                workload=WorkloadSpec(users=140, memory_per_instance_mb=512),
            )
        ],
        initial_allocation=[("portal", "blade1")],
    )


def users_at(minute):
    of_day = minute % MINUTES_PER_DAY
    return 140 if SURGE_START <= of_day < SURGE_END else 20


def run_surge(proactive: bool):
    platform = Platform(surge_landscape(), UserDistribution.REDISTRIBUTE)
    controller = AutoGlobeController(platform, ControllerSettings())
    scaler = None
    if proactive:
        scaler = ProactiveScaler(controller, lookahead=30, cooldown=6 * 60)
    service = platform.service("portal")
    overload_minutes_per_day = [0] * DAYS
    for now in range(DAYS * MINUTES_PER_DAY):
        # capacity-proportional login of the current user population
        instances = service.running_instances
        for instance in instances:
            instance.users = 0
        platform.dispatcher.place_users(instances, users_at(now))
        for instance in service.running_instances:
            instance.demand = instance.users * LOAD_PER_USER
        controller.tick(now)
        if scaler is not None:
            scaler.tick(now)
        overloaded = any(
            host.cpu_load > 0.80 and host.running_instances
            for host in platform.hosts.values()
        )
        if overloaded:
            overload_minutes_per_day[now // MINUTES_PER_DAY] += 1
    return overload_minutes_per_day, platform.audit_log


@pytest.mark.benchmark(group="ablation")
def test_ablation_forecast_assist(benchmark):
    def experiment():
        return run_surge(proactive=False), run_surge(proactive=True)

    (reactive_overload, __), (assisted_overload, assisted_log) = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    print("\nAblation — feed-forward control (periodic morning surge, 3 days)")
    print(f"  {'day':>4} {'reactive od-min':>16} {'assisted od-min':>16}")
    for day in range(DAYS):
        print(f"  {day:>4} {reactive_overload[day]:>16} {assisted_overload[day]:>16}")

    # day 0 is identical: no history to mine yet
    # after a day of history the assisted controller anticipates the surge
    # and avoids (nearly all of) the reactive path's detection latency
    assert sum(assisted_overload[1:]) < sum(reactive_overload[1:])
    assert sum(assisted_overload[1:]) <= 2 * (DAYS - 1)
    # the reactive path keeps paying the watch time every day
    assert all(overload >= 5 for overload in reactive_overload)
    # the anticipated scale-outs are visible in the audit log before 8:00
    anticipated = [
        outcome
        for outcome in assisted_log
        if outcome.time >= MINUTES_PER_DAY
        and (outcome.time % MINUTES_PER_DAY) < SURGE_START
        and outcome.action in (Action.SCALE_OUT, Action.SCALE_UP)
    ]
    assert anticipated
