"""Ablations: watch-time filtering and protection mode.

DESIGN.md calls out two anti-oscillation mechanisms for ablation:

* **watchTime** (Section 2): without the 10-minute observation window,
  the controller reacts to the short load peaks that are "quite common"
  in real systems, producing an "unsettled and instable system" — many
  more actions for no capacity benefit.
* **Protection mode** (Section 4): without the 30-minute protection of
  involved services and servers, the controller re-acts on the same
  subjects immediately, "moving services back and forth".

Both ablations run one simulated day of the constrained-mobility /
full-mobility scenario at 115% users and compare action volumes.
"""

import dataclasses

import pytest

from repro.config.model import ControllerSettings
from repro.sim.clock import MINUTES_PER_DAY
from repro.sim.runner import SimulationRunner
from repro.sim.scenarios import Scenario


def run_with_settings(scenario, **setting_overrides):
    settings = dataclasses.replace(ControllerSettings(), **setting_overrides)
    runner = SimulationRunner(
        scenario,
        user_factor=1.15,
        horizon=MINUTES_PER_DAY,
        seed=7,
        collect_host_series=False,
        controller_settings=settings,
    )
    result = runner.run()
    confirmed = len(runner.controller.lms.confirmed)
    return result, confirmed


@pytest.mark.benchmark(group="ablation")
def test_ablation_watchtime(benchmark):
    def experiment():
        with_watch = run_with_settings(
            Scenario.CONSTRAINED_MOBILITY, overload_watch_time=10, idle_watch_time=20
        )
        without_watch = run_with_settings(
            Scenario.CONSTRAINED_MOBILITY, overload_watch_time=1, idle_watch_time=1
        )
        return with_watch, without_watch

    (with_watch, confirmed_with), (without_watch, confirmed_without) = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )

    print("\nAblation — watchTime (CM @ 115%, one day)")
    print(f"  watchTime 10/20 min: {confirmed_with:>6} confirmed situations, "
          f"{len(with_watch.actions):>4} actions, "
          f"{with_watch.overload_minutes_per_day:6.0f} degraded min/day")
    print(f"  watchTime  1/1  min: {confirmed_without:>6} confirmed situations, "
          f"{len(without_watch.actions):>4} actions, "
          f"{without_watch.overload_minutes_per_day:6.0f} degraded min/day")

    # without the observation window, every short peak becomes a confirmed
    # situation: the controller is invoked an order of magnitude more often
    # ("Immediate reaction on these peaks could lead to an unsettled and
    # instable system") ...
    assert confirmed_without > 5 * confirmed_with
    # ... while the protection mode caps the executed-action fallout, so
    # all the extra invocations buy nothing structural
    assert len(without_watch.actions) < 3 * max(len(with_watch.actions), 1)


@pytest.mark.benchmark(group="ablation")
def test_ablation_protection(benchmark):
    def experiment():
        with_protection, __ = run_with_settings(
            Scenario.FULL_MOBILITY, protection_time=30
        )
        without_protection, __ = run_with_settings(
            Scenario.FULL_MOBILITY, protection_time=0
        )
        return with_protection, without_protection

    with_protection, without_protection = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    print("\nAblation — protection mode (FM @ 115%, one day)")
    print(f"  protection 30 min: {len(with_protection.actions):>4} actions, "
          f"{with_protection.overload_minutes_per_day:6.0f} degraded min/day")
    print(f"  protection  0 min: {len(without_protection.actions):>4} actions, "
          f"{without_protection.overload_minutes_per_day:6.0f} degraded min/day")

    # without protection the controller thrashes: it re-acts on the same
    # subjects as soon as the next situation is confirmed, executing
    # clearly more actions without reducing degraded service
    assert len(without_protection.actions) > 1.2 * len(with_protection.actions)
    assert without_protection.overload_minutes_per_day > (
        0.7 * with_protection.overload_minutes_per_day
    )
