"""Ablation: the landscape designer's statically optimized allocation.

The paper's future work: "this tool calculates a statically optimized
pre-assignment of all services to improve the dynamic optimization
potential of the fuzzy controller."

The benchmark compares the Figure-11 allocation against the designer's
output under the *static* scenario (no controller) at 115% users for one
simulated day: the designer's profile-aware packing absorbs the extra
users that overload the hand-made allocation.
"""

import pytest

from repro.allocation.designer import LandscapeDesigner
from repro.config.builtin import paper_landscape
from repro.config.validation import validate_landscape
from repro.sim.clock import MINUTES_PER_DAY
from repro.sim.runner import SimulationRunner
from repro.sim.scenarios import Scenario

USERS = 1.15


def run_static(landscape):
    runner = SimulationRunner(
        Scenario.STATIC,
        user_factor=USERS,
        horizon=MINUTES_PER_DAY,
        seed=7,
        landscape=landscape,
        collect_host_series=False,
    )
    return runner.run()


@pytest.mark.benchmark(group="ablation")
def test_ablation_landscape_designer(benchmark):
    def experiment():
        base = paper_landscape()
        designed = LandscapeDesigner(base).design()
        designed_landscape = designed.as_landscape(base)
        validate_landscape(designed_landscape)
        return (
            run_static(base),
            run_static(designed_landscape),
            designed,
        )

    figure11, designed_run, designed = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    print("\nAblation — landscape designer (static scenario, 115% users, one day)")
    print(f"  Figure 11 allocation: {figure11.overload_minutes_per_day:6.0f} "
          f"degraded min/day (longest episode {figure11.longest_episode} min)")
    print(f"  designed allocation:  {designed_run.overload_minutes_per_day:6.0f} "
          f"degraded min/day (longest episode {designed_run.longest_episode} min)")
    print(f"  designer's predicted worst host peak: "
          f"{designed.predicted_peak_load:.0%} (at 100% users)")

    # at 115% users the hand-made allocation is overloaded, the designed
    # one still has headroom
    assert figure11.violates()
    assert not designed_run.violates()
    assert designed_run.total_overload_minutes < 0.2 * figure11.total_overload_minutes
