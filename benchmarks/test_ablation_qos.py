"""Ablation: SLA enforcement through controller actions (QoS extension).

"The actions will then be used to enforce Service Level Agreements."
(Section 7)

The HR service gets a 120 ms response-time SLA on the full-mobility SAP
landscape at 135% users.  With enforcement, SLA violations trigger
priority boosts and structural remedies through the fuzzy decision loop;
without it, the reactive controller only reacts to CPU thresholds and
lets the SLA bleed penalties.
"""

import pytest

from repro.config.builtin import paper_landscape
from repro.core.autoglobe import AutoGlobeController
from repro.qos import ServiceLevelAgreement, ServiceLevelObjective, SlaEnforcer, SlaMonitor
from repro.qos.sla import SlaCatalog
from repro.serviceglobe.invocation import ServiceInvoker
from repro.serviceglobe.platform import Platform
from repro.sim.scenarios import Scenario, apply_scenario
from repro.sim.workload import NoiseParameters, WorkloadModel

HOURS = 10
USERS = 1.35


def run_qos(enforce: bool):
    landscape = apply_scenario(paper_landscape(), Scenario.FULL_MOBILITY)
    landscape = landscape.scaled_users(USERS)
    platform = Platform(landscape)
    controller = AutoGlobeController(platform)
    workload = WorkloadModel(
        platform, seed=3, noise=NoiseParameters(sigma=0.01, burst_probability=0.0)
    )
    workload.initialize()
    invoker = ServiceInvoker(platform)
    catalog = SlaCatalog(
        [
            ServiceLevelAgreement(
                "HR",
                ServiceLevelObjective(
                    response_time_ms=120.0,
                    compliance_target=0.95,
                    window_minutes=30,
                ),
                penalty_per_violation_minute=5.0,
            )
        ]
    )
    monitor = SlaMonitor(invoker, catalog)
    enforcer = (
        SlaEnforcer(controller, monitor, relax_after=120, cooldown=30)
        if enforce
        else None
    )
    for now in range(12 * 60, 12 * 60 + HOURS * 60):
        workload.tick(now)
        controller.tick(now)
        if enforcer is not None:
            enforcer.tick(now)
        else:
            monitor.tick(now)
    return monitor, enforcer


@pytest.mark.benchmark(group="ablation")
def test_ablation_sla_enforcement(benchmark):
    def experiment():
        unenforced_monitor, __ = run_qos(enforce=False)
        enforced_monitor, enforcer = run_qos(enforce=True)
        return unenforced_monitor, enforced_monitor, enforcer

    unenforced, enforced, enforcer = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    print(f"\nAblation — SLA enforcement (HR @ FM {USERS:.0%}, {HOURS} h)")
    print(f"  without enforcement: penalty {unenforced.total_penalty():6.0f} "
          f"({unenforced.report_for('HR').violation_minutes} violation minutes)")
    print(f"  with enforcement:    penalty {enforced.total_penalty():6.0f} "
          f"({enforced.report_for('HR').violation_minutes} violation minutes, "
          f"{len(enforcer.enforcements)} enforcement actions)")

    assert enforcer.enforcements
    assert enforced.total_penalty() < 0.8 * unenforced.total_penalty()
