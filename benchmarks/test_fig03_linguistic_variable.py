"""Figure 3: the linguistic variable ``cpuLoad``.

The paper's worked example: "a host having a measured CPU load l = 0.6
(60%) has 0.5 medium and 0.2 high cpuLoad".
"""

import pytest

from repro.core.variables import load_variable


def fuzzify_curve():
    variable = load_variable("cpuLoad")
    return [
        (load / 20.0, variable.fuzzify(load / 20.0)) for load in range(21)
    ]


@pytest.mark.benchmark(group="fig03")
def test_fig03_cpu_load_membership(benchmark):
    curve = benchmark(fuzzify_curve)

    print("\nFigure 3 — linguistic variable cpuLoad")
    print(f"{'load':>6} {'low':>6} {'medium':>7} {'high':>6}")
    for load, grades in curve:
        print(
            f"{load:6.2f} {grades['low']:6.2f} {grades['medium']:7.2f} "
            f"{grades['high']:6.2f}"
        )

    grades_at_06 = dict(curve[12][1])
    assert grades_at_06["medium"] == pytest.approx(0.5)
    assert grades_at_06["high"] == pytest.approx(0.2)
    # the membership functions are trapezoids covering the whole domain
    for __, grades in curve:
        assert max(grades.values()) > 0.0
        for grade in grades.values():
            assert 0.0 <= grade <= 1.0
