"""Perf smoke test: guard the runner's throughput against regressions.

Not part of tier-1 (``testpaths`` excludes ``benchmarks/``); CI's
perf-smoke job runs it explicitly.  Two guards:

* the committed ``BENCH_runner.json`` must document the refactor's
  speedup on the monitoring/decision hot path (>= 2x vs the embedded
  pre-refactor baseline);
* a fresh quick chaos run must not fall more than 25% below the
  committed runner throughput.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_runner.json"

#: Allowed throughput regression before the smoke test fails.
REGRESSION_TOLERANCE = 0.25


def _committed() -> dict:
    return json.loads(BENCH_FILE.read_text(encoding="utf-8"))


def test_committed_bench_documents_hot_path_speedup():
    payload = _committed()
    speedup = payload["speedup_vs_baseline"]
    assert speedup["archive_average_trailing10_us"] >= 2.0
    assert speedup["controller_tick_ms"] >= 2.0
    assert speedup["runner_chaos_80h_seconds"] >= 2.0
    # The committed file must come from the full (80-hour) workload.
    assert payload["mode"] == "full"
    assert payload["results"]["runner_chaos_80h_seconds"] > 0


def test_committed_bench_documents_multiproc_domain_scaling():
    payload = _committed()
    results = payload["results"]
    assert results["federation_2x_multiproc_ticks_per_second"] > 0
    assert results["federation_4x_multiproc_ticks_per_second"] > 0
    assert results["controller_tick_multiproc_agent_ms"] > 0
    # Doubling the agent processes (each with a constant-size domain)
    # must raise aggregate throughput even on a single-core box, where
    # only journal fsyncs and wire waits overlap; with real cores the
    # scaling should be near-linear (2.0 would be perfect for 2 -> 4).
    scaling = results["controller_tick_multiproc_scaling"]
    assert scaling >= 1.0
    if payload.get("cpu_count") and payload["cpu_count"] >= 4:
        assert scaling >= 1.6


def test_multiproc_federation_throughput_no_regression(tmp_path):
    from repro.net.orchestrator import run_multiproc
    from repro.sim.scenarios import Scenario

    committed = _committed()["results"]
    horizon = committed["federation_multiproc_horizon_minutes"]
    started = time.perf_counter()
    result = run_multiproc(
        2,
        tmp_path / "state",
        tmp_path / "out",
        scenario=Scenario.FULL_MOBILITY,
        user_factor=1.15,
        horizon=horizon,
        seed=7,
        start_minute=720,
        landscape_kind="replicated",
    )
    elapsed = time.perf_counter() - started
    assert result.report.errors == ()
    ticks_per_second = 2 * horizon / elapsed
    # process spawn + wire overhead is noisier than the in-process
    # runner, so the floor is looser than REGRESSION_TOLERANCE
    floor = committed["federation_2x_multiproc_ticks_per_second"] * 0.5
    assert ticks_per_second >= floor, (
        f"multiproc federation throughput regressed: "
        f"{ticks_per_second:.1f} ticks/s < {floor:.1f}"
    )


def test_runner_throughput_no_regression():
    from repro.sim.runner import SimulationRunner
    from repro.sim.scenarios import Scenario, default_chaos

    committed = _committed()["results"]["runner_chaos_12h_ticks_per_second"]
    horizon = 720
    started = time.perf_counter()
    runner = SimulationRunner(
        Scenario.FULL_MOBILITY,
        user_factor=1.15,
        horizon=horizon,
        seed=7,
        collect_host_series=False,
        chaos=default_chaos(seed=115),
    )
    runner.run()
    ticks_per_second = horizon / (time.perf_counter() - started)
    floor = committed * (1.0 - REGRESSION_TOLERANCE)
    assert ticks_per_second >= floor, (
        f"runner throughput regressed: {ticks_per_second:.1f} ticks/s "
        f"< {floor:.1f} (committed {committed:.1f} - {REGRESSION_TOLERANCE:.0%})"
    )
