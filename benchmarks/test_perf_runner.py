"""Perf smoke test: guard the runner's throughput against regressions.

Not part of tier-1 (``testpaths`` excludes ``benchmarks/``); CI's
perf-smoke job runs it explicitly.  Two guards:

* the committed ``BENCH_runner.json`` must document the refactor's
  speedup on the monitoring/decision hot path (>= 2x vs the embedded
  pre-refactor baseline);
* a fresh quick chaos run must not fall more than 25% below the
  committed runner throughput.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_runner.json"

#: Allowed throughput regression before the smoke test fails.
REGRESSION_TOLERANCE = 0.25


def _committed() -> dict:
    return json.loads(BENCH_FILE.read_text(encoding="utf-8"))


def test_committed_bench_documents_hot_path_speedup():
    payload = _committed()
    speedup = payload["speedup_vs_baseline"]
    assert speedup["archive_average_trailing10_us"] >= 2.0
    assert speedup["controller_tick_ms"] >= 2.0
    assert speedup["runner_chaos_80h_seconds"] >= 2.0
    # The committed file must come from the full (80-hour) workload.
    assert payload["mode"] == "full"
    assert payload["results"]["runner_chaos_80h_seconds"] > 0


def test_committed_bench_documents_multiproc_domain_scaling():
    payload = _committed()
    results = payload["results"]
    assert results["federation_2x_multiproc_ticks_per_second"] > 0
    assert results["federation_4x_multiproc_ticks_per_second"] > 0
    assert results["controller_tick_multiproc_agent_ms"] > 0
    # Core-honest scaling guard: near-linear scaling for the 2 -> 4
    # agent-process doubling (2.0 would be perfect) is only a physical
    # possibility with at least 4 cores.  On smaller boxes the agents
    # time-share one or two cores and the ratio measures I/O overlap
    # (journal fsyncs, wire waits), so asserting near-linearity there
    # would guard a number the hardware cannot produce.  The committed
    # file records its own core count and flags core-bound runs.
    scaling = results["controller_tick_multiproc_scaling"]
    cpu_count = payload.get("cpu_count") or 1
    if cpu_count >= 4:
        assert scaling >= 1.6, (
            f"multiproc scaling {scaling} on {cpu_count} cores: the 2->4 "
            f"doubling should be near-linear with 4+ cores"
        )
        assert not results.get("federation_multiproc_core_bound", False)
    else:
        # time-shared cores: require the doubling not to *hurt* aggregate
        # throughput badly, and the committed file to say it is core-bound
        assert scaling >= 0.8
        assert results.get("federation_multiproc_core_bound", cpu_count < 4)


def test_committed_bench_documents_columnar_speedup():
    """The columnar controller must beat the object-graph path >= 5x.

    The guarded ratio is the end-to-end 10k-host seeded window run in
    both scan modes: identical decisions (pinned byte-for-byte by the
    equivalence tests), so the wall-clock ratio captures the full
    controller workload — monitor sweep, situation scans, fuzzy ranking
    and the watch-time decision bursts.  The 1k bare-tick microbenchmark
    isolates the steady-state scan; both modes pay the same per-monitor
    record/report pipeline there, so its floor is lower.
    """
    payload = _committed()
    results = payload["results"]
    assert results["landscape_10k_object_graph_seconds"] > 0
    assert results["landscape_10k_columnar_speedup"] >= 5.0, (
        f"columnar 10k-workload speedup "
        f"{results['landscape_10k_columnar_speedup']}x < 5x"
    )
    assert results["controller_tick_1k_columnar_ms"] > 0
    assert results["controller_tick_1k_object_graph_ms"] > 0
    assert results["controller_tick_columnar_speedup"] >= 2.5, (
        f"columnar steady-state tick speedup "
        f"{results['controller_tick_columnar_speedup']}x < 2.5x at 1k hosts"
    )


def test_committed_bench_documents_10k_real_time_ticks():
    """A 10k-host sim-minute must tick well under one real minute."""
    results = _committed()["results"]
    assert results["landscape_10k_hosts"] >= 10_000
    per_minute = results["landscape_10k_seconds_per_sim_minute"]
    # "real time" headroom: a simulated minute in a tenth of a real one
    assert per_minute <= 6.0, (
        f"landscape-10k ticks at {per_minute}s per sim-minute; the 10k "
        f"target is real time with wide margin (<= 6s)"
    )


def test_committed_bench_documents_store_ingest_overhead():
    """The telemetry store must stay cheap on the acceptance workload.

    ISSUE 10's criterion: persisting every telemetry record of the
    80-hour chaos run to the SQLite event store adds <10% wall-clock
    overhead over the same run without a store attached.  The committed
    numbers come from interleaved baseline/with-store pairs (min of
    each), so scheduler noise hits both sides equally.
    """
    results = _committed()["results"]
    assert results["ops_store_ingest_80h_rows"] > 0
    assert results["ops_store_ingest_80h_baseline_seconds"] > 0
    assert results["ops_store_ingest_80h_seconds"] > 0
    overhead = results["ops_store_ingest_80h_overhead_pct"]
    assert overhead < 10.0, (
        f"telemetry-store ingest overhead {overhead}% >= 10% on the "
        f"80h chaos run"
    )


def test_multiproc_federation_throughput_no_regression(tmp_path):
    from repro.net.orchestrator import run_multiproc
    from repro.sim.scenarios import Scenario

    committed = _committed()["results"]
    horizon = committed["federation_multiproc_horizon_minutes"]
    started = time.perf_counter()
    result = run_multiproc(
        2,
        tmp_path / "state",
        tmp_path / "out",
        scenario=Scenario.FULL_MOBILITY,
        user_factor=1.15,
        horizon=horizon,
        seed=7,
        start_minute=720,
        landscape_kind="replicated",
    )
    elapsed = time.perf_counter() - started
    assert result.report.errors == ()
    ticks_per_second = 2 * horizon / elapsed
    # process spawn + wire overhead is noisier than the in-process
    # runner, so the floor is looser than REGRESSION_TOLERANCE
    floor = committed["federation_2x_multiproc_ticks_per_second"] * 0.5
    assert ticks_per_second >= floor, (
        f"multiproc federation throughput regressed: "
        f"{ticks_per_second:.1f} ticks/s < {floor:.1f}"
    )


def test_runner_throughput_no_regression():
    from repro.sim.runner import SimulationRunner
    from repro.sim.scenarios import Scenario, default_chaos

    committed = _committed()["results"]["runner_chaos_12h_ticks_per_second"]
    horizon = 720
    gc.collect()
    started = time.perf_counter()
    runner = SimulationRunner(
        Scenario.FULL_MOBILITY,
        user_factor=1.15,
        horizon=horizon,
        seed=7,
        collect_host_series=False,
        chaos=default_chaos(seed=115),
    )
    runner.run()
    ticks_per_second = horizon / (time.perf_counter() - started)
    floor = committed * (1.0 - REGRESSION_TOLERANCE)
    assert ticks_per_second >= floor, (
        f"runner throughput regressed: {ticks_per_second:.1f} ticks/s "
        f"< {floor:.1f} (committed {committed:.1f} - {REGRESSION_TOLERANCE:.0%})"
    )


def test_landscape_10k_throughput_no_regression():
    """Fresh short seeded 10k window vs the committed throughput.

    Runs last: the 10k landscape leaves a large gen-2 heap behind, which
    slows the smaller timing tests when it precedes them in one process.
    """
    from repro.config.builtin import landscape_10k
    from repro.sim.runner import SimulationRunner
    from repro.sim.scenarios import Scenario

    committed = _committed()["results"]["landscape_10k_ticks_per_second"]
    horizon = 5
    runner = SimulationRunner(
        Scenario.FULL_MOBILITY,
        user_factor=1.0,
        horizon=horizon,
        seed=7,
        landscape=landscape_10k(),
        collect_host_series=False,
        lint="off",
    )
    gc.collect()
    started = time.perf_counter()
    runner.run()
    ticks_per_second = horizon / (time.perf_counter() - started)
    floor = committed * (1.0 - REGRESSION_TOLERANCE)
    assert ticks_per_second >= floor, (
        f"landscape-10k throughput regressed: {ticks_per_second:.2f} "
        f"ticks/s < {floor:.2f} (committed {committed:.2f} "
        f"- {REGRESSION_TOLERANCE:.0%})"
    )
