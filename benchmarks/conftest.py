"""Shared fixtures for the paper-reproduction benchmarks.

The three 80-hour scenario runs at 115% users back Figures 12-17; they
are executed once per session and shared across benchmark files.  Every
benchmark prints the rows/series the paper reports (visible with
``pytest benchmarks/ --benchmark-only -s`` and in the captured output on
failure) and asserts the qualitative shape.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.sim.results import SimulationResult
from repro.sim.runner import SimulationRunner
from repro.sim.scenarios import Scenario

#: The figures use 15% more users than Table 4 (Section 5.2).
FIGURE_USER_FACTOR = 1.15

_CACHE: Dict[Tuple[Scenario, float], SimulationResult] = {}


def paper_run(scenario: Scenario, user_factor: float = FIGURE_USER_FACTOR) -> SimulationResult:
    """A full 80-hour run with host series and FI samples, cached."""
    key = (scenario, user_factor)
    if key not in _CACHE:
        runner = SimulationRunner(
            scenario,
            user_factor=user_factor,
            seed=7,
            collect_host_series=True,
            collect_services={"FI"},
        )
        _CACHE[key] = runner.run()
    return _CACHE[key]


@pytest.fixture(scope="session")
def static_run() -> SimulationResult:
    return paper_run(Scenario.STATIC)


@pytest.fixture(scope="session")
def cm_run() -> SimulationResult:
    return paper_run(Scenario.CONSTRAINED_MOBILITY)


@pytest.fixture(scope="session")
def fm_run() -> SimulationResult:
    return paper_run(Scenario.FULL_MOBILITY)


def hourly(series, start_minute: int):
    """(hour label, mean value) pairs for a per-minute series."""
    rows = []
    for index in range(0, len(series) - 59, 60):
        minute = start_minute + index
        day, of_day = divmod(minute, 24 * 60)
        rows.append((f"{day}d {of_day // 60:02d}:00", float(series[index:index + 60].mean())))
    return rows
