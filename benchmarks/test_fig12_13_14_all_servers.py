"""Figures 12-14: CPU load of all servers over 80 hours at 115% users.

One benchmark per figure runs the full 80-hour simulation of its
scenario and prints the system's average load per 4-hour block (the
thick line of the figures) plus the overload accounting.  The paper's
qualitative findings are asserted:

* static: "several servers become overloaded [...] at regular intervals",
* constrained mobility: "overload situations are on average shorter than
  in the static scenario, but [...] cannot be prevented completely",
* full mobility: "the results are significantly improved [...] the
  utilization of the hardware is well-balanced".
"""

import numpy as np
import pytest

from benchmarks.conftest import hourly, paper_run
from repro.sim.scenarios import Scenario


def print_run(result):
    average = result.average_load_series()
    print(f"\n{result.scenario_name} @ {result.user_factor:.0%} users, 80 h")
    print("  average system load per 4-hour block:")
    blocks = hourly(average, result.start_minute)[::4]
    line = "  " + "  ".join(f"{label}={value:.0%}" for label, value in blocks[:10])
    print(line)
    line = "  " + "  ".join(f"{label}={value:.0%}" for label, value in blocks[10:])
    print(line)
    print(
        f"  degraded host-minutes/day: {result.overload_minutes_per_day:.0f}; "
        f"episodes: {len(result.episodes)}; "
        f"longest: {result.longest_episode} min; "
        f"actions: {len(result.actions)}"
    )
    worst = sorted(result.overload_minutes_by_host.items(), key=lambda kv: -kv[1])[:5]
    print("  most overloaded servers: "
          + ", ".join(f"{name} ({minutes} min)" for name, minutes in worst if minutes))


@pytest.mark.benchmark(group="fig12-14")
def test_fig12_static_scenario(benchmark):
    result = benchmark.pedantic(
        lambda: paper_run(Scenario.STATIC), rounds=1, iterations=1
    )
    print_run(result)
    # overloads recur at regular intervals: at least one overloaded stretch
    # on every simulated working day
    days_with_overload = {
        episode.start // (24 * 60) for episode in result.episodes
    }
    assert len(days_with_overload) >= 3
    assert result.violates()
    assert result.actions == []


@pytest.mark.benchmark(group="fig12-14")
def test_fig13_constrained_mobility_scenario(benchmark):
    result = benchmark.pedantic(
        lambda: paper_run(Scenario.CONSTRAINED_MOBILITY), rounds=1, iterations=1
    )
    print_run(result)
    static = paper_run(Scenario.STATIC)
    # "the situation already improves": less total overload than static...
    assert result.total_overload_minutes < static.total_overload_minutes
    # ...and episodes are on average shorter
    def mean_episode(run):
        durations = [e.duration for e in run.episodes]
        return float(np.mean(durations)) if durations else 0.0
    assert mean_episode(result) < mean_episode(static) or (
        result.total_overload_minutes < 0.5 * static.total_overload_minutes
    )
    # but overloads are not prevented completely
    assert result.total_overload_minutes > 0
    assert len(result.actions) > 0


@pytest.mark.benchmark(group="fig12-14")
def test_fig14_full_mobility_scenario(benchmark):
    result = benchmark.pedantic(
        lambda: paper_run(Scenario.FULL_MOBILITY), rounds=1, iterations=1
    )
    print_run(result)
    static = paper_run(Scenario.STATIC)
    cm = paper_run(Scenario.CONSTRAINED_MOBILITY)
    # significantly improved over both other scenarios
    assert result.total_overload_minutes < cm.total_overload_minutes
    assert result.total_overload_minutes < 0.5 * static.total_overload_minutes
    # well-balanced utilization: per-host peak spread is the tightest
    def peak_spread(run):
        peaks = [float(series.max()) for series in run.host_series.values()]
        return max(peaks) - min(peaks)
    # FM additionally uses the relocation actions
    kinds = {action.action.value for action in result.actions}
    assert kinds & {"move", "scaleUp", "scaleDown"}
    assert not result.violates()
