"""Table 7: maximum possible, relative number of users per scenario.

"We ran simulation series for the three scenarios and each time
increased the number of users by 5% until the system became overloaded."

Paper's result:  static 100%, constrained mobility 115%, full mobility
135%.  The reproduction performs the same 5%-step sweep over full
80-hour runs; with the default SLA and seed it lands on the paper's
numbers exactly.  The assertions allow one 5% step of slack on the
controller scenarios so the benchmark is robust to platform-level
floating-point drift, and always enforce the ordering
static < CM < FM.
"""

import pytest

from repro.sim.capacity import capacity_search
from repro.sim.scenarios import Scenario

PAPER_TABLE_7 = {
    Scenario.STATIC: 100,
    Scenario.CONSTRAINED_MOBILITY: 115,
    Scenario.FULL_MOBILITY: 135,
}


@pytest.mark.benchmark(group="table07")
def test_table07_capacity_sweep(benchmark):
    def sweep():
        return {scenario: capacity_search(scenario) for scenario in Scenario}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nTable 7 — maximum possible, relative number of users")
    print(f"{'Scenario':<22} {'paper':>6} {'measured':>9}")
    for scenario in Scenario:
        measured = results[scenario].max_users_percent
        print(f"{scenario.value:<22} {PAPER_TABLE_7[scenario]:>5}% {measured:>8}%")
    for scenario in Scenario:
        print()
        print(results[scenario].summary())

    static = results[Scenario.STATIC].max_users_percent
    cm = results[Scenario.CONSTRAINED_MOBILITY].max_users_percent
    fm = results[Scenario.FULL_MOBILITY].max_users_percent

    # the headline shape: the controller buys capacity, full mobility
    # roughly doubles the constrained-mobility gain
    assert static < cm < fm

    # static is sized exactly for the reference population
    assert static == 100
    # one 5% step of slack around the paper's controller numbers
    assert abs(cm - 115) <= 5
    assert abs(fm - 135) <= 5
