"""Figure 10: daily load curves of an LES and a BW application server.

LES rises at eight o'clock with "three peaks, one in the morning, one
before midday and one before the employees leave"; BW processes heavy
batch jobs during the night and only light requests during the day.
The benchmark regenerates both curves by driving the workload model
through one noise-free day and sampling the hosting blades' CPU loads.
"""

import numpy as np
import pytest

from repro.config.builtin import paper_landscape
from repro.serviceglobe.platform import Platform
from repro.sim.clock import MINUTES_PER_DAY
from repro.sim.scenarios import Scenario, apply_scenario
from repro.sim.workload import NoiseParameters, WorkloadModel


def one_quiet_day():
    """Per-minute CPU load of an LES blade and a BW blade over a day."""
    platform = Platform(apply_scenario(paper_landscape(), Scenario.STATIC))
    workload = WorkloadModel(
        platform, seed=7,
        noise=NoiseParameters(sigma=0.0, burst_probability=0.0, derived_sigma=0.0),
    )
    workload.initialize()
    les = np.zeros(MINUTES_PER_DAY)
    bw = np.zeros(MINUTES_PER_DAY)
    for minute in range(MINUTES_PER_DAY):
        workload.tick(minute)
        les[minute] = platform.host_cpu_load("Blade1")   # LES instance
        bw[minute] = platform.host_cpu_load("Blade9")    # BW instance
    return les, bw


@pytest.mark.benchmark(group="fig10")
def test_fig10_les_and_bw_load_curves(benchmark):
    les, bw = benchmark(one_quiet_day)

    print("\nFigure 10 — load curves of LES and BW (one day, load in %)")
    print(f"{'time':>6} {'LES':>5} {'BW':>5}")
    for hour in range(0, 24, 1):
        minute = hour * 60
        print(f"{hour:4d}:00 {les[minute] * 100:5.0f} {bw[minute] * 100:5.0f}")

    def m(hours, minutes=0):
        return hours * 60 + minutes

    # LES: quiet at night, three workday peaks, 60-80% during main activity
    assert les[m(3)] < 0.10
    assert 0.60 <= les.max() <= 0.80
    morning = les[m(8, 30):m(10)].max()
    midday = les[m(11):m(12, 30)].max()
    evening = les[m(15, 30):m(17, 30)].max()
    lull_morning = les[m(10):m(11)].min()
    lull_afternoon = les[m(13):m(15)].min()
    assert morning > lull_morning and midday > lull_morning
    assert midday > lull_afternoon and evening > lull_afternoon

    # BW: heavy nightly batch window, light daytime reporting
    assert bw[m(2):m(5)].min() > 0.55
    assert bw[m(12)] < 0.25
    # the curves are complementary (the controller's opportunity)
    assert float(np.minimum(les, bw).max()) < 0.35
